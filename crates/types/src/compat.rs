//! ISO C *compatible types* (C90 §6.3.2.3 / C99 §6.2.7), the relation the
//! paper's layout guarantees are phrased in.
//!
//! Two modes are provided:
//!
//! * [`CompatMode::TagBased`] — records are compatible only if they are the
//!   *same declaration* (the single-translation-unit ISO rule);
//! * [`CompatMode::Structural`] — records are compatible if they have the
//!   same struct/union-ness, the same number of fields, matching field
//!   names, and pairwise-compatible field types (the cross-translation-unit
//!   rule, coinductive on recursive types). This is the default for
//!   experiments, matching the paper's motivation of matching "similar but
//!   not identical" declarations from different translation units.

use crate::repr::{RecordId, TypeId, TypeKind, TypeTable};
use std::collections::HashSet;

/// How struct/union compatibility is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompatMode {
    /// Same nominal declaration required.
    TagBased,
    /// Structural matching (coinductive on cycles).
    #[default]
    Structural,
}

/// True if `a` and `b` are compatible types under `mode`.
///
/// Qualifiers were dropped during parsing, so this checks the unqualified
/// relation. Enumerations are compatible with each other and with `int`
/// (the paper's reading of the implementation-defined rule).
///
/// # Examples
///
/// ```
/// use structcast_types::{TypeTable, CompatMode, compatible};
/// let mut t = TypeTable::new();
/// let int = t.int();
/// let uint = t.uint();
/// let pi = t.pointer_to(int);
/// let pi2 = t.pointer_to(int);
/// assert!(compatible(&t, pi, pi2, CompatMode::Structural));
/// assert!(!compatible(&t, int, uint, CompatMode::Structural));
/// ```
pub fn compatible(table: &TypeTable, a: TypeId, b: TypeId, mode: CompatMode) -> bool {
    let mut assumed = HashSet::new();
    compat_rec(table, a, b, mode, &mut assumed)
}

fn compat_rec(
    table: &TypeTable,
    a: TypeId,
    b: TypeId,
    mode: CompatMode,
    assumed: &mut HashSet<(RecordId, RecordId)>,
) -> bool {
    if a == b {
        return true;
    }
    use TypeKind::*;
    match (table.kind(a), table.kind(b)) {
        (Void, Void) => true,
        (Int(x), Int(y)) => x == y,
        (Float(x), Float(y)) => x == y,
        // Enums are compatible with each other and with int.
        (Enum(_), Enum(_)) => true,
        (Enum(_), Int(crate::IntKind::Int)) | (Int(crate::IntKind::Int), Enum(_)) => true,
        (Pointer(x), Pointer(y)) => compat_rec(table, *x, *y, mode, assumed),
        (Array(x, nx), Array(y, ny)) => {
            let sizes_ok = match (nx, ny) {
                (Some(n), Some(m)) => n == m,
                _ => true, // unspecified size matches anything
            };
            sizes_ok && compat_rec(table, *x, *y, mode, assumed)
        }
        (Function(sx), Function(sy)) => {
            sx.variadic == sy.variadic
                && sx.params.len() == sy.params.len()
                && compat_rec(table, sx.ret, sy.ret, mode, assumed)
                && sx
                    .params
                    .iter()
                    .zip(&sy.params)
                    .all(|(&p, &q)| compat_rec(table, p, q, mode, assumed))
        }
        (Record(rx), Record(ry)) => match mode {
            CompatMode::TagBased => rx == ry,
            CompatMode::Structural => {
                if rx == ry {
                    return true;
                }
                // Coinductive: assume compatible while checking members.
                let key = (*rx.min(ry), *rx.max(ry));
                if !assumed.insert(key) {
                    return true;
                }
                let ra = table.record(*rx);
                let rb = table.record(*ry);
                let ok = ra.is_union == rb.is_union
                    && ra.complete
                    && rb.complete
                    && ra.fields.len() == rb.fields.len()
                    && ra.fields.iter().zip(&rb.fields).all(|(f, g)| {
                        f.name == g.name && compat_rec(table, f.ty, g.ty, mode, assumed)
                    });
                assumed.remove(&key);
                ok
            }
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::Field;

    fn field(name: &str, ty: TypeId) -> Field {
        Field {
            name: name.into(),
            ty,
            anonymous: false,
        }
    }

    #[test]
    fn scalar_rules() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let en = t.intern(TypeKind::Enum(Some("E".into())));
        let en2 = t.intern(TypeKind::Enum(Some("F".into())));
        assert!(compatible(&t, int, int, CompatMode::Structural));
        assert!(!compatible(&t, int, ch, CompatMode::Structural));
        assert!(compatible(&t, en, int, CompatMode::Structural));
        assert!(compatible(&t, en, en2, CompatMode::Structural));
        let long = t.long();
        assert!(!compatible(&t, int, long, CompatMode::Structural));
    }

    #[test]
    fn pointer_depth_matters() {
        let mut t = TypeTable::new();
        let int = t.int();
        let p = t.pointer_to(int);
        let pp = t.pointer_to(p);
        let ch = t.char();
        let pc = t.pointer_to(ch);
        assert!(!compatible(&t, p, pp, CompatMode::Structural));
        assert!(!compatible(&t, p, pc, CompatMode::Structural));
    }

    #[test]
    fn arrays_with_unspecified_size() {
        let mut t = TypeTable::new();
        let int = t.int();
        let a3 = t.array_of(int, Some(3));
        let a4 = t.array_of(int, Some(4));
        let au = t.array_of(int, None);
        assert!(!compatible(&t, a3, a4, CompatMode::Structural));
        assert!(compatible(&t, a3, au, CompatMode::Structural));
    }

    #[test]
    fn structural_vs_tag_based_records() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ip = t.pointer_to(int);
        let (r1, t1) = t.new_record(Some("A".into()), false);
        t.complete_record(r1, vec![field("p", ip), field("n", int)]);
        let (r2, t2) = t.new_record(Some("B".into()), false);
        t.complete_record(r2, vec![field("p", ip), field("n", int)]);
        assert!(compatible(&t, t1, t2, CompatMode::Structural));
        assert!(!compatible(&t, t1, t2, CompatMode::TagBased));
    }

    #[test]
    fn structural_requires_same_field_names() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (r1, t1) = t.new_record(Some("A".into()), false);
        t.complete_record(r1, vec![field("x", int)]);
        let (r2, t2) = t.new_record(Some("B".into()), false);
        t.complete_record(r2, vec![field("y", int)]);
        assert!(!compatible(&t, t1, t2, CompatMode::Structural));
    }

    #[test]
    fn recursive_types_are_coinductive() {
        // struct L1 { struct L1 *next; int v; }
        // struct L2 { struct L2 *next; int v; }
        let mut t = TypeTable::new();
        let int = t.int();
        let (r1, t1) = t.new_record(Some("L1".into()), false);
        let p1 = t.pointer_to(t1);
        t.complete_record(r1, vec![field("next", p1), field("v", int)]);
        let (r2, t2) = t.new_record(Some("L2".into()), false);
        let p2 = t.pointer_to(t2);
        t.complete_record(r2, vec![field("next", p2), field("v", int)]);
        assert!(compatible(&t, t1, t2, CompatMode::Structural));
        assert!(!compatible(&t, t1, t2, CompatMode::TagBased));
    }

    #[test]
    fn mutually_recursive_incompatible_tail() {
        // struct M1 { struct M1 *next; int v; }
        // struct M2 { struct M2 *next; char v; }  — differs in tail
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let (r1, t1) = t.new_record(Some("M1".into()), false);
        let p1 = t.pointer_to(t1);
        t.complete_record(r1, vec![field("next", p1), field("v", int)]);
        let (r2, t2) = t.new_record(Some("M2".into()), false);
        let p2 = t.pointer_to(t2);
        t.complete_record(r2, vec![field("next", p2), field("v", ch)]);
        assert!(!compatible(&t, t1, t2, CompatMode::Structural));
    }

    #[test]
    fn union_vs_struct_never_compatible() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (r1, t1) = t.new_record(Some("X".into()), false);
        t.complete_record(r1, vec![field("a", int)]);
        let (r2, t2) = t.new_record(Some("X".into()), true);
        t.complete_record(r2, vec![field("a", int)]);
        assert!(!compatible(&t, t1, t2, CompatMode::Structural));
    }

    #[test]
    fn function_signatures() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let f1 = t.function(crate::FuncSig {
            ret: int,
            params: vec![int, ch],
            variadic: false,
        });
        let f2 = t.function(crate::FuncSig {
            ret: int,
            params: vec![int, ch],
            variadic: false,
        });
        let f3 = t.function(crate::FuncSig {
            ret: int,
            params: vec![int],
            variadic: false,
        });
        assert!(compatible(&t, f1, f2, CompatMode::Structural));
        assert!(!compatible(&t, f1, f3, CompatMode::Structural));
    }
}
