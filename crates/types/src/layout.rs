//! Structure-layout strategies.
//!
//! The paper's "Offsets" instance needs concrete `sizeof`/`offsetof`
//! information, which is implementation-defined in C. A [`Layout`] value
//! describes one concrete strategy; the crate ships three:
//!
//! * [`Layout::ilp32`] — 32-bit pointers/longs with natural alignment
//!   (matches the paper's UltraSPARC evaluation platform closely enough);
//! * [`Layout::lp64`] — 64-bit pointers/longs with natural alignment
//!   (a modern x86-64/SysV-style layout);
//! * [`Layout::packed32`] — 32-bit with no padding at all (an adversarial
//!   layout used by the layout-sensitivity ablation).

use crate::fields::FieldPath;
use crate::repr::{FloatKind, IntKind, RecordId, TypeId, TypeKind, TypeTable};

/// A concrete structure-layout strategy (target description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Human-readable strategy name.
    pub name: &'static str,
    /// `(size, align)` of pointers.
    pub ptr: (u64, u64),
    /// `(size, align)` of `short`.
    pub short: (u64, u64),
    /// `(size, align)` of `int` (and `enum`).
    pub int: (u64, u64),
    /// `(size, align)` of `long`.
    pub long: (u64, u64),
    /// `(size, align)` of `long long`.
    pub long_long: (u64, u64),
    /// `(size, align)` of `float`.
    pub float: (u64, u64),
    /// `(size, align)` of `double`.
    pub double: (u64, u64),
    /// `(size, align)` of `long double`.
    pub long_double: (u64, u64),
    /// If true, fields are laid out back-to-back with no padding and all
    /// alignments are 1.
    pub packed: bool,
}

impl Layout {
    /// 32-bit layout with natural alignment.
    pub fn ilp32() -> Self {
        Layout {
            name: "ilp32",
            ptr: (4, 4),
            short: (2, 2),
            int: (4, 4),
            long: (4, 4),
            long_long: (8, 8),
            float: (4, 4),
            double: (8, 8),
            long_double: (16, 8),
            packed: false,
        }
    }

    /// 64-bit layout with natural alignment (SysV-flavored).
    pub fn lp64() -> Self {
        Layout {
            name: "lp64",
            ptr: (8, 8),
            short: (2, 2),
            int: (4, 4),
            long: (8, 8),
            long_long: (8, 8),
            float: (4, 4),
            double: (8, 8),
            long_double: (16, 16),
            packed: false,
        }
    }

    /// 32-bit layout with no padding (every alignment is 1).
    pub fn packed32() -> Self {
        Layout {
            name: "packed32",
            packed: true,
            ..Layout::ilp32()
        }
    }

    fn prim(&self, size_align: (u64, u64)) -> (u64, u64) {
        if self.packed {
            (size_align.0, 1)
        } else {
            size_align
        }
    }

    /// `sizeof(ty)` under this layout.
    ///
    /// Degenerate cases follow GCC-style conventions so the analysis never
    /// divides by zero: `void` and function types have size 1; incomplete
    /// records have size 0; unsized arrays are treated as one element.
    pub fn size_of(&self, table: &TypeTable, ty: TypeId) -> u64 {
        self.size_align(table, ty).0
    }

    /// `alignof(ty)` under this layout (minimum 1).
    pub fn align_of(&self, table: &TypeTable, ty: TypeId) -> u64 {
        self.size_align(table, ty).1
    }

    /// `(sizeof, alignof)` in one pass.
    pub fn size_align(&self, table: &TypeTable, ty: TypeId) -> (u64, u64) {
        match table.kind(ty) {
            TypeKind::Void => (1, 1),
            TypeKind::Function(_) => (1, 1),
            TypeKind::Int(k) => self.prim(match k {
                IntKind::Char | IntKind::SChar | IntKind::UChar => (1, 1),
                IntKind::Short | IntKind::UShort => self.short,
                IntKind::Int | IntKind::UInt => self.int,
                IntKind::Long | IntKind::ULong => self.long,
                IntKind::LongLong | IntKind::ULongLong => self.long_long,
            }),
            TypeKind::Float(k) => self.prim(match k {
                FloatKind::Float => self.float,
                FloatKind::Double => self.double,
                FloatKind::LongDouble => self.long_double,
            }),
            TypeKind::Enum(_) => self.prim(self.int),
            TypeKind::Pointer(_) => self.prim(self.ptr),
            TypeKind::Array(elem, n) => {
                let (es, ea) = self.size_align(table, *elem);
                (es * n.unwrap_or(1).max(1), ea)
            }
            TypeKind::Record(rid) => self.record_size_align(table, *rid),
        }
    }

    fn record_size_align(&self, table: &TypeTable, rid: RecordId) -> (u64, u64) {
        let rec = table.record(rid);
        if !rec.complete {
            return (0, 1);
        }
        let mut align: u64 = 1;
        if rec.is_union {
            let mut size: u64 = 0;
            for f in &rec.fields {
                let (fs, fa) = self.size_align(table, f.ty);
                size = size.max(fs);
                align = align.max(fa);
            }
            (round_up(size, align), align)
        } else {
            let mut offset: u64 = 0;
            for f in &rec.fields {
                let (fs, fa) = self.size_align(table, f.ty);
                offset = round_up(offset, fa) + fs;
                align = align.max(fa);
            }
            (round_up(offset, align), align)
        }
    }

    /// `offsetof` for a single direct field of `rid`.
    ///
    /// # Panics
    ///
    /// Panics if `field_idx` is out of range.
    pub fn offset_of(&self, table: &TypeTable, rid: RecordId, field_idx: u32) -> u64 {
        let rec = table.record(rid);
        assert!(
            (field_idx as usize) < rec.fields.len(),
            "field index {field_idx} out of range for {}",
            table.display(table.intern_lookup(rid))
        );
        if rec.is_union {
            return 0;
        }
        let mut offset: u64 = 0;
        for (i, f) in rec.fields.iter().enumerate() {
            let (fs, fa) = self.size_align(table, f.ty);
            offset = round_up(offset, fa);
            if i as u32 == field_idx {
                return offset;
            }
            offset += fs;
        }
        unreachable!()
    }

    /// `offsetof` through a multi-step field path starting at `ty`.
    ///
    /// Array layers are stripped as they are traversed (each array is its
    /// single representative element), so the returned offset is always
    /// within the first array element.
    pub fn offset_of_path(&self, table: &TypeTable, ty: TypeId, path: &FieldPath) -> u64 {
        let mut cur = table.strip_arrays(ty);
        let mut off = 0;
        for &idx in path.steps() {
            let rid = table
                .as_record(cur)
                .expect("field path step into non-record type");
            off += self.offset_of(table, rid, idx);
            cur = table.strip_arrays(table.record(rid).fields[idx as usize].ty);
        }
        off
    }

    /// Enumerates the scalar leaves of `ty` with their byte offsets, in
    /// layout order. Arrays contribute their representative first element;
    /// union members all start at the union's offset (they overlap).
    pub fn leaf_offsets(&self, table: &TypeTable, ty: TypeId) -> Vec<(u64, TypeId)> {
        let mut out = Vec::new();
        self.collect_leaves(table, ty, 0, &mut out);
        out
    }

    fn collect_leaves(&self, table: &TypeTable, ty: TypeId, base: u64, out: &mut Vec<(u64, TypeId)>) {
        match table.kind(ty) {
            TypeKind::Array(elem, _) => self.collect_leaves(table, *elem, base, out),
            TypeKind::Record(rid) => {
                let rec = table.record(*rid);
                if !rec.complete || rec.fields.is_empty() {
                    out.push((base, ty));
                    return;
                }
                let rid = *rid;
                for (i, f) in rec.fields.clone().iter().enumerate() {
                    let off = self.offset_of(table, rid, i as u32);
                    self.collect_leaves(table, f.ty, base + off, out);
                }
            }
            _ => out.push((base, ty)),
        }
    }

    /// Canonicalizes a byte offset within `ty`: any offset inside an array
    /// is folded into the array's first element (the representative), per
    /// the paper's single-element array treatment (footnotes 4 and 5).
    ///
    /// Offsets outside the object (possible via Complication-1-style
    /// accesses whose validity the caller decides) are returned unchanged.
    pub fn canonical_offset(&self, table: &TypeTable, ty: TypeId, off: u64) -> u64 {
        match table.kind(ty) {
            TypeKind::Array(elem, len) => {
                let es = self.size_of(table, *elem);
                if es == 0 {
                    return off;
                }
                // Unsized arrays (`T[]`, including heap blocks typed by the
                // allocation heuristic) fold at any offset; sized arrays
                // only within their extent.
                if let Some(n) = len {
                    if off >= es * n.max(&1) {
                        return off;
                    }
                }
                self.canonical_offset(table, *elem, off % es)
            }
            TypeKind::Record(rid) => {
                let rec = table.record(*rid);
                if rec.is_union || !rec.complete {
                    return off;
                }
                let rid = *rid;
                for (i, f) in rec.fields.iter().enumerate() {
                    let fo = self.offset_of(table, rid, i as u32);
                    let fs = self.size_of(table, f.ty);
                    if off >= fo && off < fo + fs {
                        return fo + self.canonical_offset(table, f.ty, off - fo);
                    }
                }
                off
            }
            _ => off,
        }
    }
}

impl TypeTable {
    /// Internal helper used by layout panics: the `TypeId` of a record.
    pub(crate) fn intern_lookup(&self, rid: RecordId) -> TypeId {
        // Records are always interned at creation, so this lookup is a scan
        // only on the panic path.
        for i in 0..self.len() {
            if let TypeKind::Record(r) = self.kind(TypeId(i as u32)) {
                if *r == rid {
                    return TypeId(i as u32);
                }
            }
        }
        unreachable!("record {rid} was never interned")
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align >= 1);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::Field;

    fn field(name: &str, ty: TypeId) -> Field {
        Field {
            name: name.into(),
            ty,
            anonymous: false,
        }
    }

    /// struct S { char c; int i; char d; }
    fn padded_struct(t: &mut TypeTable) -> (RecordId, TypeId) {
        let ch = t.char();
        let int = t.int();
        let (rid, tid) = t.new_record(Some("S".into()), false);
        t.complete_record(rid, vec![field("c", ch), field("i", int), field("d", ch)]);
        (rid, tid)
    }

    #[test]
    fn natural_alignment_pads() {
        let mut t = TypeTable::new();
        let (rid, tid) = padded_struct(&mut t);
        let l = Layout::ilp32();
        assert_eq!(l.offset_of(&t, rid, 0), 0);
        assert_eq!(l.offset_of(&t, rid, 1), 4);
        assert_eq!(l.offset_of(&t, rid, 2), 8);
        assert_eq!(l.size_of(&t, tid), 12); // rounded to align 4
        assert_eq!(l.align_of(&t, tid), 4);
    }

    #[test]
    fn packed_layout_has_no_padding() {
        let mut t = TypeTable::new();
        let (rid, tid) = padded_struct(&mut t);
        let l = Layout::packed32();
        assert_eq!(l.offset_of(&t, rid, 1), 1);
        assert_eq!(l.offset_of(&t, rid, 2), 5);
        assert_eq!(l.size_of(&t, tid), 6);
    }

    #[test]
    fn lp64_pointers_are_eight_bytes() {
        let mut t = TypeTable::new();
        let int = t.int();
        let p = t.pointer_to(int);
        assert_eq!(Layout::lp64().size_of(&t, p), 8);
        assert_eq!(Layout::ilp32().size_of(&t, p), 4);
    }

    #[test]
    fn union_size_is_max_member() {
        let mut t = TypeTable::new();
        let int = t.int();
        let dbl = t.double();
        let (rid, tid) = t.new_record(Some("U".into()), true);
        t.complete_record(rid, vec![field("i", int), field("d", dbl)]);
        let l = Layout::ilp32();
        assert_eq!(l.size_of(&t, tid), 8);
        assert_eq!(l.offset_of(&t, rid, 0), 0);
        assert_eq!(l.offset_of(&t, rid, 1), 0);
    }

    #[test]
    fn arrays_multiply_and_unsized_is_one() {
        let mut t = TypeTable::new();
        let int = t.int();
        let a = t.array_of(int, Some(5));
        let u = t.array_of(int, None);
        let l = Layout::ilp32();
        assert_eq!(l.size_of(&t, a), 20);
        assert_eq!(l.size_of(&t, u), 4);
        assert_eq!(l.align_of(&t, a), 4);
    }

    #[test]
    fn nested_struct_path_offsets() {
        // struct R { int r1; char r2; }; struct W { int w1; struct R r; }
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let (rrid, rty) = t.new_record(Some("R".into()), false);
        t.complete_record(rrid, vec![field("r1", int), field("r2", ch)]);
        let (wrid, wty) = t.new_record(Some("W".into()), false);
        t.complete_record(wrid, vec![field("w1", int), field("r", rty)]);
        let l = Layout::ilp32();
        assert_eq!(l.offset_of(&t, wrid, 1), 4);
        let p = FieldPath::from_steps([1u32, 0]);
        assert_eq!(l.offset_of_path(&t, wty, &p), 4);
        let p = FieldPath::from_steps([1u32, 1]);
        assert_eq!(l.offset_of_path(&t, wty, &p), 8);
    }

    #[test]
    fn leaf_offsets_flatten() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let (rrid, rty) = t.new_record(Some("R".into()), false);
        t.complete_record(rrid, vec![field("r1", int), field("r2", ch)]);
        let (wrid, wty) = t.new_record(Some("W".into()), false);
        t.complete_record(wrid, vec![field("w1", int), field("r", rty)]);
        let l = Layout::ilp32();
        let leaves = l.leaf_offsets(&t, wty);
        assert_eq!(leaves.len(), 3);
        assert_eq!(leaves[0].0, 0);
        assert_eq!(leaves[1].0, 4);
        assert_eq!(leaves[2].0, 8);
    }

    #[test]
    fn canonical_offset_folds_arrays() {
        // struct A { int hdr; int data[4]; }
        let mut t = TypeTable::new();
        let int = t.int();
        let arr = t.array_of(int, Some(4));
        let (rid, tid) = t.new_record(Some("A".into()), false);
        t.complete_record(rid, vec![field("hdr", int), field("data", arr)]);
        let l = Layout::ilp32();
        // offset 12 = data[2] → canonicalizes to data[0] at offset 4
        assert_eq!(l.canonical_offset(&t, tid, 12), 4);
        assert_eq!(l.canonical_offset(&t, tid, 4), 4);
        assert_eq!(l.canonical_offset(&t, tid, 0), 0);
        // out-of-bounds offsets are untouched
        assert_eq!(l.canonical_offset(&t, tid, 100), 100);
    }

    #[test]
    fn incomplete_record_has_zero_size() {
        let mut t = TypeTable::new();
        let (_rid, tid) = t.new_record(Some("Fwd".into()), false);
        assert_eq!(Layout::ilp32().size_of(&t, tid), 0);
    }

    #[test]
    fn void_and_function_degenerate_sizes() {
        let mut t = TypeTable::new();
        let v = t.void();
        let int = t.int();
        let f = t.function(crate::FuncSig {
            ret: int,
            params: vec![],
            variadic: false,
        });
        let l = Layout::ilp32();
        assert_eq!(l.size_of(&t, v), 1);
        assert_eq!(l.size_of(&t, f), 1);
    }
}
