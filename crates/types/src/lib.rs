//! # structcast-types
//!
//! Semantic type machinery for the structcast pointer-analysis framework
//! (a reproduction of Yong/Horwitz/Reps, *PLDI 1999*):
//!
//! * [`TypeTable`] — hash-consed types plus nominal struct/union records;
//! * [`Layout`] — concrete structure-layout strategies (`ilp32`, `lp64`,
//!   `packed32`) computing `sizeof`/`alignof`/`offsetof`, used by the
//!   paper's non-portable "Offsets" analysis instance;
//! * [`FieldPath`] and friends — normalized field positions used by the
//!   portable instances ("Collapse on Cast", "Common Initial Sequence");
//! * [`compatible`] — the ISO C *compatible types* relation, in tag-based
//!   and structural modes;
//! * [`common_initial_len`] / [`match_via_cis`] — the common-initial-
//!   sequence machinery behind the most precise portable instance.
//!
//! ```
//! use structcast_types::*;
//!
//! let mut table = TypeTable::new();
//! let int = table.int();
//! let ip = table.pointer_to(int);
//! let f = |n: &str, ty| Field { name: n.into(), ty, anonymous: false };
//! let (s, sty) = table.new_record(Some("S".into()), false);
//! table.complete_record(s, vec![f("s1", ip), f("s2", ip)]);
//!
//! let layout = Layout::ilp32();
//! assert_eq!(layout.size_of(&table, sty), 8);
//! assert_eq!(layout.offset_of(&table, s, 1), 4);
//! assert_eq!(leaves(&table, sty).len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cis;
mod compat;
mod fields;
mod layout;
mod repr;
pub mod rng;

pub use cis::{common_initial_len, match_via_cis, record_type, CisMatch};
pub use compat::{compatible, CompatMode};
pub use fields::{
    enclosing_candidates, following_leaves, leaves, normalize_path, prefix_types, type_of_path,
    FieldPath,
};
pub use layout::Layout;
pub use repr::{Field, FloatKind, FuncSig, IntKind, Record, RecordId, TypeId, TypeKind, TypeTable};
