//! Semantic type representation: interned types plus nominal records.
//!
//! Types ([`TypeId`]) are hash-consed in a [`TypeTable`]; struct/union
//! declarations are *nominal* ([`RecordId`]) and may be completed after
//! creation to support forward references and recursive types.

use std::collections::HashMap;
use std::fmt;

/// An interned type handle. Cheap to copy and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// A nominal struct/union declaration handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// Integer kinds (plain `char` is its own kind, as in C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntKind {
    /// `char`
    Char,
    /// `signed char`
    SChar,
    /// `unsigned char`
    UChar,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `int`
    Int,
    /// `unsigned int`
    UInt,
    /// `long`
    Long,
    /// `unsigned long`
    ULong,
    /// `long long`
    LongLong,
    /// `unsigned long long`
    ULongLong,
}

/// Floating-point kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatKind {
    /// `float`
    Float,
    /// `double`
    Double,
    /// `long double`
    LongDouble,
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Return type.
    pub ret: TypeId,
    /// Parameter types, in order.
    pub params: Vec<TypeId>,
    /// Whether the signature ends in `...`.
    pub variadic: bool,
}

/// The structure of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// `void`
    Void,
    /// An integer type.
    Int(IntKind),
    /// A floating-point type.
    Float(FloatKind),
    /// An enumeration (represented like `int`; the tag is kept for display).
    Enum(Option<String>),
    /// Pointer to another type.
    Pointer(TypeId),
    /// Array of a type; `None` length means unspecified (`T[]`).
    Array(TypeId, Option<u64>),
    /// A function type.
    Function(FuncSig),
    /// A struct or union, by nominal identity.
    Record(RecordId),
}

/// One field of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (synthesized `__anonN` for anonymous members).
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// True if this field came from an anonymous struct/union member, so
    /// member lookup may descend into it transparently.
    pub anonymous: bool,
}

/// A struct or union declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The tag, if declared with one.
    pub tag: Option<String>,
    /// True for `union`, false for `struct`.
    pub is_union: bool,
    /// Fields in declaration order (empty while incomplete).
    pub fields: Vec<Field>,
    /// Whether a body has been attached.
    pub complete: bool,
}

/// The type table: interned [`TypeKind`]s plus the record arena.
///
/// # Examples
///
/// ```
/// use structcast_types::{TypeTable, TypeKind, IntKind};
/// let mut t = TypeTable::new();
/// let int = t.int();
/// let p1 = t.pointer_to(int);
/// let p2 = t.pointer_to(int);
/// assert_eq!(p1, p2); // hash-consed
/// assert!(matches!(t.kind(p1), TypeKind::Pointer(_)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    intern: HashMap<TypeKind, TypeId>,
    records: Vec<Record>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Interns `kind`, returning its id.
    pub fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.intern.get(&kind) {
            return id;
        }
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.intern.insert(kind, id);
        id
    }

    /// Looks up an already-interned kind without mutating the table —
    /// the read-only counterpart of [`intern`](TypeTable::intern), used
    /// when translating type ids between two independently built tables.
    pub fn lookup(&self, kind: &TypeKind) -> Option<TypeId> {
        self.intern.get(kind).copied()
    }

    /// The structure of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.0 as usize]
    }

    /// Number of distinct interned types.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    // ----- convenience constructors -----

    /// `void`
    pub fn void(&mut self) -> TypeId {
        self.intern(TypeKind::Void)
    }

    /// `char`
    pub fn char(&mut self) -> TypeId {
        self.intern(TypeKind::Int(IntKind::Char))
    }

    /// `int`
    pub fn int(&mut self) -> TypeId {
        self.intern(TypeKind::Int(IntKind::Int))
    }

    /// `unsigned int`
    pub fn uint(&mut self) -> TypeId {
        self.intern(TypeKind::Int(IntKind::UInt))
    }

    /// `long`
    pub fn long(&mut self) -> TypeId {
        self.intern(TypeKind::Int(IntKind::Long))
    }

    /// `unsigned long`
    pub fn ulong(&mut self) -> TypeId {
        self.intern(TypeKind::Int(IntKind::ULong))
    }

    /// `double`
    pub fn double(&mut self) -> TypeId {
        self.intern(TypeKind::Float(FloatKind::Double))
    }

    /// `float`
    pub fn float(&mut self) -> TypeId {
        self.intern(TypeKind::Float(FloatKind::Float))
    }

    /// Pointer to `inner`.
    pub fn pointer_to(&mut self, inner: TypeId) -> TypeId {
        self.intern(TypeKind::Pointer(inner))
    }

    /// `void *`
    pub fn void_ptr(&mut self) -> TypeId {
        let v = self.void();
        self.pointer_to(v)
    }

    /// `char *`
    pub fn char_ptr(&mut self) -> TypeId {
        let c = self.char();
        self.pointer_to(c)
    }

    /// Array of `elem`, length `n`.
    pub fn array_of(&mut self, elem: TypeId, n: Option<u64>) -> TypeId {
        self.intern(TypeKind::Array(elem, n))
    }

    /// Function type from a signature.
    pub fn function(&mut self, sig: FuncSig) -> TypeId {
        self.intern(TypeKind::Function(sig))
    }

    // ----- records -----

    /// Creates a new (incomplete) record and returns both its nominal id and
    /// the interned `Record` type referring to it.
    pub fn new_record(&mut self, tag: Option<String>, is_union: bool) -> (RecordId, TypeId) {
        let rid = RecordId(self.records.len() as u32);
        self.records.push(Record {
            tag,
            is_union,
            fields: Vec::new(),
            complete: false,
        });
        let tid = self.intern(TypeKind::Record(rid));
        (rid, tid)
    }

    /// Attaches a body to a record created by [`TypeTable::new_record`].
    ///
    /// # Panics
    ///
    /// Panics if the record is already complete.
    pub fn complete_record(&mut self, rid: RecordId, fields: Vec<Field>) {
        let rec = &mut self.records[rid.0 as usize];
        assert!(!rec.complete, "record completed twice");
        rec.fields = fields;
        rec.complete = true;
    }

    /// The record behind `rid`.
    pub fn record(&self, rid: RecordId) -> &Record {
        &self.records[rid.0 as usize]
    }

    /// Number of records declared.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// If `ty` is a (possibly array-wrapped) record type, its id.
    pub fn as_record(&self, ty: TypeId) -> Option<RecordId> {
        match self.kind(ty) {
            TypeKind::Record(r) => Some(*r),
            _ => None,
        }
    }

    /// Strips any number of array layers: `T[3][4]` → `T`.
    ///
    /// The analysis treats every array as a single representative element
    /// (paper §2), so most consumers want the element type.
    pub fn strip_arrays(&self, mut ty: TypeId) -> TypeId {
        while let TypeKind::Array(e, _) = self.kind(ty) {
            ty = *e;
        }
        ty
    }

    /// True if `ty` (after stripping arrays) is a struct or union.
    pub fn is_record_like(&self, ty: TypeId) -> bool {
        matches!(self.kind(self.strip_arrays(ty)), TypeKind::Record(_))
    }

    /// True if `ty` is a pointer.
    pub fn is_pointer(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Pointer(_))
    }

    /// The pointee of a pointer type, if `ty` is one.
    pub fn pointee(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::Pointer(p) => Some(*p),
            _ => None,
        }
    }

    /// Looks up a (non-anonymous-aware) direct field by name.
    pub fn field_index(&self, rid: RecordId, name: &str) -> Option<u32> {
        self.record(rid)
            .fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Resolves a member name in `rid`, descending into anonymous members.
    ///
    /// Returns the path of field indices leading to the named member.
    pub fn resolve_member(&self, rid: RecordId, name: &str) -> Option<Vec<u32>> {
        let rec = self.record(rid);
        for (i, f) in rec.fields.iter().enumerate() {
            if f.name == name && !f.anonymous {
                return Some(vec![i as u32]);
            }
        }
        // Descend into anonymous members.
        for (i, f) in rec.fields.iter().enumerate() {
            if f.anonymous {
                if let TypeKind::Record(inner) = self.kind(self.strip_arrays(f.ty)) {
                    if let Some(mut rest) = self.resolve_member(*inner, name) {
                        let mut path = vec![i as u32];
                        path.append(&mut rest);
                        return Some(path);
                    }
                }
            }
        }
        None
    }

    /// Renders `ty` for diagnostics, e.g. `"struct S *"`.
    pub fn display(&self, ty: TypeId) -> String {
        match self.kind(ty) {
            TypeKind::Void => "void".into(),
            TypeKind::Int(k) => format!("{k:?}").to_lowercase(),
            TypeKind::Float(k) => format!("{k:?}").to_lowercase(),
            TypeKind::Enum(tag) => match tag {
                Some(t) => format!("enum {t}"),
                None => "enum <anon>".into(),
            },
            TypeKind::Pointer(p) => format!("{} *", self.display(*p)),
            TypeKind::Array(e, n) => match n {
                Some(n) => format!("{}[{n}]", self.display(*e)),
                None => format!("{}[]", self.display(*e)),
            },
            TypeKind::Function(sig) => {
                let ps: Vec<_> = sig.params.iter().map(|p| self.display(*p)).collect();
                format!("{}({})", self.display(sig.ret), ps.join(", "))
            }
            TypeKind::Record(r) => {
                let rec = self.record(*r);
                let kw = if rec.is_union { "union" } else { "struct" };
                match &rec.tag {
                    Some(t) => format!("{kw} {t}"),
                    None => format!("{kw} <anon#{}>", r.0),
                }
            }
        }
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut t = TypeTable::new();
        let a = t.int();
        let b = t.intern(TypeKind::Int(IntKind::Int));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        let p = t.pointer_to(a);
        assert_ne!(p, a);
        assert_eq!(t.pointer_to(a), p);
    }

    #[test]
    fn records_are_nominal() {
        let mut t = TypeTable::new();
        let (r1, t1) = t.new_record(Some("S".into()), false);
        let (r2, t2) = t.new_record(Some("S".into()), false);
        assert_ne!(r1, r2);
        assert_ne!(t1, t2);
    }

    #[test]
    fn complete_record_and_lookup() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (rid, _) = t.new_record(Some("S".into()), false);
        t.complete_record(
            rid,
            vec![
                Field {
                    name: "a".into(),
                    ty: int,
                    anonymous: false,
                },
                Field {
                    name: "b".into(),
                    ty: int,
                    anonymous: false,
                },
            ],
        );
        assert!(t.record(rid).complete);
        assert_eq!(t.field_index(rid, "b"), Some(1));
        assert_eq!(t.field_index(rid, "zz"), None);
        assert_eq!(t.resolve_member(rid, "a"), Some(vec![0]));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut t = TypeTable::new();
        let (rid, _) = t.new_record(None, false);
        t.complete_record(rid, vec![]);
        t.complete_record(rid, vec![]);
    }

    #[test]
    fn anonymous_member_resolution() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (inner, inner_ty) = t.new_record(None, false);
        t.complete_record(
            inner,
            vec![Field {
                name: "x".into(),
                ty: int,
                anonymous: false,
            }],
        );
        let (outer, _) = t.new_record(Some("O".into()), false);
        t.complete_record(
            outer,
            vec![
                Field {
                    name: "__anon0".into(),
                    ty: inner_ty,
                    anonymous: true,
                },
                Field {
                    name: "y".into(),
                    ty: int,
                    anonymous: false,
                },
            ],
        );
        assert_eq!(t.resolve_member(outer, "x"), Some(vec![0, 0]));
        assert_eq!(t.resolve_member(outer, "y"), Some(vec![1]));
    }

    #[test]
    fn strip_arrays_and_helpers() {
        let mut t = TypeTable::new();
        let int = t.int();
        let a = t.array_of(int, Some(3));
        let aa = t.array_of(a, Some(2));
        assert_eq!(t.strip_arrays(aa), int);
        let p = t.pointer_to(int);
        assert!(t.is_pointer(p));
        assert_eq!(t.pointee(p), Some(int));
        assert_eq!(t.pointee(int), None);
    }

    #[test]
    fn display_rendering() {
        let mut t = TypeTable::new();
        let int = t.int();
        let p = t.pointer_to(int);
        assert_eq!(t.display(p), "int *");
        let (rid, st) = t.new_record(Some("S".into()), false);
        t.complete_record(rid, vec![]);
        assert_eq!(t.display(st), "struct S");
        let arr = t.array_of(int, Some(4));
        assert_eq!(t.display(arr), "int[4]");
    }
}
