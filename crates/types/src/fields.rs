//! Field paths and the path-level operations used by the portable analysis
//! instances ("Collapse on Cast" and "Common Initial Sequence").
//!
//! A [`FieldPath`] is a sequence of field *indices* relative to an object's
//! declared type. The paper writes `s.α` where `α` is a sequence of field
//! names; we use indices so paths are compact and comparisons are cheap.
//!
//! Key operations (paper §4.3):
//!
//! * [`normalize_path`] — map a structure reference to its innermost first
//!   field (the paper's portable `normalize`);
//! * [`leaves`] — the flattened normalized field positions of a type, in
//!   declaration order;
//! * [`following_leaves`] — the paper's `followingFields`, including the
//!   array wrap-around rule from footnote 6.

use crate::repr::{TypeId, TypeKind, TypeTable};
use std::fmt;

/// A path of field indices, relative to some base type.
///
/// The empty path denotes the object itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct FieldPath(Vec<u32>);

impl FieldPath {
    /// The empty path (the whole object).
    pub fn empty() -> Self {
        FieldPath(Vec::new())
    }

    /// Builds a path from field indices.
    pub fn from_steps(steps: impl IntoIterator<Item = u32>) -> Self {
        FieldPath(steps.into_iter().collect())
    }

    /// The field indices.
    pub fn steps(&self) -> &[u32] {
        &self.0
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Path extended by one more field index.
    pub fn child(&self, idx: u32) -> FieldPath {
        let mut v = self.0.clone();
        v.push(idx);
        FieldPath(v)
    }

    /// Concatenation `self.other` (the paper's `α.β`).
    pub fn concat(&self, other: &FieldPath) -> FieldPath {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        FieldPath(v)
    }

    /// The first `n` steps.
    pub fn prefix(&self, n: usize) -> FieldPath {
        FieldPath(self.0[..n].to_vec())
    }

    /// True if `self` starts with `other`.
    pub fn starts_with(&self, other: &FieldPath) -> bool {
        self.0.len() >= other.0.len() && self.0[..other.0.len()] == other.0[..]
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.0.iter().map(|i| i.to_string()).collect();
        write!(f, ".{}", parts.join("."))
    }
}

/// The type reached by following `path` from `base`, stripping array layers
/// as they are traversed (arrays are single representative elements).
///
/// Returns `None` if the path steps into a non-record or out-of-range field.
pub fn type_of_path(table: &TypeTable, base: TypeId, path: &FieldPath) -> Option<TypeId> {
    let mut cur = base;
    for &idx in path.steps() {
        cur = table.strip_arrays(cur);
        let rid = table.as_record(cur)?;
        let rec = table.record(rid);
        cur = rec.fields.get(idx as usize)?.ty;
    }
    Some(cur)
}

/// Like [`type_of_path`] but returns the types *at* each prefix of the path
/// (length `path.len() + 1`, starting with `base`), without stripping the
/// final array layer, so callers can see which prefixes are arrays.
pub fn prefix_types(table: &TypeTable, base: TypeId, path: &FieldPath) -> Option<Vec<TypeId>> {
    let mut out = Vec::with_capacity(path.len() + 1);
    let mut cur = base;
    out.push(cur);
    for &idx in path.steps() {
        let stripped = table.strip_arrays(cur);
        let rid = table.as_record(stripped)?;
        let rec = table.record(rid);
        cur = rec.fields.get(idx as usize)?.ty;
        out.push(cur);
    }
    Some(out)
}

/// The paper's portable `normalize`: maps a structure reference to its
/// innermost first field, recursively.
///
/// Unions are single collapsed locations in the path models (DESIGN.md
/// §3): paths are truncated at the first step that would enter a union
/// member, and the descent below never enters a union either. Descent
/// also stops at incomplete or empty records and at scalars.
pub fn normalize_path(table: &TypeTable, base: TypeId, path: &FieldPath) -> FieldPath {
    // Truncate the given path at a union boundary.
    let mut walk = table.strip_arrays(base);
    let mut kept = Vec::with_capacity(path.len());
    for &idx in path.steps() {
        match table.kind(walk) {
            TypeKind::Record(rid) => {
                let rec = table.record(*rid);
                if rec.is_union {
                    break; // the union itself is the location
                }
                let Some(f) = rec.fields.get(idx as usize) else {
                    break;
                };
                kept.push(idx);
                walk = table.strip_arrays(f.ty);
            }
            _ => break,
        }
    }
    let path = &FieldPath::from_steps(kept);
    let mut cur = match type_of_path(table, base, path) {
        Some(t) => t,
        None => return path.clone(),
    };
    let mut out = path.clone();
    loop {
        cur = table.strip_arrays(cur);
        match table.kind(cur) {
            TypeKind::Record(rid) => {
                let rec = table.record(*rid);
                if rec.is_union || !rec.complete || rec.fields.is_empty() {
                    return out;
                }
                out = out.child(0);
                cur = rec.fields[0].ty;
            }
            _ => return out,
        }
    }
}

/// The flattened, normalized leaf positions of `ty`, in declaration order.
///
/// A *leaf* is a position [`normalize_path`] maps to itself: a scalar,
/// pointer, function, union, or empty/incomplete record. Every normalized
/// path of `ty` appears exactly once.
pub fn leaves(table: &TypeTable, ty: TypeId) -> Vec<FieldPath> {
    let mut out = Vec::new();
    collect(table, ty, FieldPath::empty(), &mut out);
    return out;

    fn collect(table: &TypeTable, ty: TypeId, at: FieldPath, out: &mut Vec<FieldPath>) {
        let stripped = table.strip_arrays(ty);
        match table.kind(stripped) {
            TypeKind::Record(rid) => {
                let rec = table.record(*rid);
                if rec.is_union || !rec.complete || rec.fields.is_empty() {
                    out.push(at);
                    return;
                }
                let fields: Vec<TypeId> = rec.fields.iter().map(|f| f.ty).collect();
                for (i, fty) in fields.into_iter().enumerate() {
                    collect(table, fty, at.child(i as u32), out);
                }
            }
            _ => out.push(at),
        }
    }
}

/// The paper's `followingFields`, at leaf granularity: all leaves of `ty`
/// at or after `beta` in declaration order, **plus** (footnote 6) every
/// leaf inside the outermost array enclosing `beta`, since an array is a
/// single representative element and pointers can wrap within it.
///
/// `beta` must be a leaf of `ty` (i.e. already normalized); if it is not
/// found, all leaves are returned (safe over-approximation).
pub fn following_leaves(table: &TypeTable, ty: TypeId, beta: &FieldPath) -> Vec<FieldPath> {
    let all = leaves(table, ty);
    let idx = match all.iter().position(|l| l == beta) {
        Some(i) => i,
        None => return all,
    };
    let mut out: Vec<FieldPath> = all[idx..].to_vec();
    // Array wrap-around: find the shortest prefix of beta whose type is an
    // array; all leaves under it are also reachable.
    if let Some(ptys) = prefix_types(table, ty, beta) {
        for (plen, pty) in ptys.iter().enumerate() {
            if matches!(table.kind(*pty), TypeKind::Array(_, _)) {
                let prefix = beta.prefix(plen);
                for l in &all[..idx] {
                    if l.starts_with(&prefix) && !out.contains(l) {
                        out.push(l.clone());
                    }
                }
                break;
            }
        }
    }
    out
}

/// The candidate enclosing positions `δ` such that `normalize(t.δ) = t.β̂`
/// (where `β̂` is already normalized): exactly the prefixes of `β̂` whose
/// remaining steps are all first-field (index 0) descents through structs.
///
/// Returned longest-first (β̂ itself first, outermost candidate last).
pub fn enclosing_candidates(table: &TypeTable, ty: TypeId, beta: &FieldPath) -> Vec<FieldPath> {
    let mut out = Vec::new();
    for plen in (0..=beta.len()).rev() {
        let p = beta.prefix(plen);
        if normalize_path(table, ty, &p) == *beta {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::Field;
    use crate::TypeTable;

    fn field(name: &str, ty: TypeId) -> Field {
        Field {
            name: name.into(),
            ty,
            anonymous: false,
        }
    }

    /// struct S { int s1; char s2; };
    /// struct T { struct S t1; int t2; char t3; };
    fn nested(t: &mut TypeTable) -> (TypeId, TypeId) {
        let int = t.int();
        let ch = t.char();
        let (srid, sty) = t.new_record(Some("S".into()), false);
        t.complete_record(srid, vec![field("s1", int), field("s2", ch)]);
        let (trid, tty) = t.new_record(Some("T".into()), false);
        t.complete_record(
            trid,
            vec![field("t1", sty), field("t2", int), field("t3", ch)],
        );
        (sty, tty)
    }

    #[test]
    fn path_basics() {
        let p = FieldPath::from_steps([1u32, 0, 2]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.starts_with(&FieldPath::from_steps([1u32])));
        assert!(!p.starts_with(&FieldPath::from_steps([0u32])));
        assert_eq!(p.prefix(2), FieldPath::from_steps([1u32, 0]));
        assert_eq!(
            FieldPath::from_steps([1u32]).concat(&FieldPath::from_steps([2u32])),
            FieldPath::from_steps([1u32, 2])
        );
        assert_eq!(p.to_string(), ".1.0.2");
        assert_eq!(FieldPath::empty().to_string(), "ε");
    }

    #[test]
    fn type_of_path_traversal() {
        let mut t = TypeTable::new();
        let (sty, tty) = nested(&mut t);
        assert_eq!(
            type_of_path(&t, tty, &FieldPath::from_steps([0u32])),
            Some(sty)
        );
        let int = t.int();
        assert_eq!(
            type_of_path(&t, tty, &FieldPath::from_steps([0u32, 0])),
            Some(int)
        );
        assert_eq!(type_of_path(&t, tty, &FieldPath::from_steps([9u32])), None);
        assert_eq!(
            type_of_path(&t, int, &FieldPath::from_steps([0u32])),
            None
        );
    }

    #[test]
    fn normalize_descends_to_innermost_first_field() {
        let mut t = TypeTable::new();
        let (_sty, tty) = nested(&mut t);
        // normalize(t) = t.t1.s1
        assert_eq!(
            normalize_path(&t, tty, &FieldPath::empty()),
            FieldPath::from_steps([0u32, 0])
        );
        // normalize(t.t1) = t.t1.s1
        assert_eq!(
            normalize_path(&t, tty, &FieldPath::from_steps([0u32])),
            FieldPath::from_steps([0u32, 0])
        );
        // scalar fields normalize to themselves
        assert_eq!(
            normalize_path(&t, tty, &FieldPath::from_steps([1u32])),
            FieldPath::from_steps([1u32])
        );
    }

    #[test]
    fn normalize_stops_at_unions() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (urid, uty) = t.new_record(Some("U".into()), true);
        t.complete_record(urid, vec![field("a", int), field("b", int)]);
        let (orid, oty) = t.new_record(Some("O".into()), false);
        t.complete_record(orid, vec![field("u", uty), field("x", int)]);
        // normalize(o) descends into o.u but not into the union's members.
        assert_eq!(
            normalize_path(&t, oty, &FieldPath::empty()),
            FieldPath::from_steps([0u32])
        );
    }

    #[test]
    fn leaves_enumeration() {
        let mut t = TypeTable::new();
        let (_sty, tty) = nested(&mut t);
        let ls = leaves(&t, tty);
        assert_eq!(
            ls,
            vec![
                FieldPath::from_steps([0u32, 0]),
                FieldPath::from_steps([0u32, 1]),
                FieldPath::from_steps([1u32]),
                FieldPath::from_steps([2u32]),
            ]
        );
        let int = t.int();
        assert_eq!(leaves(&t, int), vec![FieldPath::empty()]);
    }

    #[test]
    fn leaves_of_array_of_struct() {
        let mut t = TypeTable::new();
        let (sty, _tty) = nested(&mut t);
        let arr = t.array_of(sty, Some(4));
        // The representative element's fields.
        assert_eq!(leaves(&t, arr).len(), 2);
    }

    #[test]
    fn following_leaves_basic() {
        let mut t = TypeTable::new();
        let (_sty, tty) = nested(&mut t);
        let from = FieldPath::from_steps([1u32]); // t.t2
        let fl = following_leaves(&t, tty, &from);
        assert_eq!(
            fl,
            vec![FieldPath::from_steps([1u32]), FieldPath::from_steps([2u32])]
        );
    }

    #[test]
    fn following_leaves_array_wraparound() {
        // struct A { struct S elems[3]; int tail; } — a leaf inside elems
        // must also reach the *earlier* leaves of elems (footnote 6).
        let mut t = TypeTable::new();
        let (sty, _) = nested(&mut t);
        let int = t.int();
        let arr = t.array_of(sty, Some(3));
        let (arid, aty) = t.new_record(Some("A".into()), false);
        t.complete_record(arid, vec![field("elems", arr), field("tail", int)]);
        // beta = a.elems[*].s2 = path [0, 1]
        let beta = FieldPath::from_steps([0u32, 1]);
        let fl = following_leaves(&t, aty, &beta);
        // .0.1 (itself), .1 (tail), plus wrap-around .0.0 (s1 within array)
        assert!(fl.contains(&FieldPath::from_steps([0u32, 1])));
        assert!(fl.contains(&FieldPath::from_steps([1u32])));
        assert!(fl.contains(&FieldPath::from_steps([0u32, 0])));
        assert_eq!(fl.len(), 3);
    }

    #[test]
    fn following_leaves_unknown_beta_returns_all() {
        let mut t = TypeTable::new();
        let (_sty, tty) = nested(&mut t);
        let bogus = FieldPath::from_steps([7u32, 7]);
        assert_eq!(following_leaves(&t, tty, &bogus).len(), 4);
    }

    #[test]
    fn enclosing_candidates_chain() {
        let mut t = TypeTable::new();
        let (_sty, tty) = nested(&mut t);
        // β̂ = t.t1.s1; candidates are [0,0] (itself), [0] (t.t1), [] (t).
        let beta = FieldPath::from_steps([0u32, 0]);
        let cands = enclosing_candidates(&t, tty, &beta);
        assert_eq!(
            cands,
            vec![
                FieldPath::from_steps([0u32, 0]),
                FieldPath::from_steps([0u32]),
                FieldPath::empty(),
            ]
        );
        // β̂ = t.t2 is not a first field: only itself.
        let beta = FieldPath::from_steps([1u32]);
        assert_eq!(enclosing_candidates(&t, tty, &beta), vec![beta]);
    }
}
