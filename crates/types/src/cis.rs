//! Common initial sequences (paper §4.3.3).
//!
//! ISO C guarantees that if two structures share an initial sequence of
//! fields with compatible types, the corresponding fields have identical
//! offsets. The "Common Initial Sequence" analysis instance exploits this
//! to keep fields distinguished across casts whenever the standard permits.

use crate::compat::{compatible, CompatMode};
use crate::fields::{leaves, FieldPath};
use crate::repr::{RecordId, TypeId, TypeKind, TypeTable};

/// Number of leading *top-level* fields of `a` and `b` with pairwise
/// compatible types (0 if either is a union, incomplete, or not both
/// structs).
///
/// # Examples
///
/// ```
/// use structcast_types::*;
/// let mut t = TypeTable::new();
/// let int = t.int();
/// let ch = t.char();
/// let ip = t.pointer_to(int);
/// let f = |n: &str, ty| Field { name: n.into(), ty, anonymous: false };
/// let (s, _) = t.new_record(Some("S".into()), false);
/// t.complete_record(s, vec![f("s1", ip), f("s2", int), f("s3", ch)]);
/// let (r, _) = t.new_record(Some("T".into()), false);
/// t.complete_record(r, vec![f("t1", ip), f("t2", int), f("t3", int)]);
/// assert_eq!(common_initial_len(&t, s, r, CompatMode::Structural), 2);
/// ```
pub fn common_initial_len(
    table: &TypeTable,
    a: RecordId,
    b: RecordId,
    mode: CompatMode,
) -> usize {
    let ra = table.record(a);
    let rb = table.record(b);
    if ra.is_union || rb.is_union || !ra.complete || !rb.complete {
        return 0;
    }
    let mut n = 0;
    for (fa, fb) in ra.fields.iter().zip(&rb.fields) {
        if compatible(table, fa.ty, fb.ty, mode) {
            n += 1;
        } else {
            break;
        }
    }
    n
}

/// Result of matching a field path of one struct type against another via
/// their common initial sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CisMatch {
    /// The path lies entirely within the common initial sequence; the same
    /// index path is valid in the other type (compatible fields have
    /// identical internal structure).
    Within(FieldPath),
    /// The path falls outside the CIS; the first leaf of the other type
    /// *after* the CIS is returned (`None` if the CIS covers everything or
    /// the other type has no leaf after it).
    Outside(Option<FieldPath>),
}

/// Matches leaf path `alpha` of struct `a` against struct `b` using their
/// common initial sequence (top-level granularity, per ISO C).
///
/// If `alpha`'s head field index is within the CIS of `a` and `b`, the same
/// path is valid in `b` ([`CisMatch::Within`]). Otherwise returns the first
/// leaf of `b` following the CIS ([`CisMatch::Outside`]), which the caller
/// combines with `following_leaves` to build the collapsed result set.
pub fn match_via_cis(
    table: &TypeTable,
    a: RecordId,
    b: RecordId,
    alpha: &FieldPath,
    mode: CompatMode,
) -> CisMatch {
    let n = common_initial_len(table, a, b, mode);
    match alpha.steps().first() {
        Some(&head) if (head as usize) < n => CisMatch::Within(alpha.clone()),
        _ => {
            if n == 0 {
                return CisMatch::Outside(None);
            }
            // First leaf of b at or after top-level field n.
            let bty = record_type(table, b);
            let first = leaves(table, bty)
                .into_iter()
                .find(|l| l.steps().first().is_some_and(|&h| h as usize >= n));
            CisMatch::Outside(first)
        }
    }
}

/// The interned `TypeId` of a record (scan; used on cold paths only).
pub fn record_type(table: &TypeTable, rid: RecordId) -> TypeId {
    for i in 0..table.len() {
        let tid = TypeId(i as u32);
        if let TypeKind::Record(r) = table.kind(tid) {
            if *r == rid {
                return tid;
            }
        }
    }
    unreachable!("record {rid} was never interned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::Field;

    fn field(name: &str, ty: TypeId) -> Field {
        Field {
            name: name.into(),
            ty,
            anonymous: false,
        }
    }

    /// The paper's §4.3.3 example:
    /// struct S { int *s1; int *s2; int *s3; };
    /// struct T { int *t1; int *t2; char t3; int *t4; };
    /// CIS = first two fields.
    fn paper_example(t: &mut TypeTable) -> (RecordId, RecordId) {
        let int = t.int();
        let ch = t.char();
        let ip = t.pointer_to(int);
        let (s, _) = t.new_record(Some("S".into()), false);
        t.complete_record(s, vec![field("s1", ip), field("s2", ip), field("s3", ip)]);
        let (r, _) = t.new_record(Some("T".into()), false);
        t.complete_record(
            r,
            vec![
                field("t1", ip),
                field("t2", ip),
                field("t3", ch),
                field("t4", ip),
            ],
        );
        (s, r)
    }

    #[test]
    fn paper_433_cis_length() {
        let mut t = TypeTable::new();
        let (s, r) = paper_example(&mut t);
        assert_eq!(common_initial_len(&t, s, r, CompatMode::Structural), 2);
        assert_eq!(common_initial_len(&t, r, s, CompatMode::Structural), 2);
        // Reflexive: full length.
        assert_eq!(common_initial_len(&t, s, s, CompatMode::Structural), 3);
    }

    #[test]
    fn paper_433_lookup_behaviour() {
        let mut t = TypeTable::new();
        let (s, r) = paper_example(&mut t);
        // (*p).s2 where p: struct S* points at t: struct T → within CIS → t2.
        let alpha = FieldPath::from_steps([1u32]);
        assert_eq!(
            match_via_cis(&t, s, r, &alpha, CompatMode::Structural),
            CisMatch::Within(alpha)
        );
        // (*p).s3 → outside CIS → first leaf of T after the CIS is t3.
        let alpha = FieldPath::from_steps([2u32]);
        assert_eq!(
            match_via_cis(&t, s, r, &alpha, CompatMode::Structural),
            CisMatch::Outside(Some(FieldPath::from_steps([2u32])))
        );
    }

    #[test]
    fn empty_cis() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let (a, _) = t.new_record(Some("A".into()), false);
        t.complete_record(a, vec![field("x", int)]);
        let (b, _) = t.new_record(Some("B".into()), false);
        t.complete_record(b, vec![field("y", ch)]);
        assert_eq!(common_initial_len(&t, a, b, CompatMode::Structural), 0);
        assert_eq!(
            match_via_cis(&t, a, b, &FieldPath::from_steps([0u32]), CompatMode::Structural),
            CisMatch::Outside(None)
        );
    }

    #[test]
    fn unions_have_no_cis() {
        let mut t = TypeTable::new();
        let int = t.int();
        let (a, _) = t.new_record(Some("A".into()), true);
        t.complete_record(a, vec![field("x", int)]);
        let (b, _) = t.new_record(Some("B".into()), false);
        t.complete_record(b, vec![field("x", int)]);
        assert_eq!(common_initial_len(&t, a, b, CompatMode::Structural), 0);
    }

    #[test]
    fn cis_with_nested_struct_fields() {
        // struct Inner { int a; }; struct P { struct Inner i; int x; };
        // struct Q { struct Inner i; char x; }; CIS = 1 (the Inner field).
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let (inner, ity) = t.new_record(Some("Inner".into()), false);
        t.complete_record(inner, vec![field("a", int)]);
        let (p, _) = t.new_record(Some("P".into()), false);
        t.complete_record(p, vec![field("i", ity), field("x", int)]);
        let (q, _) = t.new_record(Some("Q".into()), false);
        t.complete_record(q, vec![field("i", ity), field("x", ch)]);
        assert_eq!(common_initial_len(&t, p, q, CompatMode::Structural), 1);
        // A leaf inside the shared Inner field matches Within.
        let alpha = FieldPath::from_steps([0u32, 0]);
        assert_eq!(
            match_via_cis(&t, p, q, &alpha, CompatMode::Structural),
            CisMatch::Within(alpha)
        );
    }

    #[test]
    fn record_type_lookup() {
        let mut t = TypeTable::new();
        let (a, aty) = t.new_record(Some("A".into()), false);
        t.complete_record(a, vec![]);
        assert_eq!(record_type(&t, a), aty);
    }
}
