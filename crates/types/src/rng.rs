//! Small deterministic PRNG used by the generator and the property tests.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so randomized components (the synthetic program generator, the
//! property-test suites, bench shuffling) share this self-contained
//! SplitMix64 generator instead of an external crate. It is *not*
//! cryptographic; it only needs to be fast, seedable, and stable across
//! platforms so that generated programs are byte-identical for a given
//! seed.

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Equal seeds produce identical streams on every platform; the stream is
/// part of the crate's stability contract because progen's generated
/// corpus is keyed by seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality bits → the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, matching the behaviour tests rely on.
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping is fine here: span is tiny
        // relative to 2^64, so bias is unobservable for test purposes.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = Rng64::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
