//! Property tests over randomly generated type structures: layout
//! arithmetic, normalization, and compatibility must satisfy their
//! algebraic laws for *every* type shape, not just the handwritten ones.
//!
//! Cases are driven by the workspace's deterministic [`Rng64`] so the
//! suite needs no external property-testing framework and every failure
//! is reproducible from the case index alone.

use structcast_types::rng::Rng64;
use structcast_types::{
    common_initial_len, compatible, enclosing_candidates, following_leaves, leaves,
    normalize_path, type_of_path, CompatMode, Field, FieldPath, Layout, RecordId, TypeId,
    TypeTable,
};

const CASES: u64 = 128;

/// A recipe for building a random type tree (depth-bounded).
#[derive(Debug, Clone)]
enum TypeRecipe {
    Int,
    Char,
    Double,
    PtrInt,
    Array(Box<TypeRecipe>, u64),
    Struct(Vec<TypeRecipe>),
    Union(Vec<TypeRecipe>),
}

/// Draws a random depth-bounded recipe. Leaves get likelier as the
/// remaining depth shrinks, mirroring `prop_recursive`'s shape control.
fn random_recipe(rng: &mut Rng64, depth: u32) -> TypeRecipe {
    let leaf = |rng: &mut Rng64| match rng.gen_range(0..4) {
        0 => TypeRecipe::Int,
        1 => TypeRecipe::Char,
        2 => TypeRecipe::Double,
        _ => TypeRecipe::PtrInt,
    };
    if depth == 0 || rng.gen_bool(0.3) {
        return leaf(rng);
    }
    match rng.gen_range(0..3) {
        0 => TypeRecipe::Array(
            Box::new(random_recipe(rng, depth - 1)),
            rng.gen_range(1..4) as u64,
        ),
        1 => {
            let n = rng.gen_range(1..5);
            TypeRecipe::Struct((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(1..4);
            TypeRecipe::Union((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
    }
}

fn build(table: &mut TypeTable, r: &TypeRecipe, counter: &mut u32) -> TypeId {
    match r {
        TypeRecipe::Int => table.int(),
        TypeRecipe::Char => table.char(),
        TypeRecipe::Double => table.double(),
        TypeRecipe::PtrInt => {
            let i = table.int();
            table.pointer_to(i)
        }
        TypeRecipe::Array(inner, n) => {
            let t = build(table, inner, counter);
            table.array_of(t, Some(*n))
        }
        TypeRecipe::Struct(fields) | TypeRecipe::Union(fields) => {
            let is_union = matches!(r, TypeRecipe::Union(_));
            let built: Vec<TypeId> = fields.iter().map(|f| build(table, f, counter)).collect();
            *counter += 1;
            let (rid, tid) = table.new_record(Some(format!("R{counter}")), is_union);
            table.complete_record(
                rid,
                built
                    .into_iter()
                    .enumerate()
                    .map(|(i, ty)| Field {
                        name: format!("f{i}"),
                        ty,
                        anonymous: false,
                    })
                    .collect(),
            );
            tid
        }
    }
}

/// Builds one random type per case and hands it to `check`.
fn for_each_case(salt: u64, mut check: impl FnMut(&TypeTable, TypeId, &mut Rng64)) {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(salt.wrapping_mul(0x9E37).wrapping_add(case));
        let recipe = random_recipe(&mut rng, 3);
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &recipe, &mut c);
        check(&table, ty, &mut rng);
    }
}

#[test]
fn layout_size_and_alignment_laws() {
    for_each_case(1, |table, ty, _| {
        for layout in [Layout::ilp32(), Layout::lp64(), Layout::packed32()] {
            let (size, align) = layout.size_align(table, ty);
            assert!(align >= 1);
            assert!(size % align == 0, "size {size} not multiple of align {align}");
            // Every leaf lies inside the object and is aligned (except in
            // packed mode where alignment is 1 anyway).
            for (off, lty) in layout.leaf_offsets(table, ty) {
                let (ls, la) = layout.size_align(table, lty);
                assert!(off + ls <= size, "leaf at {off}+{ls} beyond size {size}");
                assert!(off % la == 0, "leaf offset {off} misaligned ({la})");
            }
        }
    });
}

#[test]
fn canonical_offset_is_idempotent_and_bounded() {
    for_each_case(2, |table, ty, rng| {
        let layout = Layout::ilp32();
        let size = layout.size_of(table, ty);
        let probe = rng.gen_range(0..64) as u64;
        let off = if size == 0 { 0 } else { probe % size };
        let once = layout.canonical_offset(table, ty, off);
        let twice = layout.canonical_offset(table, ty, once);
        assert_eq!(once, twice, "canonical_offset not idempotent at {off}");
        assert!(
            once < size.max(1),
            "canonical offset {once} escaped object of size {size}"
        );
    });
}

#[test]
fn normalize_path_is_idempotent_and_a_leaf() {
    for_each_case(3, |table, ty, _| {
        let ls = leaves(table, ty);
        assert!(!ls.is_empty());
        // normalize of the empty path is the first leaf and is idempotent.
        let n1 = normalize_path(table, ty, &FieldPath::empty());
        let n2 = normalize_path(table, ty, &n1);
        assert_eq!(&n1, &n2);
        assert_eq!(&n1, &ls[0]);
        // Every leaf normalizes to itself.
        for l in &ls {
            assert_eq!(&normalize_path(table, ty, l), l);
        }
    });
}

#[test]
fn leaves_are_unique_and_typed() {
    for_each_case(4, |table, ty, _| {
        let ls = leaves(table, ty);
        let set: std::collections::HashSet<_> = ls.iter().collect();
        assert_eq!(set.len(), ls.len(), "duplicate leaves");
        for l in &ls {
            assert!(type_of_path(table, ty, l).is_some(), "leaf {l} untypable");
        }
    });
}

#[test]
fn following_leaves_contains_self_and_stays_in_type() {
    for_each_case(5, |table, ty, _| {
        let ls = leaves(table, ty);
        let all: std::collections::HashSet<_> = ls.iter().cloned().collect();
        for l in &ls {
            let fl = following_leaves(table, ty, l);
            assert!(fl.contains(l), "followingFields must include the field itself");
            for f in &fl {
                assert!(all.contains(f), "{f} is not a leaf of the type");
            }
        }
    });
}

#[test]
fn enclosing_candidates_normalize_back() {
    for_each_case(6, |table, ty, _| {
        for beta in leaves(table, ty) {
            for delta in enclosing_candidates(table, ty, &beta) {
                assert_eq!(normalize_path(table, ty, &delta), beta.clone());
            }
        }
    });
}

#[test]
fn compatibility_is_reflexive_and_symmetric() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x7000 + case);
        let ra = random_recipe(&mut rng, 3);
        let rb = random_recipe(&mut rng, 3);
        let mut table = TypeTable::new();
        let mut c = 0;
        let ta = build(&mut table, &ra, &mut c);
        let tb = build(&mut table, &rb, &mut c);
        for mode in [CompatMode::Structural, CompatMode::TagBased] {
            assert!(compatible(&table, ta, ta, mode));
            assert!(compatible(&table, tb, tb, mode));
            assert_eq!(
                compatible(&table, ta, tb, mode),
                compatible(&table, tb, ta, mode)
            );
        }
    }
}

#[test]
fn cis_is_symmetric_and_bounded() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x8000 + case);
        let ra = random_recipe(&mut rng, 3);
        let rb = random_recipe(&mut rng, 3);
        let mut table = TypeTable::new();
        let mut c = 0;
        let ta = build(&mut table, &ra, &mut c);
        let tb = build(&mut table, &rb, &mut c);
        let recs: Vec<RecordId> = [ta, tb]
            .iter()
            .filter_map(|&t| table.as_record(table.strip_arrays(t)))
            .collect();
        if recs.len() == 2 {
            let n1 = common_initial_len(&table, recs[0], recs[1], CompatMode::Structural);
            let n2 = common_initial_len(&table, recs[1], recs[0], CompatMode::Structural);
            assert_eq!(n1, n2, "CIS must be symmetric");
            let f0 = table.record(recs[0]).fields.len();
            let f1 = table.record(recs[1]).fields.len();
            assert!(n1 <= f0.min(f1));
        }
    }
}
