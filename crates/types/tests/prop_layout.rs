//! Property-based tests over randomly generated type structures: layout
//! arithmetic, normalization, and compatibility must satisfy their
//! algebraic laws for *every* type shape, not just the handwritten ones.

use proptest::prelude::*;
use structcast_types::{
    common_initial_len, compatible, enclosing_candidates, following_leaves, leaves,
    normalize_path, type_of_path, CompatMode, Field, FieldPath, Layout, RecordId, TypeId,
    TypeTable,
};

/// A recipe for building a random type tree (depth-bounded).
#[derive(Debug, Clone)]
enum TypeRecipe {
    Int,
    Char,
    Double,
    PtrInt,
    Array(Box<TypeRecipe>, u64),
    Struct(Vec<TypeRecipe>),
    Union(Vec<TypeRecipe>),
}

fn recipe_strategy() -> impl Strategy<Value = TypeRecipe> {
    let leaf = prop_oneof![
        Just(TypeRecipe::Int),
        Just(TypeRecipe::Char),
        Just(TypeRecipe::Double),
        Just(TypeRecipe::PtrInt),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            (inner.clone(), 1u64..4).prop_map(|(t, n)| TypeRecipe::Array(Box::new(t), n)),
            prop::collection::vec(inner.clone(), 1..5).prop_map(TypeRecipe::Struct),
            prop::collection::vec(inner, 1..4).prop_map(TypeRecipe::Union),
        ]
    })
}

fn build(table: &mut TypeTable, r: &TypeRecipe, counter: &mut u32) -> TypeId {
    match r {
        TypeRecipe::Int => table.int(),
        TypeRecipe::Char => table.char(),
        TypeRecipe::Double => table.double(),
        TypeRecipe::PtrInt => {
            let i = table.int();
            table.pointer_to(i)
        }
        TypeRecipe::Array(inner, n) => {
            let t = build(table, inner, counter);
            table.array_of(t, Some(*n))
        }
        TypeRecipe::Struct(fields) | TypeRecipe::Union(fields) => {
            let is_union = matches!(r, TypeRecipe::Union(_));
            let built: Vec<TypeId> = fields.iter().map(|f| build(table, f, counter)).collect();
            *counter += 1;
            let (rid, tid) = table.new_record(Some(format!("R{counter}")), is_union);
            table.complete_record(
                rid,
                built
                    .into_iter()
                    .enumerate()
                    .map(|(i, ty)| Field {
                        name: format!("f{i}"),
                        ty,
                        anonymous: false,
                    })
                    .collect(),
            );
            tid
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn layout_size_and_alignment_laws(r in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        for layout in [Layout::ilp32(), Layout::lp64(), Layout::packed32()] {
            let (size, align) = layout.size_align(&table, ty);
            prop_assert!(align >= 1);
            prop_assert!(size % align == 0, "size {size} not multiple of align {align}");
            // Every leaf lies inside the object and is aligned (except in
            // packed mode where alignment is 1 anyway).
            for (off, lty) in layout.leaf_offsets(&table, ty) {
                let (ls, la) = layout.size_align(&table, lty);
                prop_assert!(off + ls <= size, "leaf at {off}+{ls} beyond size {size}");
                prop_assert!(off % la == 0, "leaf offset {off} misaligned ({la})");
            }
        }
    }

    #[test]
    fn canonical_offset_is_idempotent_and_bounded(r in recipe_strategy(), probe in 0u64..64) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        let layout = Layout::ilp32();
        let size = layout.size_of(&table, ty);
        let off = if size == 0 { 0 } else { probe % size };
        let once = layout.canonical_offset(&table, ty, off);
        let twice = layout.canonical_offset(&table, ty, once);
        prop_assert_eq!(once, twice, "canonical_offset not idempotent at {}", off);
        prop_assert!(once < size.max(1), "canonical offset {} escaped object of size {}", once, size);
    }

    #[test]
    fn normalize_path_is_idempotent_and_a_leaf(r in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        let ls = leaves(&table, ty);
        prop_assert!(!ls.is_empty());
        // normalize of the empty path is the first leaf and is idempotent.
        let n1 = normalize_path(&table, ty, &FieldPath::empty());
        let n2 = normalize_path(&table, ty, &n1);
        prop_assert_eq!(&n1, &n2);
        prop_assert_eq!(&n1, &ls[0]);
        // Every leaf normalizes to itself.
        for l in &ls {
            prop_assert_eq!(&normalize_path(&table, ty, l), l);
        }
    }

    #[test]
    fn leaves_are_unique_and_typed(r in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        let ls = leaves(&table, ty);
        let set: std::collections::HashSet<_> = ls.iter().collect();
        prop_assert_eq!(set.len(), ls.len(), "duplicate leaves");
        for l in &ls {
            prop_assert!(type_of_path(&table, ty, l).is_some(), "leaf {l} untypable");
        }
    }

    #[test]
    fn following_leaves_contains_self_and_stays_in_type(r in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        let ls = leaves(&table, ty);
        let all: std::collections::HashSet<_> = ls.iter().cloned().collect();
        for l in &ls {
            let fl = following_leaves(&table, ty, l);
            prop_assert!(fl.contains(l), "followingFields must include the field itself");
            for f in &fl {
                prop_assert!(all.contains(f), "{f} is not a leaf of the type");
            }
        }
    }

    #[test]
    fn enclosing_candidates_normalize_back(r in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ty = build(&mut table, &r, &mut c);
        for beta in leaves(&table, ty) {
            for delta in enclosing_candidates(&table, ty, &beta) {
                prop_assert_eq!(normalize_path(&table, ty, &delta), beta.clone());
            }
        }
    }

    #[test]
    fn compatibility_is_reflexive_and_symmetric(a in recipe_strategy(), b in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ta = build(&mut table, &a, &mut c);
        let tb = build(&mut table, &b, &mut c);
        for mode in [CompatMode::Structural, CompatMode::TagBased] {
            prop_assert!(compatible(&table, ta, ta, mode));
            prop_assert!(compatible(&table, tb, tb, mode));
            prop_assert_eq!(
                compatible(&table, ta, tb, mode),
                compatible(&table, tb, ta, mode)
            );
        }
    }

    #[test]
    fn cis_is_symmetric_and_bounded(a in recipe_strategy(), b in recipe_strategy()) {
        let mut table = TypeTable::new();
        let mut c = 0;
        let ta = build(&mut table, &a, &mut c);
        let tb = build(&mut table, &b, &mut c);
        let recs: Vec<RecordId> = [ta, tb]
            .iter()
            .filter_map(|&t| table.as_record(table.strip_arrays(t)))
            .collect();
        if recs.len() == 2 {
            let n1 = common_initial_len(&table, recs[0], recs[1], CompatMode::Structural);
            let n2 = common_initial_len(&table, recs[1], recs[0], CompatMode::Structural);
            prop_assert_eq!(n1, n2, "CIS must be symmetric");
            let f0 = table.record(recs[0]).fields.len();
            let f1 = table.record(recs[1]).fields.len();
            prop_assert!(n1 <= f0.min(f1));
        }
    }
}
