//! # structcast-constraints
//!
//! The **model-independent constraint layer** of the structcast pipeline.
//!
//! The paper's evaluation runs all four framework instances — Offsets,
//! Collapse Always, Collapse on Cast, CIS — over every program. The work
//! that does *not* depend on the instance (walking the IR, resolving
//! declared/pointee types, locating the `char` fallback type, cloning
//! operand field paths) is hoisted here and performed **once** per
//! program: [`ConstraintSet::compile`] lowers a [`Program`] into a flat
//! list of [`Constraint`]s with interned field paths and pre-resolved
//! types. A per-model *specialization* stage (in the `structcast` core
//! crate) then maps each constraint's `(object, path)` operands through
//! the chosen instance's `normalize` function without ever re-walking
//! the IR, and the difference-propagation solver consumes the result.
//!
//! ```text
//!   Program ──compile──▶ ConstraintSet ──specialize(model)──▶ solver
//!            (once)                      (per instance, cheap)
//! ```
//!
//! The set has a stable, deterministic [`ConstraintSet::dump`] (and
//! [`ConstraintSet::to_json`]) used by `scast --dump-constraints`, the
//! golden-file tests, and as the seam for future incremental / parallel
//! solving.
//!
//! ```
//! use structcast_constraints::ConstraintSet;
//!
//! let prog = structcast_ir::lower_source("int x, *p; void f(void) { p = &x; }")?;
//! let cset = ConstraintSet::compile(&prog);
//! assert_eq!(cset.len(), prog.stmts.len());
//! assert!(cset.dump(&prog).contains("addrof"));
//! # Ok::<(), structcast_ir::LowerError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod incr;
mod slice;

pub use incr::{
    compile_incremental, diff_programs, removed_survivors, CompileReuse, ProgramDiff,
};
pub use slice::{ConstraintSlicer, Slice, SliceStats};

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use structcast_ir::{Callee, FuncId, ObjId, Program, Stmt};
use structcast_types::{FieldPath, IntKind, TypeId, TypeKind};

thread_local! {
    /// IR→constraint compilations performed on this thread (see
    /// [`compiles_on_thread`]).
    static COMPILES: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`ConstraintSet::compile`] calls performed **on the current
/// thread** since it started.
///
/// Thread-local on purpose: tests assert that a compile-once,
/// solve-many session performs exactly one compilation without racing
/// against compilations on other test threads.
pub fn compiles_on_thread() -> u64 {
    COMPILES.with(|c| c.get())
}

/// Dense id of a [`FieldPath`] interned in a [`ConstraintSet`].
///
/// Ids are assigned in first-use order during compilation and are only
/// meaningful against the set that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pre-normalized operand: the structure reference `obj.path`, with the
/// path interned in the owning [`ConstraintSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRef {
    /// The referenced object.
    pub obj: ObjId,
    /// Field path within the object's declared type (interned).
    pub path: PathId,
}

/// One model-independent constraint, mirroring the paper's five normalized
/// assignment forms (§2) plus the extensions. Every declared type a rule
/// consults (`τ`, `τ_p`, arithmetic pointee) is resolved here, at
/// compile time, so no instance re-derives types during solving.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Rule 1: `dst = (τ)&src.β`.
    AddrOf {
        /// Destination (top-level object).
        dst: ObjId,
        /// The object (or field) whose address is taken.
        src: OpRef,
    },
    /// Rule 2: `dst = (τ)&(*ptr).α`.
    AddrField {
        /// Destination.
        dst: ObjId,
        /// The dereferenced pointer.
        ptr: ObjId,
        /// `ptr`'s declared pointee type (with the `char` fallback already
        /// applied), the paper's `τ_p`.
        tau_p: TypeId,
        /// Field path relative to `tau_p` (interned).
        path: PathId,
    },
    /// Rule 3: `dst = (τ)src.β`.
    Copy {
        /// Destination.
        dst: ObjId,
        /// Source operand.
        src: OpRef,
        /// The copy-sizing type `τ` (declared type of `dst`).
        tau: TypeId,
    },
    /// Rule 4: `dst = (τ)*ptr`.
    Load {
        /// Destination.
        dst: ObjId,
        /// The dereferenced pointer.
        ptr: ObjId,
        /// The copy-sizing type `τ` (declared type of `dst`).
        tau: TypeId,
    },
    /// Rule 5: `*ptr = (τ_p)src`.
    Store {
        /// The dereferenced pointer.
        ptr: ObjId,
        /// Source (top-level).
        src: ObjId,
        /// `ptr`'s declared pointee type (`char` fallback applied).
        tau_p: TypeId,
    },
    /// Extension: pointer arithmetic (§4.2.1).
    PtrArith {
        /// Destination.
        dst: ObjId,
        /// The pointer operand.
        src: ObjId,
        /// Declared pointee of `src`, if it is a pointer (drives the
        /// Wilson–Lam stride refinement; no fallback, mirroring the
        /// solver's historical behaviour).
        pointee: Option<TypeId>,
    },
    /// Extension: `memcpy`-style bulk copy.
    CopyAll {
        /// Pointer to the destination block.
        dst_ptr: ObjId,
        /// Pointer to the source block.
        src_ptr: ObjId,
    },
    /// A deferred direct call: bindings synthesized by the solver once.
    CallDirect {
        /// The callee.
        fid: FuncId,
        /// Evaluated argument objects, in order.
        args: Vec<ObjId>,
        /// Where the return value goes, if used.
        ret: Option<ObjId>,
    },
    /// An indirect call: callees discovered from the function pointer's
    /// points-to set during solving.
    CallIndirect {
        /// The function pointer.
        ptr: ObjId,
        /// Evaluated argument objects, in order.
        args: Vec<ObjId>,
        /// Where the return value goes, if used.
        ret: Option<ObjId>,
    },
}

impl Constraint {
    /// Short kind tag used by the dumps (stable; golden tests rely on it).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Constraint::AddrOf { .. } => "addrof",
            Constraint::AddrField { .. } => "addrfield",
            Constraint::Copy { .. } => "copy",
            Constraint::Load { .. } => "load",
            Constraint::Store { .. } => "store",
            Constraint::PtrArith { .. } => "ptrarith",
            Constraint::CopyAll { .. } => "copyall",
            Constraint::CallDirect { .. } => "call",
            Constraint::CallIndirect { .. } => "icall",
        }
    }
}

/// The compiled, model-independent form of a program: one [`Constraint`]
/// per IR statement (order preserved), with field paths interned and the
/// `char` fallback type resolved once.
#[derive(Debug, Clone)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
    paths: Vec<FieldPath>,
    /// The interned `char` type, if the program's type table has one — the
    /// byte fallback for pointees of non-pointer values.
    char_ty: Option<TypeId>,
}

impl ConstraintSet {
    /// Lowers `prog` into constraints. This is the **only** place the IR
    /// statement list is walked; everything downstream (per-model
    /// specialization, solving, dumps) works off the returned set.
    pub fn compile(prog: &Program) -> ConstraintSet {
        COMPILES.with(|c| c.set(c.get() + 1));
        let char_kind = TypeKind::Int(IntKind::Char);
        let char_ty = (0..prog.types.len() as u32)
            .map(TypeId)
            .find(|t| prog.types.kind(*t) == &char_kind);
        let mut b = Builder {
            prog,
            char_ty,
            paths: Vec::new(),
            path_ids: HashMap::new(),
        };
        let constraints = prog.stmts.iter().map(|s| b.lower(s)).collect();
        ConstraintSet {
            constraints,
            paths: b.paths,
            char_ty,
        }
    }

    /// Reassembles a set from previously compiled parts without walking
    /// any IR — the snapshot-restore path. Unlike
    /// [`compile`](ConstraintSet::compile) this does **not** bump the
    /// per-thread compile counter: nothing was compiled, the parts were.
    /// The caller is responsible for the parts having originally come from
    /// `compile` on the same program; the solver trusts every interned
    /// [`PathId`] to index `paths`.
    pub fn from_parts(
        constraints: Vec<Constraint>,
        paths: Vec<FieldPath>,
        char_ty: Option<TypeId>,
    ) -> ConstraintSet {
        ConstraintSet {
            constraints,
            paths,
            char_ty,
        }
    }

    /// The constraints, in statement order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Iterates over the constraints in statement order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.constraints.iter()
    }

    /// Number of constraints (one per IR statement).
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the program had no statements.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The field path behind an interned id.
    pub fn path(&self, id: PathId) -> &FieldPath {
        &self.paths[id.index()]
    }

    /// Number of distinct interned field paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// The pre-resolved `char` fallback type, if the type table has one.
    pub fn char_ty(&self) -> Option<TypeId> {
        self.char_ty
    }

    /// The shard that owns constraint `idx` when the set is split `nshards`
    /// ways. The assignment is a fixed round-robin over statement indices,
    /// so it is stable across rounds of a parallel solve — per-statement
    /// scan state can live in the owning shard for the whole run.
    pub fn shard_of(idx: u32, nshards: usize) -> usize {
        (idx as usize) % nshards.max(1)
    }

    /// Iterates over the `(index, constraint)` pairs owned by `shard` under
    /// the fixed `nshards`-way split, in statement order.
    pub fn shard_iter(
        &self,
        shard: usize,
        nshards: usize,
    ) -> impl Iterator<Item = (u32, &Constraint)> + '_ {
        self.constraints
            .iter()
            .enumerate()
            .filter(move |(i, _)| Self::shard_of(*i as u32, nshards) == shard)
            .map(|(i, c)| (i as u32, c))
    }

    /// How many constraints each shard owns under an `nshards`-way split.
    /// The round-robin assignment keeps the sizes within one of each other.
    pub fn shard_sizes(&self, nshards: usize) -> Vec<usize> {
        let nshards = nshards.max(1);
        let mut sizes = vec![0usize; nshards];
        for i in 0..self.constraints.len() {
            sizes[Self::shard_of(i as u32, nshards)] += 1;
        }
        sizes
    }

    /// Renders one operand as `name` / `name.0.1` with source names.
    fn fmt_op(&self, prog: &Program, op: OpRef) -> String {
        let name = esc_name(&prog.object(op.obj).name);
        let p = self.path(op.path);
        if p.is_empty() {
            name
        } else {
            format!("{name}{p}")
        }
    }

    /// Renders one constraint as a single dump line (without index).
    pub fn display_constraint(&self, prog: &Program, c: &Constraint) -> String {
        let name = |o: &ObjId| esc_name(&prog.object(*o).name);
        let ty = |t: &TypeId| prog.types.display(*t);
        match c {
            Constraint::AddrOf { dst, src } => {
                format!("addrof    {} = &{}", name(dst), self.fmt_op(prog, *src))
            }
            Constraint::AddrField { dst, ptr, tau_p, path } => format!(
                "addrfield {} = &(*{}){}  [tau_p: {}]",
                name(dst),
                name(ptr),
                self.path(*path),
                ty(tau_p)
            ),
            Constraint::Copy { dst, src, tau } => format!(
                "copy      {} = {}  [tau: {}]",
                name(dst),
                self.fmt_op(prog, *src),
                ty(tau)
            ),
            Constraint::Load { dst, ptr, tau } => {
                format!("load      {} = *{}  [tau: {}]", name(dst), name(ptr), ty(tau))
            }
            Constraint::Store { ptr, src, tau_p } => {
                format!("store     *{} = {}  [tau_p: {}]", name(ptr), name(src), ty(tau_p))
            }
            Constraint::PtrArith { dst, src, pointee } => format!(
                "ptrarith  {} = {} +- n  [pointee: {}]",
                name(dst),
                name(src),
                pointee.map_or_else(|| "-".to_string(), |p| ty(&p))
            ),
            Constraint::CopyAll { dst_ptr, src_ptr } => {
                format!("copyall   *{} <= *{}", name(dst_ptr), name(src_ptr))
            }
            Constraint::CallDirect { fid, args, ret } => format!(
                "call      {}({}){}",
                prog.function(*fid).name,
                args.iter().map(&name).collect::<Vec<_>>().join(", "),
                ret.map_or_else(String::new, |r| format!(" -> {}", name(&r)))
            ),
            Constraint::CallIndirect { ptr, args, ret } => format!(
                "icall     (*{})({}){}",
                name(ptr),
                args.iter().map(&name).collect::<Vec<_>>().join(", "),
                ret.map_or_else(String::new, |r| format!(" -> {}", name(&r)))
            ),
        }
    }

    /// The deterministic plain-text dump: a fixed header followed by one
    /// line per constraint, sorted by (zero-padded) constraint index so
    /// the lexicographic and statement orders coincide. Stable across
    /// runs for a given program — the golden-file tests and
    /// `scast --dump-constraints` both print exactly this.
    pub fn dump(&self, prog: &Program) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# structcast-constraints v1");
        let _ = writeln!(
            s,
            "# constraints={} paths={} objects={} functions={}",
            self.len(),
            self.num_paths(),
            prog.objects.len(),
            prog.functions.len()
        );
        let width = self.len().saturating_sub(1).to_string().len().max(4);
        for (i, c) in self.constraints.iter().enumerate() {
            let _ = writeln!(s, "c{i:0width$} {}", self.display_constraint(prog, c));
        }
        s
    }

    /// The dump as a JSON array (one object per constraint, statement
    /// order), for tooling that would rather not parse the text form.
    pub fn to_json(&self, prog: &Program) -> String {
        let esc = |x: &str| x.replace('\\', "\\\\").replace('"', "\\\"");
        let mut s = String::from("[\n");
        for (i, c) in self.constraints.iter().enumerate() {
            let line = self.display_constraint(prog, c);
            let text = esc(line.split_whitespace().skip(1).collect::<Vec<_>>().join(" ").as_str());
            let _ = write!(
                s,
                "  {{\"idx\": {i}, \"kind\": \"{}\", \"text\": \"{text}\"}}",
                c.kind_name()
            );
            s.push_str(if i + 1 == self.constraints.len() { "\n" } else { ",\n" });
        }
        s.push_str("]\n");
        s
    }
}

/// Escapes control characters in an object name so every constraint
/// renders as exactly one dump line (string-literal objects can carry
/// embedded `\n`/`\t` from the source program).
fn esc_name(name: &str) -> String {
    if !name.contains(|ch: char| ch.is_control()) {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 4);
    for ch in name.chars() {
        match ch {
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{{{:04x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Compilation state: path interner + type resolution helpers.
struct Builder<'p> {
    prog: &'p Program,
    char_ty: Option<TypeId>,
    paths: Vec<FieldPath>,
    path_ids: HashMap<FieldPath, PathId>,
}

impl<'p> Builder<'p> {
    fn path_id(&mut self, path: &FieldPath) -> PathId {
        if let Some(&id) = self.path_ids.get(path) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(path.clone());
        self.path_ids.insert(path.clone(), id);
        id
    }

    fn op(&mut self, obj: ObjId, path: &FieldPath) -> OpRef {
        OpRef {
            obj,
            path: self.path_id(path),
        }
    }

    /// The declared pointee type of `ptr`, with the byte (`char`) fallback
    /// for values whose declared type is not a pointer.
    fn pointee(&self, ptr: ObjId) -> TypeId {
        match self.prog.pointee_of(ptr) {
            Some(t) => t,
            None => self.char_ty.unwrap_or_else(|| self.prog.type_of(ptr)),
        }
    }

    fn lower(&mut self, stmt: &Stmt) -> Constraint {
        match stmt {
            Stmt::AddrOf { dst, src, path } => Constraint::AddrOf {
                dst: *dst,
                src: self.op(*src, path),
            },
            Stmt::AddrField { dst, ptr, path } => Constraint::AddrField {
                dst: *dst,
                ptr: *ptr,
                tau_p: self.pointee(*ptr),
                path: self.path_id(path),
            },
            Stmt::Copy { dst, src, path } => Constraint::Copy {
                dst: *dst,
                src: self.op(*src, path),
                tau: self.prog.type_of(*dst),
            },
            Stmt::Load { dst, ptr } => Constraint::Load {
                dst: *dst,
                ptr: *ptr,
                tau: self.prog.type_of(*dst),
            },
            Stmt::Store { ptr, src } => Constraint::Store {
                ptr: *ptr,
                src: *src,
                tau_p: self.pointee(*ptr),
            },
            Stmt::PtrArith { dst, src } => Constraint::PtrArith {
                dst: *dst,
                src: *src,
                pointee: self.prog.pointee_of(*src),
            },
            Stmt::CopyAll { dst_ptr, src_ptr } => Constraint::CopyAll {
                dst_ptr: *dst_ptr,
                src_ptr: *src_ptr,
            },
            Stmt::Call { callee, args, ret } => match callee {
                Callee::Direct(fid) => Constraint::CallDirect {
                    fid: *fid,
                    args: args.clone(),
                    ret: *ret,
                },
                Callee::Indirect(fp) => Constraint::CallIndirect {
                    ptr: *fp,
                    args: args.clone(),
                    ret: *ret,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "struct S { int *s1; int *s2; } s;\n\
        int x, y, *p; int **pp;\n\
        void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; pp = &p; p = *pp; }";

    fn compile(src: &str) -> (Program, ConstraintSet) {
        let prog = structcast_ir::lower_source(src).unwrap();
        let cset = ConstraintSet::compile(&prog);
        (prog, cset)
    }

    #[test]
    fn one_constraint_per_statement_in_order() {
        let (prog, cset) = compile(SRC);
        assert_eq!(cset.len(), prog.stmts.len());
        assert!(!cset.is_empty());
        // Kinds line up with the statement forms positionally.
        for (stmt, c) in prog.stmts.iter().zip(cset.iter()) {
            let expect = match stmt {
                Stmt::AddrOf { .. } => "addrof",
                Stmt::AddrField { .. } => "addrfield",
                Stmt::Copy { .. } => "copy",
                Stmt::Load { .. } => "load",
                Stmt::Store { .. } => "store",
                Stmt::PtrArith { .. } => "ptrarith",
                Stmt::CopyAll { .. } => "copyall",
                Stmt::Call { callee: Callee::Direct(_), .. } => "call",
                Stmt::Call { callee: Callee::Indirect(_), .. } => "icall",
            };
            assert_eq!(c.kind_name(), expect);
        }
    }

    #[test]
    fn paths_are_interned_and_deduplicated() {
        let (_prog, cset) = compile(SRC);
        // The empty path and the two struct field paths, at minimum, but
        // each distinct path appears exactly once.
        assert!(cset.num_paths() >= 2);
        for i in 0..cset.num_paths() {
            for j in (i + 1)..cset.num_paths() {
                assert_ne!(
                    cset.path(PathId(i as u32)),
                    cset.path(PathId(j as u32)),
                    "duplicate interned path"
                );
            }
        }
    }

    #[test]
    fn dump_is_deterministic_and_indexed() {
        let (prog, cset) = compile(SRC);
        let d1 = cset.dump(&prog);
        let d2 = ConstraintSet::compile(&prog).dump(&prog);
        assert_eq!(d1, d2, "dump must be deterministic");
        assert!(d1.starts_with("# structcast-constraints v1\n"));
        assert!(d1.contains("addrof"));
        assert!(d1.contains("copy"));
        let lines: Vec<&str> = d1.lines().skip(2).collect();
        assert_eq!(lines.len(), cset.len());
        // Zero-padded indices make lexicographic order == statement order.
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn json_dump_has_one_record_per_constraint() {
        let (prog, cset) = compile(SRC);
        let j = cset.to_json(&prog);
        assert_eq!(j.matches("\"idx\"").count(), cset.len());
        assert!(j.contains("\"kind\": \"addrof\""));
    }

    #[test]
    fn compile_counter_counts_this_thread() {
        let (prog, _) = compile(SRC);
        let before = compiles_on_thread();
        let _ = ConstraintSet::compile(&prog);
        let _ = ConstraintSet::compile(&prog);
        assert_eq!(compiles_on_thread() - before, 2);
    }

    #[test]
    fn shards_partition_the_constraints() {
        let (_prog, cset) = compile(SRC);
        for nshards in [1usize, 2, 3, 8] {
            let sizes = cset.shard_sizes(nshards);
            assert_eq!(sizes.len(), nshards);
            assert_eq!(sizes.iter().sum::<usize>(), cset.len());
            // Round-robin keeps shards balanced to within one constraint.
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards: {sizes:?}");
            // shard_iter covers every index exactly once, in order, and
            // agrees with shard_of.
            let mut seen = vec![false; cset.len()];
            for shard in 0..nshards {
                let mut last = None;
                for (i, _) in cset.shard_iter(shard, nshards) {
                    assert_eq!(ConstraintSet::shard_of(i, nshards), shard);
                    assert!(last < Some(i), "shard_iter out of order");
                    last = Some(i);
                    assert!(!seen[i as usize], "index {i} in two shards");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some constraint unassigned");
        }
        // A degenerate shard count behaves like 1.
        assert_eq!(ConstraintSet::shard_of(5, 0), 0);
    }

    #[test]
    fn types_are_resolved_at_compile_time() {
        let (prog, cset) = compile(
            "int x, *p, **pp; void f(void) { pp = &p; *pp = &x; }",
        );
        let store = cset
            .iter()
            .find(|c| matches!(c, Constraint::Store { .. }))
            .expect("store constraint");
        if let Constraint::Store { tau_p, .. } = store {
            assert_eq!(prog.types.display(*tau_p), "int *");
        }
    }
}
