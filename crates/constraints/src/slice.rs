//! Demand-driven slicing of a compiled [`ConstraintSet`].
//!
//! A query about one pointer does not need the whole-program fixpoint: it
//! needs exactly the constraints that can *produce* facts rooted at the
//! queried object, transitively. [`ConstraintSlicer`] extracts that
//! sub-[`ConstraintSet`] with a backward reachability pass over the
//! pre-resolved dependency structure, at **object granularity**: the four
//! framework instances' `normalize`/`lookup`/`resolve` hooks never move a
//! location out of its object (a field path or byte offset stays within
//! the object that owns it), so "which constraints can write object `o`"
//! is model-independent and can be answered once, here, from the
//! stage-1 constraints.
//!
//! Per constraint kind, the write/read sets are:
//!
//! | kind        | writes (fact roots)                   | reads (fact roots)            |
//! |-------------|---------------------------------------|-------------------------------|
//! | `addrof`    | `dst`                                 | — (the target is an address)  |
//! | `addrfield` | `dst`                                 | `ptr`                         |
//! | `copy`      | `dst`                                 | `src`                         |
//! | `load`      | `dst`                                 | `ptr` + contents of pointees  |
//! | `store`     | contents of pointees of `ptr`         | `ptr`, `src`                  |
//! | `ptrarith`  | `dst`                                 | `src`                         |
//! | `copyall`   | contents of pointees of `dst_ptr`     | both ptrs + pointee contents  |
//! | `call`      | callee params/varargs, `ret`          | args, callee return slot      |
//! | `icall`     | params of any address-taken function, `ret` | `ptr`, args, their return slots |
//!
//! "Pointees" cannot be known without solving, but they are bounded: every
//! object a points-to set can ever contain enters the relation through an
//! `addrof` source (heap allocations, string literals, `&f` function
//! values and `&x` all lower to `AddrOf`). That **address-taken set** is
//! computed statically, and the slicer closes over it conservatively:
//!
//! * once any address-taken object is relevant, every `store`/`copyall`
//!   joins the slice (each may write that object's contents), and
//! * once a `load`/`copyall` joins the slice, every address-taken object
//!   becomes relevant (the pointee whose contents it reads is among them).
//!
//! The closure makes the slice sound and *complete* for the relevant
//! objects: the least fixpoint of the slice agrees with the whole-program
//! fixpoint on every fact rooted at a relevant object, for all four field
//! models — casts included, because cast sensitivity only changes how a
//! model normalizes paths *within* an object, never which object a
//! constraint touches.

use crate::{Constraint, ConstraintSet};
use std::collections::{BTreeSet, HashMap};
use structcast_ir::{ObjId, Program};

/// Size accounting for one slice, reported by benches, the server's
/// demand metrics, and `scast --demand`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceStats {
    /// Constraints in the full program.
    pub total_statements: usize,
    /// Constraints the slice retained.
    pub slice_statements: usize,
    /// Objects the backward pass marked relevant.
    pub relevant_objects: usize,
    /// Size of the program's address-taken set.
    pub address_taken: usize,
}

impl SliceStats {
    /// `slice_statements / total_statements` (0 for an empty program).
    pub fn ratio(&self) -> f64 {
        if self.total_statements == 0 {
            0.0
        } else {
            self.slice_statements as f64 / self.total_statements as f64
        }
    }
}

/// A demand slice: the sub-[`ConstraintSet`] to solve, plus the mapping
/// back to whole-program statement indices.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The retained constraints, in original statement order, sharing the
    /// parent set's interned paths (a `PathId` means the same thing in
    /// both sets).
    pub set: ConstraintSet,
    /// `stmt_map[i]` is the original constraint index of the slice's
    /// `i`-th constraint (strictly increasing). Call edges discovered
    /// while solving the slice are remapped through this.
    pub stmt_map: Vec<u32>,
    /// Size accounting.
    pub stats: SliceStats,
}

/// Backward-reachability slicer over a compiled [`ConstraintSet`]; see
/// the module docs for the per-kind rules. Construction precomputes the
/// write-dependency index and the address-taken set once; each
/// [`slice`](ConstraintSlicer::slice) call is then a worklist pass over
/// that index.
pub struct ConstraintSlicer<'a> {
    prog: &'a Program,
    cset: &'a ConstraintSet,
    /// Objects whose address is taken (`AddrOf` sources): the universe of
    /// possible points-to targets.
    at: BTreeSet<ObjId>,
    /// Constraint indices whose write set includes a given object.
    writers: HashMap<ObjId, Vec<u32>>,
    /// `store`/`copyall` indices: they write *through* pointers, into
    /// address-taken objects unknown before solving.
    indirect_writers: Vec<u32>,
    /// Return slots of address-taken functions (read by `icall` returns).
    at_ret_slots: Vec<ObjId>,
}

impl<'a> ConstraintSlicer<'a> {
    /// Builds the dependency index for `cset` (compiled from `prog`).
    pub fn new(prog: &'a Program, cset: &'a ConstraintSet) -> ConstraintSlicer<'a> {
        let mut at: BTreeSet<ObjId> = BTreeSet::new();
        for c in &cset.constraints {
            if let Constraint::AddrOf { src, .. } = c {
                at.insert(src.obj);
            }
        }
        // Params/varargs of address-taken functions: what an indirect
        // call can write before its callees are resolved.
        let at_funcs: Vec<&structcast_ir::Function> =
            prog.functions.iter().filter(|f| at.contains(&f.obj)).collect();
        let at_params: Vec<ObjId> = at_funcs
            .iter()
            .flat_map(|f| f.params.iter().copied().chain(f.varargs))
            .collect();
        let at_ret_slots: Vec<ObjId> = at_funcs.iter().filter_map(|f| f.ret_slot).collect();

        let mut writers: HashMap<ObjId, Vec<u32>> = HashMap::new();
        let mut indirect_writers: Vec<u32> = Vec::new();
        for (idx, c) in cset.constraints.iter().enumerate() {
            let idx = idx as u32;
            let mut add = |o: ObjId| writers.entry(o).or_default().push(idx);
            match c {
                Constraint::AddrOf { dst, .. }
                | Constraint::AddrField { dst, .. }
                | Constraint::Copy { dst, .. }
                | Constraint::Load { dst, .. }
                | Constraint::PtrArith { dst, .. } => add(*dst),
                Constraint::Store { .. } | Constraint::CopyAll { .. } => {
                    indirect_writers.push(idx);
                }
                Constraint::CallDirect { fid, ret, .. } => {
                    let f = prog.function(*fid);
                    for &p in &f.params {
                        add(p);
                    }
                    if let Some(va) = f.varargs {
                        add(va);
                    }
                    if let Some(r) = *ret {
                        add(r);
                    }
                }
                Constraint::CallIndirect { ret, .. } => {
                    for &p in &at_params {
                        add(p);
                    }
                    if let Some(r) = *ret {
                        add(r);
                    }
                }
            }
        }
        ConstraintSlicer {
            prog,
            cset,
            at,
            writers,
            indirect_writers,
            at_ret_slots,
        }
    }

    /// The address-taken set (every possible points-to target).
    pub fn address_taken(&self) -> &BTreeSet<ObjId> {
        &self.at
    }

    /// Pushes the fact roots constraint `c` reads onto `out`; returns
    /// whether it also reads the *contents* of pointee objects (which
    /// triggers the address-taken closure).
    fn reads_into(&self, c: &Constraint, out: &mut Vec<ObjId>) -> bool {
        match c {
            Constraint::AddrOf { .. } => false,
            Constraint::AddrField { ptr, .. } => {
                out.push(*ptr);
                false
            }
            Constraint::Copy { src, .. } => {
                out.push(src.obj);
                false
            }
            Constraint::Load { ptr, .. } => {
                out.push(*ptr);
                true
            }
            Constraint::Store { ptr, src, .. } => {
                out.push(*ptr);
                out.push(*src);
                false
            }
            Constraint::PtrArith { src, .. } => {
                out.push(*src);
                false
            }
            Constraint::CopyAll { dst_ptr, src_ptr } => {
                out.push(*dst_ptr);
                out.push(*src_ptr);
                true
            }
            Constraint::CallDirect { fid, args, ret } => {
                out.extend(args.iter().copied());
                if ret.is_some() {
                    out.extend(self.prog.function(*fid).ret_slot);
                }
                false
            }
            Constraint::CallIndirect { ptr, args, ret } => {
                out.push(*ptr);
                out.extend(args.iter().copied());
                if ret.is_some() {
                    out.extend(self.at_ret_slots.iter().copied());
                }
                false
            }
        }
    }

    /// The backward slice rooted at `roots` (see module docs).
    pub fn slice(&self, roots: &[ObjId]) -> Slice {
        self.slice_with_forced(roots, &[])
    }

    /// [`slice`](ConstraintSlicer::slice), with `forced` constraint
    /// indices unconditionally included (their reads join the closure).
    /// Demand MOD/REF uses this to pin the call sites of the statically
    /// reachable functions, so the slice resolves the same call edges the
    /// whole-program solve would.
    pub fn slice_with_forced(&self, roots: &[ObjId], forced: &[u32]) -> Slice {
        let n = self.cset.len();
        let mut included = vec![false; n];
        let mut relevant: BTreeSet<ObjId> = BTreeSet::new();
        let mut obj_queue: Vec<ObjId> = roots.to_vec();
        let mut stmt_queue: Vec<u32> =
            forced.iter().copied().filter(|&i| (i as usize) < n).collect();
        // Closure flags (each fires at most once): `need_at` marks that a
        // retained constraint reads pointee contents, `at_relevant` that
        // some address-taken object is relevant.
        let mut need_at = false;
        let mut at_expanded = false;
        let mut at_relevant = false;
        let mut stores_included = false;

        loop {
            if need_at && !at_expanded {
                at_expanded = true;
                obj_queue.extend(self.at.iter().copied());
            }
            if at_relevant && !stores_included {
                stores_included = true;
                stmt_queue.extend(self.indirect_writers.iter().copied());
            }
            if let Some(i) = stmt_queue.pop() {
                let idx = i as usize;
                if included[idx] {
                    continue;
                }
                included[idx] = true;
                need_at |= self.reads_into(&self.cset.constraints[idx], &mut obj_queue);
                continue;
            }
            if let Some(o) = obj_queue.pop() {
                if !relevant.insert(o) {
                    continue;
                }
                if self.at.contains(&o) {
                    at_relevant = true;
                }
                if let Some(ws) = self.writers.get(&o) {
                    stmt_queue.extend(ws.iter().copied());
                }
                continue;
            }
            // Queues drained; loop once more if a closure step is pending.
            if (need_at && !at_expanded) || (at_relevant && !stores_included) {
                continue;
            }
            break;
        }

        let stmt_map: Vec<u32> = (0..n as u32).filter(|&i| included[i as usize]).collect();
        let constraints: Vec<Constraint> = stmt_map
            .iter()
            .map(|&i| self.cset.constraints[i as usize].clone())
            .collect();
        let stats = SliceStats {
            total_statements: n,
            slice_statements: constraints.len(),
            relevant_objects: relevant.len(),
            address_taken: self.at.len(),
        };
        Slice {
            set: ConstraintSet {
                constraints,
                paths: self.cset.paths.clone(),
                char_ty: self.cset.char_ty,
            },
            stmt_map,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> (Program, ConstraintSet) {
        let prog = structcast_ir::lower_source(src).unwrap();
        let cset = ConstraintSet::compile(&prog);
        (prog, cset)
    }

    fn obj(prog: &Program, name: &str) -> ObjId {
        prog.object_by_name(name).unwrap()
    }

    #[test]
    fn independent_chains_do_not_join_the_slice() {
        let (prog, cset) = compile(
            "int x, y, *p, *q; void f(void) { p = &x; q = &y; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let slice = slicer.slice(&[obj(&prog, "p")]);
        assert_eq!(slice.stats.total_statements, cset.len());
        // Only p's chain (addrof through the lowering temp) is retained.
        assert!(slice.stats.slice_statements < cset.len());
        assert!(slice.set.dump(&prog).contains("&x"));
        assert!(!slice.set.dump(&prog).contains("&y"));
        // The queried pointer and its addrof target are relevant.
        assert!(slice.stats.relevant_objects >= 1);
    }

    #[test]
    fn copy_chains_are_followed_backward() {
        let (prog, cset) = compile(
            "int x, *a, *b, *c, *other; int z;\n\
             void f(void) { a = &x; b = a; c = b; other = &z; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let slice = slicer.slice(&[obj(&prog, "c")]);
        let dump = slice.set.dump(&prog);
        assert!(dump.contains("&x"), "{dump}");
        assert!(!dump.contains("other"), "{dump}");
        assert!(!dump.contains("&z"), "{dump}");
        assert!(slice.stats.slice_statements < cset.len());
        // stmt_map is a strictly increasing subsequence of the original.
        for w in slice.stmt_map.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(slice.stmt_map.len(), slice.set.len());
    }

    #[test]
    fn loads_pull_in_the_address_taken_closure() {
        let (prog, cset) = compile(
            "int x, *p, **pp, *out; int far, *unrelated;\n\
             void f(void) { pp = &p; p = &x; out = *pp; unrelated = &far; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let slice = slicer.slice(&[obj(&prog, "out")]);
        let dump = slice.set.dump(&prog);
        // The load and the pointer chain feeding it (through lowering
        // temps) are retained: out's value comes from *pp, whose pointee
        // p holds &x.
        assert!(dump.contains("load"), "{dump}");
        assert!(dump.contains("&p"), "{dump}");
        assert!(dump.contains("&x"), "{dump}");
        // The closure marks all address-taken objects relevant.
        assert!(slice.stats.relevant_objects >= slice.stats.address_taken);
    }

    #[test]
    fn stores_join_once_an_address_taken_object_is_relevant() {
        let (prog, cset) = compile(
            "int x, *p, **pp; void f(void) { pp = &p; *pp = &x; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        // p is written only through *pp; querying p must retain the store
        // and, transitively, pp's addrof.
        let slice = slicer.slice(&[obj(&prog, "p")]);
        let dump = slice.set.dump(&prog);
        assert!(dump.contains("store"), "{dump}");
        assert!(dump.contains("&p"), "{dump}");
        assert!(dump.contains("&x"), "{dump}");
    }

    #[test]
    fn calls_bind_params_and_returns() {
        let (prog, cset) = compile(
            "int x, *g;\n\
             int *id(int *a) { return a; }\n\
             void f(void) { g = id(&x); }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let slice = slicer.slice(&[obj(&prog, "g")]);
        let dump = slice.set.dump(&prog);
        // The lowering binds this call with explicit copies; the slice
        // follows g ← ret slot ← param ← &x across the function boundary.
        assert!(dump.contains("id::$ret"), "{dump}");
        assert!(dump.contains("id::a"), "{dump}");
        assert!(dump.contains("&x"), "{dump}");
    }

    #[test]
    fn empty_roots_and_forced_inclusion() {
        let (prog, cset) = compile(
            "int x, *p, *q; void f(void) { p = &x; q = p; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let empty = slicer.slice(&[]);
        assert_eq!(empty.stats.slice_statements, 0);
        assert_eq!(empty.stats.ratio(), 0.0);
        assert!(empty.set.is_empty());
        // Forcing an index includes it and closes over its reads.
        let q_idx = cset
            .constraints()
            .iter()
            .position(|c| matches!(c, Constraint::Copy { .. }))
            .unwrap() as u32;
        let forced = slicer.slice_with_forced(&[], &[q_idx]);
        assert_eq!(forced.stats.slice_statements, 2, "{}", forced.set.dump(&prog));
        // Out-of-range forced indices are ignored.
        let oob = slicer.slice_with_forced(&[], &[u32::MAX]);
        assert_eq!(oob.stats.slice_statements, 0);
    }

    #[test]
    fn slice_shares_interned_paths() {
        let (prog, cset) = compile(
            "struct S { int *a; int *b; } s; int x, *p;\n\
             void f(void) { s.a = &x; p = s.a; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let slice = slicer.slice(&[obj(&prog, "p")]);
        assert_eq!(slice.set.num_paths(), cset.num_paths());
        // Path ids in retained constraints resolve to the same paths.
        for (&orig, c) in slice.stmt_map.iter().zip(slice.set.iter()) {
            assert_eq!(c, &cset.constraints()[orig as usize]);
        }
    }

    #[test]
    fn address_taken_set_matches_addrof_sources() {
        let (prog, cset) = compile(
            "int x, y, *p; void g(void) {} void (*fp)(void);\n\
             void f(void) { p = &x; fp = g; }",
        );
        let slicer = ConstraintSlicer::new(&prog, &cset);
        let at = slicer.address_taken();
        assert!(at.contains(&obj(&prog, "x")));
        let g = prog.function_by_name("g").unwrap();
        assert!(at.contains(&g.obj), "function values are address-taken");
        assert!(!at.contains(&obj(&prog, "y")));
    }
}
