//! Incremental re-compilation: function-granular diffing of two lowered
//! programs and constraint reuse across the edit.
//!
//! The serving tier caches whole programs by source hash, so a one-line
//! edit used to recompile and re-solve everything. This module is stage 1
//! of the incremental pipeline: given the *old* program (with its compiled
//! [`ConstraintSet`]) and the freshly lowered *new* program, it
//!
//! 1. renders every function body (and the global-initializer section) to
//!    a **normalized form** that is stable under edits elsewhere — temps,
//!    heap sites, and string literals are numbered per function in first-
//!    appearance order instead of by their global counters, and every
//!    operand carries its structural type rendering;
//! 2. matches functions by name and their statements by normalized
//!    rendering (whole-body match for clean functions, longest common
//!    prefix/suffix for edited ones), producing a stable old→new
//!    remapping of object ids ([`ProgramDiff::obj_map`]);
//! 3. re-uses the old set's compiled constraints verbatim for every
//!    matched statement — object ids remapped, field paths re-interned,
//!    type ids translated structurally — and freshly lowers only the
//!    dirty statements ([`compile_incremental`]).
//!
//! The result is **exactly** the set [`ConstraintSet::compile`] would
//! produce for the new program (same constraints, same path-interning
//! order), which is what lets stage 2 (`structcast-core`'s incremental
//! solver) seed a fixpoint from surviving facts and still reach the cold
//! solve's edge set byte-for-byte.
//!
//! Record types are *nominal* in this IR (duplicate tags are allowed, and
//! displays don't expose field lists), so the diff first fingerprints the
//! two record tables index-by-index; any mismatch — a changed struct
//! definition invalidates interned field paths and normalized layouts
//! wholesale — makes the diff report a [`ProgramDiff::fallback`] and
//! callers do a cold compile+solve instead.

use crate::{Builder, Constraint, ConstraintSet, OpRef, PathId};
use std::collections::{HashMap, HashSet};
use structcast_ir::{Callee, FuncId, Function, ObjId, ObjKind, Program, Stmt};
use structcast_types::{FuncSig, IntKind, TypeId, TypeKind, TypeTable};

/// The outcome of diffing two lowered programs: a stable old→new object
/// remapping plus the statement pairing that drives constraint reuse and
/// fact retraction.
#[derive(Debug, Clone)]
pub struct ProgramDiff {
    /// Old object id → new object id, `None` when the object disappeared
    /// or could not be matched unambiguously. Facts rooted in unmapped
    /// objects are not carried across the edit.
    pub obj_map: Vec<Option<ObjId>>,
    /// Matched `(old statement, new statement)` index pairs. A pair's two
    /// statements have identical normalized renderings, so the old
    /// compiled constraint can be reused for the new statement.
    pub pairs: Vec<(u32, u32)>,
    /// New-program statements with no old counterpart (edited or added).
    pub dirty_stmts: Vec<u32>,
    /// Old-program statements with no new counterpart (edited or removed).
    pub removed_stmts: Vec<u32>,
    /// Functions whose header and body matched entirely.
    pub reused_fns: usize,
    /// Name-matched functions whose header or body changed.
    pub dirty_fns: usize,
    /// Whether the global-initializer statement section changed.
    pub globals_dirty: bool,
    /// When set, the programs could not be diffed soundly (e.g. a record
    /// definition changed) and callers must fall back to a cold
    /// compile+solve. All other fields are in their "everything dirty"
    /// state.
    pub fallback: Option<String>,
}

impl ProgramDiff {
    /// An "everything dirty" diff carrying a fallback reason.
    fn fallback(old: &Program, new: &Program, reason: String) -> ProgramDiff {
        ProgramDiff {
            obj_map: vec![None; old.objects.len()],
            pairs: Vec::new(),
            dirty_stmts: (0..new.stmts.len() as u32).collect(),
            removed_stmts: (0..old.stmts.len() as u32).collect(),
            reused_fns: 0,
            dirty_fns: new.functions.len(),
            globals_dirty: true,
            fallback: Some(reason),
        }
    }

    /// For each new statement, the old statement it was paired with.
    pub fn pair_of_new(&self, n_new: usize) -> Vec<Option<u32>> {
        let mut v = vec![None; n_new];
        for &(o, n) in &self.pairs {
            v[n as usize] = Some(o);
        }
        v
    }

    /// The new object each old object maps to, inverted: new id → old id.
    pub fn inverse_obj_map(&self, n_new: usize) -> Vec<Option<ObjId>> {
        let mut v = vec![None; n_new];
        for (o, m) in self.obj_map.iter().enumerate() {
            if let Some(n) = m {
                v[n.0 as usize] = Some(ObjId(o as u32));
            }
        }
        v
    }
}

/// How much of the constraint compilation was reused across an edit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileReuse {
    /// Constraints translated verbatim from the previous set.
    pub reused_constraints: usize,
    /// Constraints freshly lowered from the new IR.
    pub fresh_constraints: usize,
}

// ---------------------------------------------------------------------
// Normalized rendering
// ---------------------------------------------------------------------

/// Structural rendering of a type, for operand tokens. Unlike
/// `TypeTable::display` this refers to records by *index* (`#rec3`), not
/// tag — the record tables are verified identical index-by-index before
/// any rendering is compared, so equal renderings imply structurally
/// identical types across the two programs.
fn render_type(types: &TypeTable, t: TypeId) -> String {
    match types.kind(t) {
        TypeKind::Void => "void".into(),
        TypeKind::Int(k) => format!("i{k:?}"),
        TypeKind::Float(k) => format!("f{k:?}"),
        TypeKind::Enum(tag) => format!("enum:{}", tag.as_deref().unwrap_or("?")),
        TypeKind::Pointer(p) => format!("{}*", render_type(types, *p)),
        TypeKind::Array(e, n) => match n {
            Some(n) => format!("{}[{n}]", render_type(types, *e)),
            None => format!("{}[]", render_type(types, *e)),
        },
        TypeKind::Function(sig) => {
            let params: Vec<String> = sig.params.iter().map(|p| render_type(types, *p)).collect();
            format!(
                "{}({}{})",
                render_type(types, sig.ret),
                params.join(","),
                if sig.variadic { ",..." } else { "" }
            )
        }
        TypeKind::Record(r) => format!("#rec{}", r.0),
    }
}

/// Per-render-unit operand tokenizer. Named objects render by qualified
/// name; compiler-generated ones (temps, heap sites, string literals)
/// render *anonymously* — by kind and structural type only, with no
/// ordinal. An ordinal (even a per-unit one) makes every statement after
/// an inserted temp render differently, collapsing suffix pairing for the
/// whole rest of the function. Anonymous tokens keep pairing positional;
/// identity is recovered through the paired statements' operand
/// proposals, and any mis-proposal is caught downstream (conflicting
/// proposals demote the object; removed statements that don't survive
/// translation seed retraction of whatever they wrote).
struct Renderer<'p> {
    prog: &'p Program,
}

impl<'p> Renderer<'p> {
    fn new(prog: &'p Program) -> Self {
        Renderer { prog }
    }

    fn token(&mut self, o: ObjId) -> String {
        let ob = self.prog.object(o);
        let tyr = render_type(&self.prog.types, ob.ty);
        match ob.kind {
            ObjKind::Global => format!("g:{}:{tyr}", ob.name),
            ObjKind::Local(_) => format!("l:{}:{tyr}", ob.name),
            ObjKind::Param(_, i) => format!("p{i}:{}:{tyr}", ob.name),
            ObjKind::Function(_) => format!("f:{}:{tyr}", ob.name),
            ObjKind::Ret(_) => format!("r:{}:{tyr}", ob.name),
            ObjKind::VarArgs(_) => format!("v:{}:{tyr}", ob.name),
            ObjKind::Temp(_) => format!("%t:{tyr}"),
            ObjKind::Heap(_) => format!("%h:{tyr}"),
            ObjKind::StringLit => format!("%s:{}:{tyr}", ob.name),
        }
    }

    fn stmt(&mut self, s: &Stmt) -> String {
        match s {
            Stmt::AddrOf { dst, src, path } => {
                format!("addrof {} {} {path}", self.token(*dst), self.token(*src))
            }
            Stmt::AddrField { dst, ptr, path } => {
                format!("addrfield {} {} {path}", self.token(*dst), self.token(*ptr))
            }
            Stmt::Copy { dst, src, path } => {
                format!("copy {} {} {path}", self.token(*dst), self.token(*src))
            }
            Stmt::Load { dst, ptr } => format!("load {} {}", self.token(*dst), self.token(*ptr)),
            Stmt::Store { ptr, src } => format!("store {} {}", self.token(*ptr), self.token(*src)),
            Stmt::PtrArith { dst, src } => {
                format!("arith {} {}", self.token(*dst), self.token(*src))
            }
            Stmt::CopyAll { dst_ptr, src_ptr } => {
                format!("copyall {} {}", self.token(*dst_ptr), self.token(*src_ptr))
            }
            Stmt::Call { callee, args, ret } => {
                let c = match callee {
                    Callee::Direct(f) => {
                        format!("D{}", self.token(self.prog.function(*f).obj))
                    }
                    Callee::Indirect(p) => format!("I{}", self.token(*p)),
                };
                let args: Vec<String> = args.iter().map(|a| self.token(*a)).collect();
                let r = match ret {
                    Some(r) => self.token(*r),
                    None => "-".into(),
                };
                format!("call {c} ({}) -> {r}", args.join(" "))
            }
        }
    }
}

/// The statement operands, in a fixed order matching the rendering's
/// token order (used for positional pairing of unnamed objects).
fn operands(prog: &Program, s: &Stmt) -> Vec<ObjId> {
    match s {
        Stmt::AddrOf { dst, src, .. } => vec![*dst, *src],
        Stmt::AddrField { dst, ptr, .. } => vec![*dst, *ptr],
        Stmt::Copy { dst, src, .. } => vec![*dst, *src],
        Stmt::Load { dst, ptr } => vec![*dst, *ptr],
        Stmt::Store { ptr, src } => vec![*ptr, *src],
        Stmt::PtrArith { dst, src } => vec![*dst, *src],
        Stmt::CopyAll { dst_ptr, src_ptr } => vec![*dst_ptr, *src_ptr],
        Stmt::Call { callee, args, ret } => {
            let mut v = vec![match callee {
                Callee::Direct(f) => prog.function(*f).obj,
                Callee::Indirect(p) => *p,
            }];
            v.extend(args.iter().copied());
            v.extend(ret.iter().copied());
            v
        }
    }
}

/// The function's signature-level rendering: a change here invalidates the
/// object mapping of its params/ret/varargs (the body statements of every
/// caller change rendering too, via the operand tokens).
fn render_header(prog: &Program, f: &Function) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|&p| {
            let ob = prog.object(p);
            format!("{}:{}", ob.name, render_type(&prog.types, ob.ty))
        })
        .collect();
    format!(
        "fn {} ty={} params=[{}] variadic={} defined={} ret={} varargs={}",
        f.name,
        render_type(&prog.types, f.ty),
        params.join(","),
        f.variadic,
        f.defined,
        f.ret_slot.is_some(),
        f.varargs.is_some(),
    )
}

/// Renders the statements of one unit (a function body, or the global
/// initializers for `fid == None`) with a fresh per-unit [`Renderer`].
fn render_unit(prog: &Program, fid: Option<FuncId>) -> Vec<(u32, String)> {
    let mut r = Renderer::new(prog);
    prog.stmts
        .iter()
        .enumerate()
        .filter(|(i, _)| prog.stmt_funcs[*i] == fid)
        .map(|(i, s)| (i as u32, r.stmt(s)))
        .collect()
}

/// Index-by-index fingerprint of the two record tables. Any difference —
/// count, tag, unionness, completeness, field names or structural field
/// types — means interned paths and normalized layouts from the old
/// program are unsound against the new one.
fn records_differ(old: &TypeTable, new: &TypeTable) -> Option<String> {
    if old.record_count() != new.record_count() {
        return Some(format!(
            "record count changed ({} -> {})",
            old.record_count(),
            new.record_count()
        ));
    }
    for i in 0..old.record_count() as u32 {
        let rid = structcast_types::RecordId(i);
        let (a, b) = (old.record(rid), new.record(rid));
        let same = a.tag == b.tag
            && a.is_union == b.is_union
            && a.complete == b.complete
            && a.fields.len() == b.fields.len()
            && a.fields.iter().zip(&b.fields).all(|(fa, fb)| {
                fa.name == fb.name
                    && fa.anonymous == fb.anonymous
                    && render_type(old, fa.ty) == render_type(new, fb.ty)
            });
        if !same {
            return Some(format!(
                "record #{i} ({:?}) changed definition",
                b.tag.as_deref().unwrap_or("<anon>")
            ));
        }
    }
    None
}

/// Pairs two rendered statement sequences: longest common prefix and
/// suffix first, then the unmatched middles are content-matched by
/// identical rendering (greedy, in order, injective). The analysis is
/// flow-insensitive, so a statement that merely *moved* within its unit —
/// a swapped or reordered line — contributes the same constraint from its
/// new position; content-matching the middle keeps such edits free
/// instead of treating them as a removal (whose retraction cone can be
/// the statement's whole points-to closure) plus an addition. Whatever
/// still doesn't match stays dirty/removed. Returns whether both sides
/// paired completely.
fn pair_prefix_suffix(
    old: &[(u32, String)],
    new: &[(u32, String)],
    pairs: &mut Vec<(u32, u32)>,
) -> bool {
    let mut lo = 0;
    while lo < old.len() && lo < new.len() && old[lo].1 == new[lo].1 {
        pairs.push((old[lo].0, new[lo].0));
        lo += 1;
    }
    let mut hi = 0;
    while hi < old.len() - lo && hi < new.len() - lo {
        let (a, b) = (&old[old.len() - 1 - hi], &new[new.len() - 1 - hi]);
        if a.1 != b.1 {
            break;
        }
        pairs.push((a.0, b.0));
        hi += 1;
    }
    let mut by_render: HashMap<&str, std::collections::VecDeque<u32>> = HashMap::new();
    for (nj, s) in &new[lo..new.len() - hi] {
        by_render.entry(s.as_str()).or_default().push_back(*nj);
    }
    let mut matched_mid = 0;
    for (oi, s) in &old[lo..old.len() - hi] {
        if let Some(nj) = by_render.get_mut(s.as_str()).and_then(|q| q.pop_front()) {
            pairs.push((*oi, nj));
            matched_mid += 1;
        }
    }
    lo + hi + matched_mid == old.len() && lo + hi + matched_mid == new.len()
}

/// Name → object index for objects passing `keep`, names that appear more
/// than once removed (they cannot be matched by name).
fn unique_names(prog: &Program, keep: impl Fn(&ObjKind) -> bool) -> HashMap<&str, ObjId> {
    let mut map: HashMap<&str, ObjId> = HashMap::new();
    let mut dup: HashSet<&str> = HashSet::new();
    for (i, o) in prog.objects.iter().enumerate() {
        if !keep(&o.kind) {
            continue;
        }
        if map.insert(o.name.as_str(), ObjId(i as u32)).is_some() {
            dup.insert(o.name.as_str());
        }
    }
    for d in dup {
        map.remove(d);
    }
    map
}

/// Diffs two independently lowered programs (the previous session's and
/// the edited source's), producing the object remapping and statement
/// pairing that [`compile_incremental`] and the incremental solver
/// consume. Matching is conservative: anything ambiguous is left
/// unmapped/dirty, which costs reuse but never soundness.
pub fn diff_programs(old: &Program, new: &Program) -> ProgramDiff {
    if let Some(why) = records_differ(&old.types, &new.types) {
        return ProgramDiff::fallback(old, new, why);
    }

    let mut obj_map: Vec<Option<ObjId>> = vec![None; old.objects.len()];
    let mut used: HashSet<u32> = HashSet::new();
    let map = |obj_map: &mut Vec<Option<ObjId>>, used: &mut HashSet<u32>, o: ObjId, n: ObjId| {
        if used.insert(n.0) {
            obj_map[o.0 as usize] = Some(n);
        }
    };

    // Globals: by unique name, requiring an identical structural type.
    let new_globals = unique_names(new, |k| matches!(k, ObjKind::Global));
    for (i, ob) in old.objects.iter().enumerate() {
        if !matches!(ob.kind, ObjKind::Global) {
            continue;
        }
        if let Some(&n) = new_globals.get(ob.name.as_str()) {
            if render_type(&old.types, ob.ty) == render_type(&new.types, new.type_of(n)) {
                map(&mut obj_map, &mut used, ObjId(i as u32), n);
            }
        }
    }

    // Functions: matched by name. The function *object* maps whenever the
    // name survives (any statement whose meaning depends on the
    // function's type or signature renders differently and goes dirty, so
    // keeping `p -> f` facts through the map is always consistent with
    // the cold solve).
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut reused_fns = 0usize;
    let mut dirty_fns = 0usize;
    for f_old in &old.functions {
        let Some(f_new) = new.function_by_name(&f_old.name) else {
            continue; // removed function: all its statements stay unpaired
        };
        map(&mut obj_map, &mut used, f_old.obj, f_new.obj);
        if render_header(old, f_old) != render_header(new, f_new) {
            dirty_fns += 1;
            continue;
        }
        for (&po, &pn) in f_old.params.iter().zip(&f_new.params) {
            map(&mut obj_map, &mut used, po, pn);
        }
        if let (Some(ro), Some(rn)) = (f_old.ret_slot, f_new.ret_slot) {
            map(&mut obj_map, &mut used, ro, rn);
        }
        if let (Some(vo), Some(vn)) = (f_old.varargs, f_new.varargs) {
            map(&mut obj_map, &mut used, vo, vn);
        }
        // Locals by (unique) qualified name with identical type.
        let new_locals = unique_names(new, |k| *k == ObjKind::Local(f_new.id));
        let old_locals = unique_names(old, |k| *k == ObjKind::Local(f_old.id));
        for (name, &o) in &old_locals {
            if let Some(&n) = new_locals.get(name) {
                if render_type(&old.types, old.type_of(o)) == render_type(&new.types, new.type_of(n))
                {
                    map(&mut obj_map, &mut used, o, n);
                }
            }
        }
        let body_old = render_unit(old, Some(f_old.id));
        let body_new = render_unit(new, Some(f_new.id));
        if pair_prefix_suffix(&body_old, &body_new, &mut pairs) {
            reused_fns += 1;
        } else {
            dirty_fns += 1;
        }
    }

    // Global-initializer statements, paired like a function body.
    let init_old = render_unit(old, None);
    let init_new = render_unit(new, None);
    let globals_dirty = !pair_prefix_suffix(&init_old, &init_new, &mut pairs);

    // Unnamed objects (temps, heap sites, string literals — and shadowed
    // locals the name maps skipped): positional proposals over the paired
    // statements, applied only when consistent and injective.
    let mut proposals: HashMap<u32, HashSet<u32>> = HashMap::new();
    let mut demote: HashSet<u32> = HashSet::new();
    for &(oi, nj) in &pairs {
        let oo = operands(old, &old.stmts[oi as usize]);
        let no = operands(new, &new.stmts[nj as usize]);
        debug_assert_eq!(oo.len(), no.len(), "paired statements must agree in form");
        for (&o, &n) in oo.iter().zip(&no) {
            match obj_map[o.0 as usize] {
                // A name-mapped object positionally matched to a different
                // target: ambiguous (duplicate names); drop its mapping.
                Some(m) if m != n => {
                    demote.insert(o.0);
                }
                Some(_) => {}
                None => {
                    proposals.entry(o.0).or_default().insert(n.0);
                }
            }
        }
    }
    let mut claims: HashMap<u32, u32> = HashMap::new(); // target -> #claimants
    for set in proposals.values() {
        if let [t] = *set.iter().copied().collect::<Vec<_>>().as_slice() {
            *claims.entry(t).or_default() += 1;
        }
    }
    for (o, set) in &proposals {
        let one: Vec<u32> = set.iter().copied().collect();
        if let [t] = *one.as_slice() {
            if claims[&t] == 1 && used.insert(t) {
                obj_map[*o as usize] = Some(ObjId(t));
            }
        }
    }
    for o in demote {
        obj_map[o as usize] = None;
    }

    let paired_old: HashSet<u32> = pairs.iter().map(|&(o, _)| o).collect();
    let paired_new: HashSet<u32> = pairs.iter().map(|&(_, n)| n).collect();
    ProgramDiff {
        obj_map,
        dirty_stmts: (0..new.stmts.len() as u32)
            .filter(|i| !paired_new.contains(i))
            .collect(),
        removed_stmts: (0..old.stmts.len() as u32)
            .filter(|i| !paired_old.contains(i))
            .collect(),
        pairs,
        reused_fns,
        dirty_fns,
        globals_dirty,
        fallback: None,
    }
}

// ---------------------------------------------------------------------
// Incremental constraint compilation
// ---------------------------------------------------------------------

/// Structural old→new type-id translation, memoized. Record ids map by
/// identity (the tables were fingerprinted equal); everything else maps
/// by translating the inner ids and looking the rebuilt kind up in the
/// new table. `None` when the new table never interned the kind — the
/// caller freshly lowers that statement instead.
fn translate_type(
    old: &TypeTable,
    new: &TypeTable,
    t: TypeId,
    memo: &mut HashMap<TypeId, Option<TypeId>>,
) -> Option<TypeId> {
    if let Some(&m) = memo.get(&t) {
        return m;
    }
    let kind = match old.kind(t) {
        k @ (TypeKind::Void | TypeKind::Int(_) | TypeKind::Float(_) | TypeKind::Enum(_)) => {
            k.clone()
        }
        TypeKind::Record(r) => TypeKind::Record(*r),
        TypeKind::Pointer(p) => match translate_type(old, new, *p, memo) {
            Some(p) => TypeKind::Pointer(p),
            None => {
                memo.insert(t, None);
                return None;
            }
        },
        TypeKind::Array(e, n) => match translate_type(old, new, *e, memo) {
            Some(e) => TypeKind::Array(e, *n),
            None => {
                memo.insert(t, None);
                return None;
            }
        },
        TypeKind::Function(sig) => {
            let ret = translate_type(old, new, sig.ret, memo);
            let params: Option<Vec<TypeId>> = sig
                .params
                .iter()
                .map(|p| translate_type(old, new, *p, memo))
                .collect();
            match (ret, params) {
                (Some(ret), Some(params)) => TypeKind::Function(FuncSig {
                    ret,
                    params,
                    variadic: sig.variadic,
                }),
                _ => {
                    memo.insert(t, None);
                    return None;
                }
            }
        }
    };
    let id = new.lookup(&kind);
    memo.insert(t, id);
    id
}

/// Translation context for reusing one old constraint against the new
/// program.
struct Translator<'a> {
    old_prog: &'a Program,
    old_set: &'a ConstraintSet,
    new_prog: &'a Program,
    obj_map: &'a [Option<ObjId>],
    type_memo: HashMap<TypeId, Option<TypeId>>,
}

impl Translator<'_> {
    fn obj(&self, o: ObjId) -> Option<ObjId> {
        self.obj_map.get(o.0 as usize).copied().flatten()
    }

    fn ty(&mut self, t: TypeId) -> Option<TypeId> {
        translate_type(
            &self.old_prog.types,
            &self.new_prog.types,
            t,
            &mut self.type_memo,
        )
    }

    fn func(&self, f: FuncId) -> Option<FuncId> {
        self.new_prog.as_function(self.obj(self.old_prog.function(f).obj)?)
    }

    /// Reuses one old constraint: objects remapped, the field path
    /// re-interned in `b`, types translated. `None` (unmatched object or
    /// type) means the caller lowers the statement fresh — provably the
    /// same result, just without reuse.
    fn constraint(&mut self, c: &Constraint, b: &mut Builder<'_>) -> Option<Constraint> {
        let out = match c {
            Constraint::AddrOf { dst, src } => Constraint::AddrOf {
                dst: self.obj(*dst)?,
                src: OpRef {
                    obj: self.obj(src.obj)?,
                    path: b.path_id(self.old_set.path(src.path)),
                },
            },
            Constraint::AddrField {
                dst,
                ptr,
                tau_p,
                path,
            } => Constraint::AddrField {
                dst: self.obj(*dst)?,
                ptr: self.obj(*ptr)?,
                tau_p: self.ty(*tau_p)?,
                path: b.path_id(self.old_set.path(*path)),
            },
            Constraint::Copy { dst, src, tau } => Constraint::Copy {
                dst: self.obj(*dst)?,
                src: OpRef {
                    obj: self.obj(src.obj)?,
                    path: b.path_id(self.old_set.path(src.path)),
                },
                tau: self.ty(*tau)?,
            },
            Constraint::Load { dst, ptr, tau } => Constraint::Load {
                dst: self.obj(*dst)?,
                ptr: self.obj(*ptr)?,
                tau: self.ty(*tau)?,
            },
            Constraint::Store { ptr, src, tau_p } => Constraint::Store {
                ptr: self.obj(*ptr)?,
                src: self.obj(*src)?,
                tau_p: self.ty(*tau_p)?,
            },
            Constraint::PtrArith { dst, src, pointee } => Constraint::PtrArith {
                dst: self.obj(*dst)?,
                src: self.obj(*src)?,
                pointee: match pointee {
                    Some(p) => Some(self.ty(*p)?),
                    None => None,
                },
            },
            Constraint::CopyAll { dst_ptr, src_ptr } => Constraint::CopyAll {
                dst_ptr: self.obj(*dst_ptr)?,
                src_ptr: self.obj(*src_ptr)?,
            },
            Constraint::CallDirect { fid, args, ret } => Constraint::CallDirect {
                fid: self.func(*fid)?,
                args: args.iter().map(|a| self.obj(*a)).collect::<Option<_>>()?,
                ret: match ret {
                    Some(r) => Some(self.obj(*r)?),
                    None => None,
                },
            },
            Constraint::CallIndirect { ptr, args, ret } => Constraint::CallIndirect {
                ptr: self.obj(*ptr)?,
                args: args.iter().map(|a| self.obj(*a)).collect::<Option<_>>()?,
                ret: match ret {
                    Some(r) => Some(self.obj(*r)?),
                    None => None,
                },
            },
        };
        Some(out)
    }
}

/// Compiles the new program's [`ConstraintSet`] by reusing the old set's
/// constraints for every statement `diff` paired, lowering only the dirty
/// remainder. The result is exactly what [`ConstraintSet::compile`] would
/// produce (same constraints, same path-interning order) — only cheaper,
/// and without bumping the per-thread compile counter on the reuse path.
///
/// With a [`ProgramDiff::fallback`](field@ProgramDiff::fallback) diff
/// this degenerates to a full
/// [`ConstraintSet::compile`] with zero reuse.
pub fn compile_incremental(
    old_prog: &Program,
    old_set: &ConstraintSet,
    new_prog: &Program,
    diff: &ProgramDiff,
) -> (ConstraintSet, CompileReuse) {
    if diff.fallback.is_some() {
        let set = ConstraintSet::compile(new_prog);
        let reuse = CompileReuse {
            reused_constraints: 0,
            fresh_constraints: new_prog.stmts.len(),
        };
        return (set, reuse);
    }
    let char_kind = TypeKind::Int(IntKind::Char);
    let char_ty = (0..new_prog.types.len() as u32)
        .map(TypeId)
        .find(|t| new_prog.types.kind(*t) == &char_kind);
    let mut b = Builder {
        prog: new_prog,
        char_ty,
        paths: Vec::new(),
        path_ids: HashMap::new(),
    };
    let mut tr = Translator {
        old_prog,
        old_set,
        new_prog,
        obj_map: &diff.obj_map,
        type_memo: HashMap::new(),
    };
    let pair_of_new = diff.pair_of_new(new_prog.stmts.len());
    let mut reuse = CompileReuse::default();
    let constraints: Vec<Constraint> = new_prog
        .stmts
        .iter()
        .enumerate()
        .map(|(j, stmt)| {
            if let Some(oi) = pair_of_new[j] {
                if let Some(c) = tr.constraint(&old_set.constraints[oi as usize], &mut b) {
                    reuse.reused_constraints += 1;
                    return c;
                }
            }
            reuse.fresh_constraints += 1;
            b.lower(stmt)
        })
        .collect();
    let set = ConstraintSet {
        constraints,
        paths: b.paths,
        char_ty,
    };
    (set, reuse)
}

/// For each entry of `diff.removed_stmts`, whether the removed old
/// statement's constraint — objects remapped, types translated, path
/// re-interned against the new set — still exists verbatim somewhere in
/// `new_set`. A surviving removal (a swapped line, a deleted duplicate of
/// a statement that still exists elsewhere) preserves every derivation
/// the removed statement contributed, so the incremental solver need not
/// retract anything for it. `false` entries are genuine removals (or
/// untranslatable ones), which must seed retraction.
pub fn removed_survivors(
    old_prog: &Program,
    old_set: &ConstraintSet,
    new_prog: &Program,
    new_set: &ConstraintSet,
    diff: &ProgramDiff,
) -> Vec<bool> {
    if diff.fallback.is_some() {
        return vec![false; diff.removed_stmts.len()];
    }
    // A builder whose path table starts as the new set's, so translated
    // path ids are comparable with the new constraints' ids (paths the
    // new set never interned get fresh ids and compare unequal, which is
    // the right answer: no new constraint can reference them).
    let mut b = Builder {
        prog: new_prog,
        char_ty: new_set.char_ty,
        paths: new_set.paths.clone(),
        path_ids: new_set
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), PathId(i as u32)))
            .collect(),
    };
    let mut tr = Translator {
        old_prog,
        old_set,
        new_prog,
        obj_map: &diff.obj_map,
        type_memo: HashMap::new(),
    };
    diff.removed_stmts
        .iter()
        .map(|&oi| {
            tr.constraint(&old_set.constraints[oi as usize], &mut b)
                .is_some_and(|c| new_set.constraints.contains(&c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Program {
        structcast_ir::lower_source(src).unwrap()
    }

    /// The incremental compile must be indistinguishable from a cold one.
    fn assert_incremental_matches_cold(old_src: &str, new_src: &str) -> (ProgramDiff, CompileReuse) {
        let old = lower(old_src);
        let new = lower(new_src);
        let old_set = ConstraintSet::compile(&old);
        let diff = diff_programs(&old, &new);
        let (inc, reuse) = compile_incremental(&old, &old_set, &new, &diff);
        let cold = ConstraintSet::compile(&new);
        assert_eq!(inc.dump(&new), cold.dump(&new), "diff: {diff:?}");
        assert_eq!(inc.num_paths(), cold.num_paths());
        (diff, reuse)
    }

    const BASE: &str = "struct S { int *s1; int *s2; } s;\n\
         int x, y, *p, *q;\n\
         void f(void) { s.s1 = &x; p = s.s1; }\n\
         void g(void) { q = &y; }";

    #[test]
    fn identical_programs_pair_everything() {
        let (diff, reuse) = assert_incremental_matches_cold(BASE, BASE);
        assert!(diff.fallback.is_none());
        assert!(diff.dirty_stmts.is_empty(), "{diff:?}");
        assert!(diff.removed_stmts.is_empty());
        assert_eq!(diff.reused_fns, 2);
        assert_eq!(diff.dirty_fns, 0);
        assert!(!diff.globals_dirty);
        assert_eq!(reuse.fresh_constraints, 0);
        assert!(reuse.reused_constraints > 0);
    }

    #[test]
    fn single_function_edit_keeps_the_other_clean() {
        let edited = "struct S { int *s1; int *s2; } s;\n\
             int x, y, *p, *q;\n\
             void f(void) { s.s1 = &x; p = s.s1; }\n\
             void g(void) { q = &x; }";
        let (diff, reuse) = assert_incremental_matches_cold(BASE, edited);
        assert!(diff.fallback.is_none());
        assert_eq!(diff.reused_fns, 1, "{diff:?}");
        assert_eq!(diff.dirty_fns, 1);
        assert!(!diff.dirty_stmts.is_empty());
        assert!(reuse.reused_constraints > 0);
        // The edit touched one statement; everything else is reused.
        assert!(
            diff.dirty_stmts.len() <= 2,
            "prefix/suffix pairing should isolate the edit: {diff:?}"
        );
    }

    #[test]
    fn added_and_removed_functions_diff_cleanly() {
        let grown = "struct S { int *s1; int *s2; } s;\n\
             int x, y, *p, *q;\n\
             void f(void) { s.s1 = &x; p = s.s1; }\n\
             void g(void) { q = &y; }\n\
             void h(void) { p = &y; }";
        let (diff, _) = assert_incremental_matches_cold(BASE, grown);
        assert_eq!(diff.reused_fns, 2);
        assert!(!diff.dirty_stmts.is_empty(), "h's statements are new");
        // And shrinking back: h's statements become removals.
        let (diff, _) = assert_incremental_matches_cold(grown, BASE);
        assert_eq!(diff.reused_fns, 2);
        assert!(!diff.removed_stmts.is_empty());
    }

    #[test]
    fn temp_and_heap_counters_do_not_leak_across_functions() {
        // Editing f shifts the global temp/heap counters used while
        // lowering g; the per-unit ordinals must keep g clean.
        let old_src = "struct N { struct N *next; } *h1, *h2;\n\
             void f(void) { h1 = (struct N*)malloc(8); }\n\
             void g(void) { h2 = (struct N*)malloc(8); h2->next = h2; }";
        let new_src = "struct N { struct N *next; } *h1, *h2;\n\
             void f(void) { h1 = (struct N*)malloc(8); h1 = (struct N*)malloc(8); }\n\
             void g(void) { h2 = (struct N*)malloc(8); h2->next = h2; }";
        let (diff, reuse) = assert_incremental_matches_cold(old_src, new_src);
        assert_eq!(diff.reused_fns, 1, "g must stay clean: {diff:?}");
        assert!(reuse.reused_constraints > 0);
    }

    #[test]
    fn record_definition_change_falls_back() {
        let changed = "struct S { int *s1; int *s2; int *s3; } s;\n\
             int x, y, *p, *q;\n\
             void f(void) { s.s1 = &x; p = s.s1; }\n\
             void g(void) { q = &y; }";
        let old = lower(BASE);
        let new = lower(changed);
        let diff = diff_programs(&old, &new);
        assert!(diff.fallback.is_some(), "{diff:?}");
        // Fallback still compiles correctly (cold path).
        let old_set = ConstraintSet::compile(&old);
        let (inc, reuse) = compile_incremental(&old, &old_set, &new, &diff);
        assert_eq!(inc.dump(&new), ConstraintSet::compile(&new).dump(&new));
        assert_eq!(reuse.reused_constraints, 0);
    }

    #[test]
    fn global_type_change_unmaps_the_global() {
        let changed = "struct S { int *s1; int *s2; } s;\n\
             int x, y, **p, *q;\n\
             void f(void) { s.s1 = &x; }\n\
             void g(void) { q = &y; }";
        let old = lower(
            "struct S { int *s1; int *s2; } s;\n\
             int x, y, *p, *q;\n\
             void f(void) { s.s1 = &x; }\n\
             void g(void) { q = &y; }",
        );
        let new = lower(changed);
        let diff = diff_programs(&old, &new);
        assert!(diff.fallback.is_none());
        let p_old = old.object_by_name("p").unwrap();
        assert_eq!(diff.obj_map[p_old.0 as usize], None, "type changed");
        let x_old = old.object_by_name("x").unwrap();
        assert!(diff.obj_map[x_old.0 as usize].is_some());
    }

    #[test]
    fn string_literals_and_indirect_calls_survive_the_diff() {
        let src = "int x; int *target(void) { return &x; }\n\
             int *(*fp)(void); int *r; char *msg;\n\
             void f(void) { fp = target; r = fp(); msg = \"hello\"; }";
        let (diff, reuse) = assert_incremental_matches_cold(src, src);
        assert!(diff.dirty_stmts.is_empty(), "{diff:?}");
        assert_eq!(reuse.fresh_constraints, 0);
    }
}
