//! Golden-file tests for the constraint dump: three corpus programs'
//! dumps are pinned byte-for-byte. The dump is the debugging seam of the
//! staged pipeline, so accidental format or compilation-order drift must
//! be loud.
//!
//! Regenerate after an *intentional* change with
//! `UPDATE_GOLDEN=1 cargo test -p structcast-constraints --test golden_dump`.

use structcast_constraints::ConstraintSet;

const GOLDEN: &[(&str, &str)] = &[
    ("list-utils", include_str!("golden/list-utils.txt")),
    ("tagged-union", include_str!("golden/tagged-union.txt")),
    ("oop-shapes", include_str!("golden/oop-shapes.txt")),
];

fn dump_of(name: &str) -> String {
    let p = structcast_progen::corpus_program(name)
        .unwrap_or_else(|| panic!("{name} not in corpus"));
    let prog = structcast_ir::lower_source(p.source)
        .unwrap_or_else(|e| panic!("{name} fails to lower: {e}"));
    ConstraintSet::compile(&prog).dump(&prog)
}

#[test]
fn corpus_dumps_match_golden_files() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for (name, want) in GOLDEN {
        let got = dump_of(name);
        if update {
            let path = format!(
                "{}/tests/golden/{name}.txt",
                env!("CARGO_MANIFEST_DIR")
            );
            std::fs::write(&path, &got).expect("write golden file");
            continue;
        }
        assert_eq!(
            got.as_bytes(),
            want.as_bytes(),
            "{name}: constraint dump drifted from tests/golden/{name}.txt \
             (rerun with UPDATE_GOLDEN=1 if the change is intentional)"
        );
    }
}

#[test]
fn golden_dumps_are_wellformed() {
    for (name, want) in GOLDEN {
        let header: Vec<&str> = want.lines().take(2).collect();
        assert_eq!(header[0], "# structcast-constraints v1", "{name}");
        let count: usize = header[1]
            .split("constraints=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{name}: malformed header {:?}", header[1]));
        assert_eq!(want.lines().count() - 2, count, "{name}: line count");
    }
}
