//! # structcast-interp
//!
//! A concrete interpreter for the same C subset the structcast pipeline
//! analyzes, with **byte-level memory and pointer provenance**. Its purpose
//! is differential testing: every pointer store the interpreter *observes*
//! at run time is a ground-truth points-to fact that each static analysis
//! instance must cover (soundness). The oracle tests live in
//! `tests/oracle.rs` and run over the paper's examples, the benchmark
//! corpus, and generated programs.
//!
//! The interpreter executes under the ILP32 layout (the layout the
//! "Offsets" instance defaults to), so offset-level facts can be compared
//! exactly, and records one [`ConcreteFact`] per pointer value written to
//! memory — including pointers smuggled through integers, `memcpy`, or
//! struct copies (the paper's Complication 2 made tracking those
//! mandatory for the static side too).
//!
//! ```
//! use structcast_interp::run_source;
//!
//! let result = run_source(r#"
//!     int x, *p;
//!     void main(void) { p = &x; }
//! "#)?;
//! assert!(result.completed);
//! assert_eq!(result.facts.len(), 1); // the store p = &x
//! # Ok::<(), structcast_interp::InterpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod eval;
mod memory;
mod types_build;

pub use eval::{run_source, run_source_with_budget, ConcreteFact, ConcreteId, InterpError, RunResult};
pub use memory::{MemId, MemKind, MemObj, Memory, PtrVal};
pub use types_build::TypeEnv;

#[cfg(test)]
mod tests;
