//! The tree-walking evaluator.
//!
//! Executes the same C subset the analysis pipeline accepts, over the
//! byte-level [`Memory`](crate::memory::Memory), recording a
//! [`ConcreteFact`] every time a pointer value is stored anywhere. The
//! resulting fact set is a *ground truth under-approximation* that every
//! analysis instance must cover (tested in `tests/oracle.rs`).

use crate::memory::{MemId, MemKind, Memory, PtrVal};
use crate::types_build::TypeEnv;
use std::collections::HashMap;
use structcast_ast::{
    AssignOp, BinOp, BlockItem, Expr, ExprKind, ExternalDecl, ForInit, FunctionDef, Initializer,
    Span, Stmt, Storage, TranslationUnit, UnOp,
};
use structcast_types::{Layout, TypeId, TypeKind};

/// An error during interpretation (wild dereference, unsupported
/// construct, step-limit exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for InterpError {}

type IResult<T> = Result<T, InterpError>;

/// One observed pointer store: "this position held the address of that
/// position at some point during execution".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConcreteFact {
    /// Where the pointer was stored.
    pub src: (ConcreteId, u64),
    /// What it pointed to (raw byte offset; canonicalization happens at
    /// comparison time against the static object's type).
    pub tgt: (ConcreteId, u64),
}

/// Identity of a concrete object, in terms the static analysis can match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConcreteId {
    /// A named variable (analysis display name, e.g. `"f::x"`).
    Var(String),
    /// A heap block, identified by the span start of its allocating call.
    Heap(u32),
    /// A string literal (not matched against specific static objects).
    Str,
    /// A function, by name.
    Func(String),
}

/// Result of a run.
#[derive(Debug)]
pub struct RunResult {
    /// All observed pointer-store facts.
    pub facts: Vec<ConcreteFact>,
    /// Evaluation steps consumed.
    pub steps: u64,
    /// False if the step budget ran out (facts so far are still valid).
    pub completed: bool,
    /// `main`'s return value, if it ran to completion.
    pub exit_value: Option<i64>,
    /// Runtime error, if one stopped execution early.
    pub error: Option<InterpError>,
}

/// Runs `src` (parsed and executed from `main`) with the default budget.
pub fn run_source(src: &str) -> Result<RunResult, InterpError> {
    run_source_with_budget(src, 2_000_000)
}

/// Runs with an explicit step budget.
pub fn run_source_with_budget(src: &str, budget: u64) -> Result<RunResult, InterpError> {
    let tu = structcast_ast::parse(src)
        .map_err(|e| InterpError {
            message: format!("parse error: {}", e.message()),
            span: e.span(),
        })?;
    let mut ev = Ev::new(&tu, budget)?;
    Ok(ev.run())
}

// ----- values -----

#[derive(Debug, Clone, Copy, PartialEq)]
enum V {
    Int(i64),
    Float(f64),
    Ptr(Option<PtrVal>),
}

#[derive(Debug, Clone)]
enum Slot {
    Val(V, TypeId),
    /// An aggregate (struct/union/array) located in memory.
    Agg(PtrVal, TypeId),
}

#[derive(Debug)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Slot>),
}

struct Frame {
    scopes: Vec<HashMap<String, (MemId, TypeId)>>,
    fn_name: String,
}

struct Ev<'a> {
    env: TypeEnv,
    layout: Layout,
    mem: Memory,
    globals: HashMap<String, (MemId, TypeId)>,
    funcs: HashMap<String, &'a FunctionDef>,
    func_objs: HashMap<String, MemId>,
    frames: Vec<Frame>,
    facts: Vec<ConcreteFact>,
    steps: u64,
    budget: u64,
}

impl<'a> Ev<'a> {
    fn new(tu: &'a TranslationUnit, budget: u64) -> IResult<Self> {
        let layout = Layout::ilp32();
        let ptr_size = 4;
        let mut ev = Ev {
            env: TypeEnv::new(layout.clone()),
            layout,
            mem: Memory::new(ptr_size),
            globals: HashMap::new(),
            funcs: HashMap::new(),
            func_objs: HashMap::new(),
            frames: Vec::new(),
            facts: Vec::new(),
            steps: 0,
            budget,
        };
        // Pass 1: types, globals, functions.
        let mut pending_inits: Vec<(MemId, TypeId, &Initializer)> = Vec::new();
        for d in &tu.decls {
            match d {
                ExternalDecl::Function(f) => {
                    ev.funcs.insert(f.name.clone(), f);
                }
                ExternalDecl::Declaration(decl) => {
                    let base = ev.env.build(&decl.base).map_err(|m| InterpError {
                        message: m,
                        span: decl.span,
                    })?;
                    for item in &decl.items {
                        let ty =
                            ev.env
                                .build_with_base(&item.ty, base)
                                .map_err(|m| InterpError {
                                    message: m,
                                    span: item.span,
                                })?;
                        match decl.storage {
                            Storage::Typedef => ev.env.define_typedef(&item.name, ty),
                            _ if matches!(ev.env.table.kind(ty), TypeKind::Function(_)) => {
                                // Prototype only; body may come later.
                            }
                            _ => {
                                if ev.globals.contains_key(&item.name) {
                                    continue; // extern redeclaration
                                }
                                let size = ev.layout.size_of(&ev.env.table, ty).max(1);
                                let id = ev.mem.alloc(
                                    size,
                                    ty,
                                    MemKind::Var(item.name.clone()),
                                );
                                ev.globals.insert(item.name.clone(), (id, ty));
                                if let Some(init) = &item.init {
                                    pending_inits.push((id, ty, init));
                                }
                            }
                        }
                    }
                }
            }
        }
        // Pass 2: global initializers (no frame; evaluated in global scope).
        ev.frames.push(Frame {
            scopes: vec![HashMap::new()],
            fn_name: "<init>".into(),
        });
        for (id, ty, init) in pending_inits {
            ev.init_object(id, 0, ty, init)?;
        }
        ev.frames.pop();
        Ok(ev)
    }

    fn run(&mut self) -> RunResult {
        let Some(main) = self.funcs.get("main").copied() else {
            return RunResult {
                facts: std::mem::take(&mut self.facts),
                steps: self.steps,
                completed: false,
                exit_value: None,
                error: Some(InterpError {
                    message: "no main function".into(),
                    span: Span::dummy(),
                }),
            };
        };
        match self.call_function(main, &[]) {
            Ok(ret) => RunResult {
                facts: std::mem::take(&mut self.facts),
                steps: self.steps,
                completed: true,
                exit_value: match ret {
                    Some(Slot::Val(V::Int(v), _)) => Some(v),
                    _ => Some(0),
                },
                error: None,
            },
            Err(e) => {
                let completed = e.message == "program exited";
                RunResult {
                    facts: std::mem::take(&mut self.facts),
                    steps: self.steps,
                    completed,
                    exit_value: None,
                    error: if completed { None } else { Some(e) },
                }
            }
        }
    }

    fn tick(&mut self, span: Span) -> IResult<()> {
        self.steps += 1;
        if self.steps > self.budget {
            return Err(InterpError {
                message: "step budget exhausted".into(),
                span,
            });
        }
        Ok(())
    }

    // ----- naming for the oracle -----

    fn concrete_id(&self, obj: MemId) -> ConcreteId {
        match &self.mem.obj(obj).kind {
            MemKind::Var(n) => ConcreteId::Var(n.clone()),
            MemKind::Heap(span) => ConcreteId::Heap(*span),
            MemKind::Str => ConcreteId::Str,
            MemKind::Func(n) => ConcreteId::Func(n.clone()),
        }
    }

    fn record_fact(&mut self, dst: MemId, off: u64, tgt: PtrVal) {
        let fact = ConcreteFact {
            src: (self.concrete_id(dst), off),
            tgt: (self.concrete_id(tgt.obj), tgt.off),
        };
        self.facts.push(fact);
    }

    fn write_ptr(&mut self, dst: MemId, off: u64, v: Option<PtrVal>) {
        // Only record a fact if the store actually fits in the object
        // (out-of-bounds stores are clipped and leave no value to recover).
        let fits = (off + self.mem.ptr_size()) as usize <= self.mem.obj(dst).bytes.len();
        if let (Some(p), true) = (v, fits) {
            self.record_fact(dst, off, p);
        }
        self.mem.store_ptr(dst, off, v);
    }

    fn copy_block(&mut self, dst: PtrVal, src: PtrVal, len: u64) {
        self.mem.copy_bytes(dst.obj, dst.off, src.obj, src.off, len);
        // Record facts for every pointer that landed in dst.
        let ps = self.mem.ptr_size();
        let landed: Vec<(u64, PtrVal)> = self
            .mem
            .ptr_spans(dst.obj)
            .into_iter()
            .filter(|(o, _)| *o >= dst.off && *o + ps <= dst.off + len)
            .collect();
        for (o, p) in landed {
            self.record_fact(dst.obj, o, p);
        }
    }

    // ----- scopes -----

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("active frame")
    }

    fn declare_local(&mut self, fn_name: &str, name: &str, ty: TypeId) -> MemId {
        let size = self.layout.size_of(&self.env.table, ty).max(1);
        let id = self.mem.alloc(
            size,
            ty,
            MemKind::Var(format!("{fn_name}::{name}")),
        );
        self.frame()
            .scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), (id, ty));
        id
    }

    fn resolve_var(&self, name: &str) -> Option<(MemId, TypeId)> {
        if let Some(frame) = self.frames.last() {
            for scope in frame.scopes.iter().rev() {
                if let Some(&v) = scope.get(name) {
                    return Some(v);
                }
            }
        }
        self.globals.get(name).copied()
    }

    fn func_obj(&mut self, name: &str) -> MemId {
        if let Some(&o) = self.func_objs.get(name) {
            return o;
        }
        let v = self.env.table.void();
        let o = self.mem.alloc(1, v, MemKind::Func(name.to_string()));
        self.func_objs.insert(name.to_string(), o);
        o
    }

    // ----- helpers -----

    fn size_of(&self, ty: TypeId) -> u64 {
        self.layout.size_of(&self.env.table, ty).max(1)
    }

    fn err<T>(&self, msg: impl Into<String>, span: Span) -> IResult<T> {
        Err(InterpError {
            message: msg.into(),
            span,
        })
    }

    fn truthy(&self, v: &V) -> bool {
        match v {
            V::Int(i) => *i != 0,
            V::Float(f) => *f != 0.0,
            V::Ptr(p) => p.is_some(),
        }
    }

    fn is_aggregate(&self, ty: TypeId) -> bool {
        matches!(
            self.env.table.kind(ty),
            TypeKind::Record(_) | TypeKind::Array(_, _)
        )
    }

    /// Encodes a pointer as an integer (survives int round-trips).
    fn ptr_to_int(&self, p: Option<PtrVal>) -> i64 {
        match p {
            None => 0,
            Some(p) => ((p.obj.0 as i64 + 1) << 24) | (p.off as i64 & 0xFF_FFFF),
        }
    }

    fn int_to_ptr(&self, bits: i64) -> Option<PtrVal> {
        if bits == 0 {
            return None;
        }
        let hi = bits >> 24;
        if hi >= 1 && ((hi - 1) as usize) < self.mem.len() {
            Some(PtrVal {
                obj: MemId((hi - 1) as u32),
                off: (bits & 0xFF_FFFF) as u64,
            })
        } else {
            None // opaque integer: provenance lost (safe for the oracle)
        }
    }

    /// Loads a scalar of type `ty` from memory.
    fn load_scalar(&self, at: PtrVal, ty: TypeId) -> V {
        match self.env.table.kind(ty) {
            TypeKind::Pointer(_) => match self.mem.load_ptr(at.obj, at.off) {
                Ok(p) => V::Ptr(p),
                Err(bits) => V::Ptr(self.int_to_ptr(bits)),
            },
            TypeKind::Float(_) => {
                let bits = self.mem.load_int(at.obj, at.off, 8);
                V::Float(f64::from_bits(bits as u64))
            }
            _ => {
                let size = self.size_of(ty).min(8);
                V::Int(self.mem.load_int(at.obj, at.off, size))
            }
        }
    }

    /// Stores a scalar of type `ty`.
    fn store_scalar(&mut self, at: PtrVal, ty: TypeId, v: &V) {
        match (self.env.table.kind(ty), v) {
            (TypeKind::Pointer(_), V::Ptr(p)) => self.write_ptr(at.obj, at.off, *p),
            (TypeKind::Pointer(_), V::Int(bits)) => {
                let p = self.int_to_ptr(*bits);
                self.write_ptr(at.obj, at.off, p);
            }
            (TypeKind::Float(_), V::Float(f)) => {
                self.mem
                    .store_int(at.obj, at.off, f.to_bits() as i64, 8);
            }
            (TypeKind::Float(_), V::Int(i)) => {
                self.mem
                    .store_int(at.obj, at.off, (*i as f64).to_bits() as i64, 8);
            }
            (_, V::Int(i)) => {
                let size = self.size_of(ty).min(8);
                self.mem.store_int(at.obj, at.off, *i, size);
            }
            (_, V::Float(f)) => {
                let size = self.size_of(ty).min(8);
                self.mem.store_int(at.obj, at.off, *f as i64, size);
            }
            (_, V::Ptr(p)) => {
                // Pointer stored into an int-typed slot: keep provenance by
                // storing it as a pointer payload (ints can hold pointers,
                // Complication 2).
                self.write_ptr(at.obj, at.off, *p);
            }
        }
    }

    // ----- initializers -----

    fn init_object(
        &mut self,
        id: MemId,
        base_off: u64,
        ty: TypeId,
        init: &Initializer,
    ) -> IResult<()> {
        match init {
            Initializer::Expr(e) => {
                if let ExprKind::StrLit(s) = &e.kind {
                    if matches!(self.env.table.kind(ty), TypeKind::Array(_, _)) {
                        // char buf[] = "..." — copy the characters.
                        for (i, b) in s.bytes().enumerate() {
                            self.mem.store_int(id, base_off + i as u64, b as i64, 1);
                        }
                        return Ok(());
                    }
                }
                let slot = self.eval(e)?;
                self.assign_to(
                    PtrVal {
                        obj: id,
                        off: base_off,
                    },
                    ty,
                    slot,
                    e.span,
                )
            }
            Initializer::List(items) => {
                let stripped = self.env.table.strip_arrays(ty);
                match self.env.table.kind(ty).clone() {
                    TypeKind::Array(elem, _) => {
                        let es = self.size_of(elem);
                        for (i, item) in items.iter().enumerate() {
                            self.init_object(id, base_off + i as u64 * es, elem, item)?;
                        }
                        Ok(())
                    }
                    TypeKind::Record(rid) => {
                        let rec = self.env.table.record(rid);
                        let is_union = rec.is_union;
                        let ftys: Vec<TypeId> = rec.fields.iter().map(|f| f.ty).collect();
                        for (i, item) in items.iter().enumerate() {
                            let idx = if is_union { 0 } else { i };
                            if idx >= ftys.len() {
                                break;
                            }
                            let off =
                                self.layout
                                    .offset_of(&self.env.table, rid, idx as u32);
                            self.init_object(id, base_off + off, ftys[idx], item)?;
                            if is_union {
                                break;
                            }
                        }
                        Ok(())
                    }
                    _ => {
                        if let Some(first) = items.first() {
                            self.init_object(id, base_off, stripped, first)?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    /// Assigns a slot into memory at `at` of declared type `ty`.
    fn assign_to(&mut self, at: PtrVal, ty: TypeId, v: Slot, span: Span) -> IResult<()> {
        // Array-valued expressions decay to a pointer to their first
        // element when assigned to a scalar (pointer) location.
        let v = match v {
            Slot::Agg(src, aggty)
                if matches!(self.env.table.kind(aggty), TypeKind::Array(_, _))
                    && !self.is_aggregate(ty) =>
            {
                Slot::Val(V::Ptr(Some(src)), ty)
            }
            other => other,
        };
        match v {
            Slot::Val(val, _) => {
                self.store_scalar(at, ty, &val);
                Ok(())
            }
            Slot::Agg(src, _aggty) => {
                if !self.is_aggregate(ty) {
                    return self.err("aggregate assigned to scalar location", span);
                }
                let len = self.size_of(ty);
                self.copy_block(at, src, len);
                Ok(())
            }
        }
    }

    // ----- function calls -----

    fn call_function(&mut self, f: &'a FunctionDef, args: &[Slot]) -> IResult<Option<Slot>> {
        // Keep well under test-thread stack limits: each C frame costs a
        // few KB of Rust stack through the recursive evaluator.
        if self.frames.len() > 64 {
            return self.err("call depth exceeded", f.span);
        }
        let frame = Frame {
            scopes: vec![HashMap::new()],
            fn_name: f.name.clone(),
        };
        // Bind parameters (arguments were already evaluated in the caller's
        // frame).
        if let structcast_ast::AstType::Function { params, .. } = &f.ty {
            self.frames.push(frame);
            for (i, pd) in params.iter().enumerate() {
                let Some(name) = &pd.name else { continue };
                let base = self.env.build(&pd.ty).map_err(|m| InterpError {
                    message: m,
                    span: pd.span,
                })?;
                let fn_name = f.name.clone();
                let id = self.declare_local(&fn_name, name, base);
                if let Some(a) = args.get(i) {
                    self.assign_to(PtrVal { obj: id, off: 0 }, base, a.clone(), pd.span)?;
                }
            }
        } else {
            self.frames.push(frame);
        }
        let flow = self.exec_stmt(&f.body);
        self.frames.pop();
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(None),
        }
    }

    // ----- statements -----

    fn exec_stmt(&mut self, s: &Stmt) -> IResult<Flow> {
        match s {
            Stmt::Expr(None) => Ok(Flow::Normal),
            Stmt::Expr(Some(e)) => {
                self.tick(e.span)?;
                let _ = self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(items) => {
                self.frame().scopes.push(HashMap::new());
                self.env.push_scope();
                let mut flow = Flow::Normal;
                for it in items {
                    match it {
                        BlockItem::Decl(d) => self.exec_local_decl(d)?,
                        BlockItem::Stmt(st) => {
                            flow = self.exec_stmt(st)?;
                            if !matches!(flow, Flow::Normal) {
                                break;
                            }
                        }
                    }
                }
                self.env.pop_scope();
                self.frame().scopes.pop();
                Ok(flow)
            }
            Stmt::If { cond, then, els } => {
                self.tick(cond.span)?;
                let c = self.eval_scalar(cond)?;
                if self.truthy(&c) {
                    self.exec_stmt(then)
                } else if let Some(e) = els {
                    self.exec_stmt(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.tick(cond.span)?;
                    let c = self.eval_scalar(cond)?;
                    if !self.truthy(&c) {
                        break;
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        f @ Flow::Return(_) => return Ok(f),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        f @ Flow::Return(_) => return Ok(f),
                        _ => {}
                    }
                    self.tick(cond.span)?;
                    let c = self.eval_scalar(cond)?;
                    if !self.truthy(&c) {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.frame().scopes.push(HashMap::new());
                self.env.push_scope();
                match init {
                    Some(ForInit::Decl(d)) => self.exec_local_decl(d)?,
                    Some(ForInit::Expr(e)) => {
                        self.tick(e.span)?;
                        let _ = self.eval(e)?;
                    }
                    None => {}
                }
                let result = loop {
                    if let Some(c) = cond {
                        self.tick(c.span)?;
                        let v = self.eval_scalar(c)?;
                        if !self.truthy(&v) {
                            break Flow::Normal;
                        }
                    } else {
                        self.tick(Span::dummy())?;
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break Flow::Normal,
                        f @ Flow::Return(_) => break f,
                        _ => {}
                    }
                    if let Some(st) = step {
                        let _ = self.eval(st)?;
                    }
                };
                self.env.pop_scope();
                self.frame().scopes.pop();
                Ok(result)
            }
            Stmt::Switch { cond, body } => self.exec_switch(cond, body),
            Stmt::Case(_, inner) | Stmt::Default(inner) | Stmt::Labeled(_, inner) => {
                self.exec_stmt(inner)
            }
            Stmt::Return(v) => {
                let slot = match v {
                    Some(e) => {
                        self.tick(e.span)?;
                        let s = self.eval(e)?;
                        // Returned aggregates are copied into a fresh
                        // temporary so the callee's locals can die.
                        Some(match s {
                            Slot::Agg(src, ty) => {
                                let size = self.size_of(ty);
                                let fn_name = self.frame().fn_name.clone();
                                let tmp = self.mem.alloc(
                                    size,
                                    ty,
                                    MemKind::Var(format!("{fn_name}::$ret")),
                                );
                                self.copy_block(PtrVal { obj: tmp, off: 0 }, src, size);
                                Slot::Agg(PtrVal { obj: tmp, off: 0 }, ty)
                            }
                            v => v,
                        })
                    }
                    None => None,
                };
                Ok(Flow::Return(slot))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Goto(_) => self.err("goto is not supported by the interpreter", Span::dummy()),
        }
    }

    fn exec_switch(&mut self, cond: &Expr, body: &Stmt) -> IResult<Flow> {
        self.tick(cond.span)?;
        let scrut = match self.eval_scalar(cond)? {
            V::Int(i) => i,
            other => {
                return self.err(
                    format!("switch on non-integer {other:?}"),
                    cond.span,
                )
            }
        };
        let Stmt::Block(items) = body else {
            // Degenerate `switch (e) stmt;` — just execute it.
            return self.exec_stmt(body);
        };
        // Find the matching case (or default), then fall through.
        let mut start = None;
        let mut default_at = None;
        for (i, it) in items.iter().enumerate() {
            if let BlockItem::Stmt(s) = it {
                let mut cur = s;
                loop {
                    match cur {
                        Stmt::Case(v, inner) => {
                            let val = self.env.const_eval(v).unwrap_or(i64::MIN);
                            if val == scrut && start.is_none() {
                                start = Some(i);
                            }
                            cur = inner;
                        }
                        Stmt::Default(inner) => {
                            if default_at.is_none() {
                                default_at = Some(i);
                            }
                            cur = inner;
                        }
                        _ => break,
                    }
                }
            }
        }
        let Some(begin) = start.or(default_at) else {
            return Ok(Flow::Normal);
        };
        self.frame().scopes.push(HashMap::new());
        self.env.push_scope();
        let mut flow = Flow::Normal;
        for it in &items[begin..] {
            match it {
                BlockItem::Decl(d) => self.exec_local_decl(d)?,
                BlockItem::Stmt(st) => {
                    flow = self.exec_stmt(st)?;
                    match flow {
                        Flow::Break => {
                            flow = Flow::Normal;
                            break;
                        }
                        Flow::Return(_) => break,
                        _ => {}
                    }
                }
            }
        }
        self.env.pop_scope();
        self.frame().scopes.pop();
        Ok(flow)
    }

    fn exec_local_decl(&mut self, d: &structcast_ast::Declaration) -> IResult<()> {
        let base = self.env.build(&d.base).map_err(|m| InterpError {
            message: m,
            span: d.span,
        })?;
        for item in &d.items {
            let ty = self
                .env
                .build_with_base(&item.ty, base)
                .map_err(|m| InterpError {
                    message: m,
                    span: item.span,
                })?;
            if d.storage == Storage::Typedef {
                self.env.define_typedef(&item.name, ty);
                continue;
            }
            if matches!(self.env.table.kind(ty), TypeKind::Function(_)) {
                continue; // local prototype
            }
            let fn_name = self.frame().fn_name.clone();
            let id = self.declare_local(&fn_name, &item.name, ty);
            if let Some(init) = &item.init {
                self.init_object(id, 0, ty, init)?;
            }
        }
        Ok(())
    }

    // ----- expressions -----

    fn eval_scalar(&mut self, e: &Expr) -> IResult<V> {
        match self.eval(e)? {
            Slot::Val(v, _) => Ok(v),
            Slot::Agg(p, _) => Ok(V::Ptr(Some(p))), // array decay / struct addr
        }
    }

    fn eval(&mut self, e: &Expr) -> IResult<Slot> {
        self.tick(e.span)?;
        let int = self.env.table.int();
        match &e.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Ok(Slot::Val(V::Int(*v), int)),
            ExprKind::FloatLit(v) => {
                let d = self.env.table.double();
                Ok(Slot::Val(V::Float(*v), d))
            }
            ExprKind::StrLit(s) => {
                let ch = self.env.table.char();
                let arr = self.env.table.array_of(ch, Some(s.len() as u64 + 1));
                let id = self.mem.alloc(s.len() as u64 + 1, arr, MemKind::Str);
                for (i, b) in s.bytes().enumerate() {
                    self.mem.store_int(id, i as u64, b as i64, 1);
                }
                let cp = self.env.table.char_ptr();
                Ok(Slot::Val(V::Ptr(Some(PtrVal { obj: id, off: 0 })), cp))
            }
            ExprKind::Ident(name) => {
                if let Some((id, ty)) = self.resolve_var(name) {
                    return self.read_place(PtrVal { obj: id, off: 0 }, ty);
                }
                if let Some(v) = self.env.enum_consts.get(name) {
                    return Ok(Slot::Val(V::Int(*v), int));
                }
                if self.funcs.contains_key(name) {
                    let o = self.func_obj(name);
                    let v = self.env.table.void();
                    let vp = self.env.table.pointer_to(v);
                    return Ok(Slot::Val(V::Ptr(Some(PtrVal { obj: o, off: 0 })), vp));
                }
                self.err(format!("undeclared identifier `{name}`"), e.span)
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                let (at, ty) = self.lvalue(inner)?;
                let pt = self.env.table.pointer_to(ty);
                Ok(Slot::Val(V::Ptr(Some(at)), pt))
            }
            ExprKind::Unary(UnOp::Deref, _)
            | ExprKind::Member(_, _, _)
            | ExprKind::Index(_, _) => {
                let (at, ty) = self.lvalue(e)?;
                self.read_place(at, ty)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval_scalar(inner)?;
                Ok(Slot::Val(
                    match (op, v) {
                        (UnOp::Neg, V::Int(i)) => V::Int(-i),
                        (UnOp::Neg, V::Float(f)) => V::Float(-f),
                        (UnOp::Plus, v) => v,
                        (UnOp::Not, v) => V::Int(i64::from(!self.truthy(&v))),
                        (UnOp::BitNot, V::Int(i)) => V::Int(!i),
                        (UnOp::PreInc, _) | (UnOp::PreDec, _) => {
                            return self.incdec(inner, matches!(op, UnOp::PreInc))
                        }
                        (op, v) => {
                            return self.err(
                                format!("unsupported unary {op} on {v:?}"),
                                e.span,
                            )
                        }
                    },
                    int,
                ))
            }
            ExprKind::PostIncDec(inner, inc) => self.incdec(inner, *inc),
            ExprKind::Binary(op, a, b) => self.binop(*op, a, b, e.span),
            ExprKind::Assign(op, lhs, rhs) => {
                let (at, lty) = self.lvalue(lhs)?;
                let newval = match op {
                    AssignOp::Simple => self.eval(rhs)?,
                    _ => {
                        let cur = self.read_place(at, lty)?;
                        let Slot::Val(cv, _) = cur else {
                            return self.err("compound assignment to aggregate", e.span);
                        };
                        let rv = self.eval_scalar(rhs)?;
                        let binop = match op {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Div => BinOp::Div,
                            AssignOp::Rem => BinOp::Rem,
                            AssignOp::Shl => BinOp::Shl,
                            AssignOp::Shr => BinOp::Shr,
                            AssignOp::And => BinOp::BitAnd,
                            AssignOp::Or => BinOp::BitOr,
                            AssignOp::Xor => BinOp::BitXor,
                            AssignOp::Simple => unreachable!(),
                        };
                        let res = self.scalar_binop(binop, cv, rv, lty, e.span)?;
                        Slot::Val(res, lty)
                    }
                };
                self.assign_to(at, lty, newval.clone(), e.span)?;
                Ok(newval)
            }
            ExprKind::Cond(c, t, f) => {
                let cv = self.eval_scalar(c)?;
                if self.truthy(&cv) {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            ExprKind::Cast(ast_ty, inner) => {
                let target = self.env.build(ast_ty).map_err(|m| InterpError {
                    message: m,
                    span: e.span,
                })?;
                let v = self.eval(inner)?;
                self.cast(v, target, e.span)
            }
            ExprKind::Call(fexpr, args) => self.call(fexpr, args, e.span),
            ExprKind::SizeofExpr(inner) => {
                // Evaluate only the *type*; avoid side effects where we can
                // (fall back to evaluation for complex operands).
                let sz = match &inner.kind {
                    ExprKind::Ident(n) => self
                        .resolve_var(n)
                        .map(|(_, ty)| self.size_of(ty))
                        .unwrap_or(4),
                    _ => match self.eval(inner) {
                        Ok(Slot::Val(_, ty)) | Ok(Slot::Agg(_, ty)) => self.size_of(ty),
                        Err(_) => 4,
                    },
                };
                let ul = self.env.table.ulong();
                Ok(Slot::Val(V::Int(sz as i64), ul))
            }
            ExprKind::SizeofType(t) => {
                let ty = self.env.build(t).map_err(|m| InterpError {
                    message: m,
                    span: e.span,
                })?;
                let ul = self.env.table.ulong();
                Ok(Slot::Val(V::Int(self.size_of(ty) as i64), ul))
            }
            ExprKind::Comma(a, b) => {
                let _ = self.eval(a)?;
                self.eval(b)
            }
        }
    }

    /// Reads from a place: aggregates stay by-reference, scalars load.
    fn read_place(&mut self, at: PtrVal, ty: TypeId) -> IResult<Slot> {
        if self.is_aggregate(ty) {
            Ok(Slot::Agg(at, ty))
        } else {
            Ok(Slot::Val(self.load_scalar(at, ty), ty))
        }
    }

    fn incdec(&mut self, inner: &Expr, inc: bool) -> IResult<Slot> {
        let (at, ty) = self.lvalue(inner)?;
        let cur = self.load_scalar(at, ty);
        let next = match cur {
            V::Int(i) => V::Int(if inc { i + 1 } else { i - 1 }),
            V::Float(f) => V::Float(if inc { f + 1.0 } else { f - 1.0 }),
            V::Ptr(p) => {
                let step = self
                    .env
                    .table
                    .pointee(ty)
                    .map(|t| self.size_of(t))
                    .unwrap_or(1);
                V::Ptr(p.map(|p| PtrVal {
                    obj: p.obj,
                    off: if inc {
                        p.off + step
                    } else {
                        p.off.saturating_sub(step)
                    },
                }))
            }
        };
        self.store_scalar(at, ty, &next);
        Ok(Slot::Val(next, ty))
    }

    fn binop(&mut self, op: BinOp, a: &Expr, b: &Expr, span: Span) -> IResult<Slot> {
        // Short-circuit operators first.
        let int = self.env.table.int();
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let va = self.eval_scalar(a)?;
            let ta = self.truthy(&va);
            let result = match op {
                BinOp::LogAnd => {
                    if !ta {
                        false
                    } else {
                        let vb = self.eval_scalar(b)?;
                        self.truthy(&vb)
                    }
                }
                _ => {
                    if ta {
                        true
                    } else {
                        let vb = self.eval_scalar(b)?;
                        self.truthy(&vb)
                    }
                }
            };
            return Ok(Slot::Val(V::Int(i64::from(result)), int));
        }
        let sa = self.eval(a)?;
        let sb = self.eval(b)?;
        let (va, ta) = self.decay(sa);
        let (vb, tb) = self.decay(sb);
        // Pointer arithmetic scales by the pointee size.
        match (&va, &vb) {
            (V::Ptr(pa), V::Int(ib)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                let step = self.stride_of(ta);
                let moved = pa.map(|p| PtrVal {
                    obj: p.obj,
                    off: if op == BinOp::Add {
                        (p.off as i64 + ib * step as i64).max(0) as u64
                    } else {
                        (p.off as i64 - ib * step as i64).max(0) as u64
                    },
                });
                return Ok(Slot::Val(V::Ptr(moved), ta));
            }
            (V::Int(ia), V::Ptr(pb)) if op == BinOp::Add => {
                let step = self.stride_of(tb);
                let moved = pb.map(|p| PtrVal {
                    obj: p.obj,
                    off: (p.off as i64 + ia * step as i64).max(0) as u64,
                });
                return Ok(Slot::Val(V::Ptr(moved), tb));
            }
            (V::Ptr(pa), V::Ptr(pb)) if op == BinOp::Sub => {
                let step = self.stride_of(ta).max(1);
                let diff = match (pa, pb) {
                    (Some(x), Some(y)) if x.obj == y.obj => {
                        (x.off as i64 - y.off as i64) / step as i64
                    }
                    _ => 0,
                };
                return Ok(Slot::Val(V::Int(diff), int));
            }
            (V::Ptr(_), V::Ptr(_)) | (V::Ptr(_), V::Int(_)) | (V::Int(_), V::Ptr(_))
                if op.is_comparison() =>
            {
                let result = self.compare_mixed(op, &va, &vb);
                return Ok(Slot::Val(V::Int(i64::from(result)), int));
            }
            _ => {}
        }
        let res = self.scalar_binop(op, va, vb, int, span)?;
        Ok(Slot::Val(res, int))
    }

    /// The step size for pointer arithmetic on a value of type `ty`.
    fn stride_of(&self, ty: TypeId) -> u64 {
        match self.env.table.kind(ty) {
            TypeKind::Pointer(p) => self.size_of(*p),
            TypeKind::Array(e, _) => self.size_of(*e),
            _ => 1,
        }
    }

    fn compare_mixed(&self, op: BinOp, a: &V, b: &V) -> bool {
        let key = |v: &V| -> (i64, i64) {
            match v {
                V::Ptr(Some(p)) => (p.obj.0 as i64 + 1, p.off as i64),
                V::Ptr(None) => (0, 0),
                V::Int(i) => (0, *i),
                V::Float(f) => (0, *f as i64),
            }
        };
        let (ka, kb) = (key(a), key(b));
        match op {
            BinOp::Eq => ka == kb,
            BinOp::Ne => ka != kb,
            BinOp::Lt => ka < kb,
            BinOp::Gt => ka > kb,
            BinOp::Le => ka <= kb,
            BinOp::Ge => ka >= kb,
            _ => false,
        }
    }

    fn scalar_binop(&self, op: BinOp, a: V, b: V, _ty: TypeId, span: Span) -> IResult<V> {
        use BinOp::*;
        // Promote to float if either side is.
        if let (V::Float(_), _) | (_, V::Float(_)) = (&a, &b) {
            let fa = match a {
                V::Float(f) => f,
                V::Int(i) => i as f64,
                V::Ptr(_) => 0.0,
            };
            let fb = match b {
                V::Float(f) => f,
                V::Int(i) => i as f64,
                V::Ptr(_) => 0.0,
            };
            return Ok(match op {
                Add => V::Float(fa + fb),
                Sub => V::Float(fa - fb),
                Mul => V::Float(fa * fb),
                Div => V::Float(if fb == 0.0 { 0.0 } else { fa / fb }),
                Lt => V::Int(i64::from(fa < fb)),
                Gt => V::Int(i64::from(fa > fb)),
                Le => V::Int(i64::from(fa <= fb)),
                Ge => V::Int(i64::from(fa >= fb)),
                Eq => V::Int(i64::from(fa == fb)),
                Ne => V::Int(i64::from(fa != fb)),
                _ => return self.err("float bit operation", span),
            });
        }
        let ia = match a {
            V::Int(i) => i,
            V::Ptr(p) => self.ptr_to_int(p),
            V::Float(f) => f as i64,
        };
        let ib = match b {
            V::Int(i) => i,
            V::Ptr(p) => self.ptr_to_int(p),
            V::Float(f) => f as i64,
        };
        Ok(V::Int(match op {
            Add => ia.wrapping_add(ib),
            Sub => ia.wrapping_sub(ib),
            Mul => ia.wrapping_mul(ib),
            Div => {
                if ib == 0 {
                    0
                } else {
                    ia.wrapping_div(ib)
                }
            }
            Rem => {
                if ib == 0 {
                    0
                } else {
                    ia.wrapping_rem(ib)
                }
            }
            Shl => ia.wrapping_shl(ib as u32),
            Shr => ia.wrapping_shr(ib as u32),
            BitAnd => ia & ib,
            BitOr => ia | ib,
            BitXor => ia ^ ib,
            Lt => i64::from(ia < ib),
            Gt => i64::from(ia > ib),
            Le => i64::from(ia <= ib),
            Ge => i64::from(ia >= ib),
            Eq => i64::from(ia == ib),
            Ne => i64::from(ia != ib),
            LogAnd | LogOr => unreachable!("short-circuited above"),
        }))
    }

    /// Array-to-pointer decay for binary operands.
    fn decay(&mut self, s: Slot) -> (V, TypeId) {
        match s {
            Slot::Val(v, t) => (v, t),
            Slot::Agg(p, t) => match self.env.table.kind(t) {
                TypeKind::Array(e, _) => {
                    let pt = self.env.table.pointer_to(*e);
                    (V::Ptr(Some(p)), pt)
                }
                _ => (V::Ptr(Some(p)), t),
            },
        }
    }

    fn cast(&mut self, v: Slot, target: TypeId, span: Span) -> IResult<Slot> {
        let (val, _ty) = self.decay(v);
        let kind = self.env.table.kind(target).clone();
        Ok(match (kind, val) {
            (TypeKind::Pointer(_), V::Ptr(p)) => Slot::Val(V::Ptr(p), target),
            (TypeKind::Pointer(_), V::Int(bits)) => {
                Slot::Val(V::Ptr(self.int_to_ptr(bits)), target)
            }
            (TypeKind::Int(_), V::Ptr(p)) => Slot::Val(V::Int(self.ptr_to_int(p)), target),
            (TypeKind::Int(_), V::Float(f)) => Slot::Val(V::Int(f as i64), target),
            (TypeKind::Float(_), V::Int(i)) => Slot::Val(V::Float(i as f64), target),
            (TypeKind::Float(_), v @ V::Float(_)) => Slot::Val(v, target),
            (TypeKind::Enum(_), v) => Slot::Val(v, target),
            (TypeKind::Void, v) => Slot::Val(v, target),
            (_, v @ V::Int(_)) => Slot::Val(v, target),
            (k, v) => {
                return self.err(
                    format!("unsupported cast of {v:?} to {k:?}"),
                    span,
                )
            }
        })
    }

    // ----- lvalues -----

    fn lvalue(&mut self, e: &Expr) -> IResult<(PtrVal, TypeId)> {
        self.tick(e.span)?;
        match &e.kind {
            ExprKind::Ident(name) => match self.resolve_var(name) {
                Some((id, ty)) => Ok((PtrVal { obj: id, off: 0 }, ty)),
                None => self.err(format!("`{name}` is not an lvalue"), e.span),
            },
            ExprKind::Unary(UnOp::Deref, inner) => {
                let s = self.eval(inner)?;
                let (v, ty) = self.decay(s);
                let V::Ptr(Some(p)) = v else {
                    return self.err("null or wild dereference", e.span);
                };
                let pointee = self
                    .env
                    .table
                    .pointee(ty)
                    .unwrap_or_else(|| self.env.table.int());
                Ok((p, pointee))
            }
            ExprKind::Member(obj, fname, arrow) => {
                let (base, base_ty) = if *arrow {
                    let s = self.eval(obj)?;
                    let (v, ty) = self.decay(s);
                    let V::Ptr(Some(p)) = v else {
                        return self.err("null -> dereference", e.span);
                    };
                    let pointee = self
                        .env
                        .table
                        .pointee(ty)
                        .ok_or_else(|| InterpError {
                            message: "-> on non-pointer".into(),
                            span: e.span,
                        })?;
                    (p, pointee)
                } else {
                    self.lvalue(obj)?
                };
                let stripped = self.env.table.strip_arrays(base_ty);
                let rid = self.env.table.as_record(stripped).ok_or_else(|| {
                    InterpError {
                        message: format!(
                            "member of non-struct {}",
                            self.env.table.display(base_ty)
                        ),
                        span: e.span,
                    }
                })?;
                let steps = self.env.table.resolve_member(rid, fname).ok_or_else(|| {
                    InterpError {
                        message: format!("no member `{fname}`"),
                        span: e.span,
                    }
                })?;
                let path = structcast_types::FieldPath::from_steps(steps);
                let off = self
                    .layout
                    .offset_of_path(&self.env.table, stripped, &path);
                let fty = structcast_types::type_of_path(&self.env.table, stripped, &path)
                    .expect("resolved member has a type");
                Ok((
                    PtrVal {
                        obj: base.obj,
                        off: base.off + off,
                    },
                    fty,
                ))
            }
            ExprKind::Index(arr, idx) => {
                let iv = match self.eval_scalar(idx)? {
                    V::Int(i) => i,
                    other => return self.err(format!("non-integer index {other:?}"), e.span),
                };
                let s = self.eval(arr)?;
                let (v, ty) = self.decay(s);
                let V::Ptr(Some(p)) = v else {
                    return self.err("indexing a null pointer", e.span);
                };
                let elem = self
                    .env
                    .table
                    .pointee(ty)
                    .unwrap_or_else(|| self.env.table.int());
                let es = self.size_of(elem);
                let off = p.off as i64 + iv * es as i64;
                if off < 0 {
                    return self.err("negative index underflow", e.span);
                }
                Ok((
                    PtrVal {
                        obj: p.obj,
                        off: off as u64,
                    },
                    elem,
                ))
            }
            _ => self.err("expression is not an lvalue", e.span),
        }
    }

    // ----- calls & builtins -----

    fn call(&mut self, fexpr: &Expr, args: &[Expr], span: Span) -> IResult<Slot> {
        // Unwrap (*fp) and parens.
        let mut target = fexpr;
        while let ExprKind::Unary(UnOp::Deref, inner) = &target.kind {
            target = inner;
        }
        // Builtin or direct call by name?
        if let ExprKind::Ident(name) = &target.kind {
            if self.resolve_var(name).is_none() {
                if let Some(f) = self.funcs.get(name.as_str()).copied() {
                    let mut argv = Vec::new();
                    for a in args {
                        argv.push(self.eval(a)?);
                    }
                    let ret = self.call_function(f, &argv)?;
                    return Ok(ret.unwrap_or(Slot::Val(V::Int(0), self.env.table.int())));
                }
                return self.builtin(name, args, span);
            }
        }
        // Indirect call through a pointer value.
        let s = self.eval(target)?;
        let (v, _ty) = self.decay(s);
        let V::Ptr(Some(p)) = v else {
            return self.err("call through null pointer", span);
        };
        let MemKind::Func(name) = self.mem.obj(p.obj).kind.clone() else {
            return self.err("call through non-function pointer", span);
        };
        let Some(f) = self.funcs.get(name.as_str()).copied() else {
            return self.err(format!("function `{name}` has no body"), span);
        };
        let mut argv = Vec::new();
        for a in args {
            argv.push(self.eval(a)?);
        }
        let ret = self.call_function(f, &argv)?;
        Ok(ret.unwrap_or(Slot::Val(V::Int(0), self.env.table.int())))
    }

    fn builtin(&mut self, name: &str, args: &[Expr], span: Span) -> IResult<Slot> {
        let int = self.env.table.int();
        let zero = Slot::Val(V::Int(0), int);
        let eval_int = |ev: &mut Self, i: usize| -> IResult<i64> {
            match ev.eval_scalar(&args[i])? {
                V::Int(v) => Ok(v),
                V::Float(f) => Ok(f as i64),
                V::Ptr(p) => Ok(ev.ptr_to_int(p)),
            }
        };
        let eval_ptr = |ev: &mut Self, i: usize| -> IResult<Option<PtrVal>> {
            let s = ev.eval(&args[i])?;
            match ev.decay(s) {
                (V::Ptr(p), _) => Ok(p),
                (V::Int(bits), _) => Ok(ev.int_to_ptr(bits)),
                _ => Ok(None),
            }
        };
        match name {
            "malloc" | "calloc" | "valloc" | "alloca" => {
                let size = if name == "calloc" && args.len() >= 2 {
                    eval_int(self, 0)? * eval_int(self, 1)?
                } else if !args.is_empty() {
                    eval_int(self, 0)?
                } else {
                    0
                };
                let ch = self.env.table.char();
                let arr = self.env.table.array_of(ch, Some(size.max(1) as u64));
                let id = self
                    .mem
                    .alloc(size.max(1) as u64, arr, MemKind::Heap(span.start));
                let vp = self.env.table.void_ptr();
                Ok(Slot::Val(V::Ptr(Some(PtrVal { obj: id, off: 0 })), vp))
            }
            "free" | "cfree" => {
                if !args.is_empty() {
                    if let Some(p) = eval_ptr(self, 0)? {
                        self.mem.obj_mut(p.obj).freed = true;
                    }
                }
                Ok(zero)
            }
            "memcpy" | "memmove" => {
                let d = eval_ptr(self, 0)?;
                let s = eval_ptr(self, 1)?;
                let n = eval_int(self, 2)?;
                if let (Some(d), Some(s)) = (d, s) {
                    self.copy_block(d, s, n.max(0) as u64);
                }
                let vp = self.env.table.void_ptr();
                Ok(Slot::Val(V::Ptr(d), vp))
            }
            "memset" | "bzero" => {
                let d = eval_ptr(self, 0)?;
                if let Some(d) = d {
                    let (v, n) = if name == "memset" {
                        (eval_int(self, 1)?, eval_int(self, 2)?)
                    } else {
                        (0, eval_int(self, 1)?)
                    };
                    for i in 0..n.max(0) as u64 {
                        self.mem.store_int(d.obj, d.off + i, v, 1);
                    }
                }
                let vp = self.env.table.void_ptr();
                Ok(Slot::Val(V::Ptr(d), vp))
            }
            "strlen" => {
                let p = eval_ptr(self, 0)?;
                let mut n = 0i64;
                if let Some(p) = p {
                    while self.mem.load_int(p.obj, p.off + n as u64, 1) != 0 {
                        n += 1;
                        if n > 1 << 20 {
                            break;
                        }
                    }
                }
                Ok(Slot::Val(V::Int(n), int))
            }
            "strcmp" | "strncmp" => {
                let a = eval_ptr(self, 0)?;
                let b = eval_ptr(self, 1)?;
                let limit = if name == "strncmp" {
                    eval_int(self, 2)?
                } else {
                    i64::MAX
                };
                let mut r = 0i64;
                if let (Some(a), Some(b)) = (a, b) {
                    let mut i = 0u64;
                    loop {
                        if (i as i64) >= limit {
                            break;
                        }
                        let ca = self.mem.load_int(a.obj, a.off + i, 1);
                        let cb = self.mem.load_int(b.obj, b.off + i, 1);
                        if ca != cb {
                            r = ca - cb;
                            break;
                        }
                        if ca == 0 {
                            break;
                        }
                        i += 1;
                    }
                }
                Ok(Slot::Val(V::Int(r), int))
            }
            "strcpy" | "strncpy" => {
                let d = eval_ptr(self, 0)?;
                let s = eval_ptr(self, 1)?;
                if let (Some(d), Some(s)) = (d, s) {
                    let mut i = 0u64;
                    loop {
                        let c = self.mem.load_int(s.obj, s.off + i, 1);
                        self.mem.store_int(d.obj, d.off + i, c, 1);
                        if c == 0 || i > 1 << 20 {
                            break;
                        }
                        i += 1;
                    }
                }
                let cp = self.env.table.char_ptr();
                Ok(Slot::Val(V::Ptr(d), cp))
            }
            "strchr" => {
                let p = eval_ptr(self, 0)?;
                let c = eval_int(self, 1)?;
                let cp = self.env.table.char_ptr();
                if let Some(p) = p {
                    let mut i = 0u64;
                    loop {
                        let ch = self.mem.load_int(p.obj, p.off + i, 1);
                        if ch == c {
                            return Ok(Slot::Val(
                                V::Ptr(Some(PtrVal {
                                    obj: p.obj,
                                    off: p.off + i,
                                })),
                                cp,
                            ));
                        }
                        if ch == 0 || i > 1 << 20 {
                            break;
                        }
                        i += 1;
                    }
                }
                Ok(Slot::Val(V::Ptr(None), cp))
            }
            "strdup" => {
                let s = eval_ptr(self, 0)?;
                let cp = self.env.table.char_ptr();
                if let Some(s) = s {
                    let mut n = 0u64;
                    while self.mem.load_int(s.obj, s.off + n, 1) != 0 && n < 1 << 20 {
                        n += 1;
                    }
                    let ch = self.env.table.char();
                    let arr = self.env.table.array_of(ch, Some(n + 1));
                    let id = self.mem.alloc(n + 1, arr, MemKind::Heap(span.start));
                    self.copy_block(PtrVal { obj: id, off: 0 }, s, n + 1);
                    return Ok(Slot::Val(V::Ptr(Some(PtrVal { obj: id, off: 0 })), cp));
                }
                Ok(Slot::Val(V::Ptr(None), cp))
            }
            "printf" | "fprintf" | "puts" | "putchar" | "fputs" | "perror" => {
                for a in args {
                    let _ = self.eval(a)?; // argument side effects still happen
                }
                Ok(zero)
            }
            "abs" | "labs" => {
                let v = eval_int(self, 0)?;
                Ok(Slot::Val(V::Int(v.abs()), int))
            }
            "exit" | "_exit" | "abort" => Err(InterpError {
                message: "program exited".into(),
                span,
            }),
            "rand" => Ok(Slot::Val(V::Int(12345), int)),
            "srand" | "assert" | "fflush" => {
                for a in args {
                    let _ = self.eval(a)?;
                }
                Ok(zero)
            }
            other => self.err(format!("unsupported external function `{other}`"), span),
        }
    }
}
