//! AST → semantic types for the interpreter.
//!
//! A small, independent re-implementation of type building (the analysis
//! pipeline has its own in `structcast-ir`); independence is the point —
//! if the two ever disagree, the differential oracle tests fail loudly.

use std::collections::HashMap;
use structcast_ast::{AstType, EnumSpec, Expr, ExprKind, RecordSpec, TypeSpec, UnOp};
use structcast_types::{Field, FuncSig, Layout, RecordId, TypeId, TypeKind, TypeTable};

/// Scoped type environment (typedefs, struct/union tags, enum constants).
#[derive(Debug, Default)]
pub struct TypeEnv {
    /// The type table being built.
    pub table: TypeTable,
    typedefs: Vec<HashMap<String, TypeId>>,
    tags: Vec<HashMap<String, RecordId>>,
    /// Enumeration constants by name (flat; enums rarely shadow).
    pub enum_consts: HashMap<String, i64>,
    layout: Option<Layout>,
    anon: u32,
}

impl TypeEnv {
    /// Creates a fresh environment with one (global) scope.
    pub fn new(layout: Layout) -> Self {
        TypeEnv {
            table: TypeTable::new(),
            typedefs: vec![HashMap::new()],
            tags: vec![HashMap::new()],
            enum_consts: HashMap::new(),
            layout: Some(layout),
            anon: 0,
        }
    }

    /// Enters a new typedef/tag scope.
    pub fn push_scope(&mut self) {
        self.typedefs.push(HashMap::new());
        self.tags.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    pub fn pop_scope(&mut self) {
        self.typedefs.pop();
        self.tags.pop();
    }

    /// Registers a typedef in the current scope.
    pub fn define_typedef(&mut self, name: &str, ty: TypeId) {
        self.typedefs
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), ty);
    }

    fn lookup_typedef(&self, name: &str) -> Option<TypeId> {
        self.typedefs
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
    }

    fn lookup_tag(&self, name: &str) -> Option<RecordId> {
        self.tags.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Builds an [`AstType`]. Unknown names and malformed specs yield an
    /// error string (the interpreter reports it with the current span).
    pub fn build(&mut self, ty: &AstType) -> Result<TypeId, String> {
        Ok(match ty {
            AstType::Base(spec) => self.build_spec(spec)?,
            AstType::Pointer(inner) => {
                let i = self.build(inner)?;
                self.table.pointer_to(i)
            }
            AstType::Array(inner, n) => {
                let i = self.build(inner)?;
                let len = n.as_deref().and_then(|e| self.const_eval(e)).map(|v| v.max(0) as u64);
                self.table.array_of(i, len)
            }
            AstType::Function {
                ret,
                params,
                variadic,
            } => {
                let r = self.build(ret)?;
                let ps: Result<Vec<TypeId>, String> =
                    params.iter().map(|p| self.build(&p.ty)).collect();
                self.table.function(FuncSig {
                    ret: r,
                    params: ps?,
                    variadic: *variadic,
                })
            }
        })
    }

    fn build_spec(&mut self, spec: &TypeSpec) -> Result<TypeId, String> {
        use structcast_types::{FloatKind, IntKind};
        let t = &mut self.table;
        Ok(match spec {
            TypeSpec::Void => t.void(),
            TypeSpec::Char => t.intern(TypeKind::Int(IntKind::Char)),
            TypeSpec::SChar => t.intern(TypeKind::Int(IntKind::SChar)),
            TypeSpec::UChar => t.intern(TypeKind::Int(IntKind::UChar)),
            TypeSpec::Short => t.intern(TypeKind::Int(IntKind::Short)),
            TypeSpec::UShort => t.intern(TypeKind::Int(IntKind::UShort)),
            TypeSpec::Int => t.int(),
            TypeSpec::UInt => t.uint(),
            TypeSpec::Long => t.long(),
            TypeSpec::ULong => t.ulong(),
            TypeSpec::LongLong => t.intern(TypeKind::Int(IntKind::LongLong)),
            TypeSpec::ULongLong => t.intern(TypeKind::Int(IntKind::ULongLong)),
            TypeSpec::Float => t.float(),
            TypeSpec::Double => t.double(),
            TypeSpec::LongDouble => t.intern(TypeKind::Float(FloatKind::LongDouble)),
            TypeSpec::Typedef(name) => self
                .lookup_typedef(name)
                .ok_or_else(|| format!("unknown typedef `{name}`"))?,
            TypeSpec::Struct(rs) => self.build_record(rs, false)?,
            TypeSpec::Union(rs) => self.build_record(rs, true)?,
            TypeSpec::Enum(es) => self.build_enum(es),
        })
    }

    fn build_record(&mut self, rs: &RecordSpec, is_union: bool) -> Result<TypeId, String> {
        let rid = match (&rs.tag, &rs.fields) {
            (Some(tag), Some(_)) => {
                let cur = self.tags.last().expect("scope");
                match cur.get(tag) {
                    Some(&r) if !self.table.record(r).complete => r,
                    Some(&r) => return Ok(self.table.intern(TypeKind::Record(r))),
                    None => {
                        let (r, _) = self.table.new_record(Some(tag.clone()), is_union);
                        self.tags
                            .last_mut()
                            .expect("scope")
                            .insert(tag.clone(), r);
                        r
                    }
                }
            }
            (Some(tag), None) => match self.lookup_tag(tag) {
                Some(r) => r,
                None => {
                    let (r, _) = self.table.new_record(Some(tag.clone()), is_union);
                    self.tags[0].insert(tag.clone(), r);
                    r
                }
            },
            (None, Some(_)) => self.table.new_record(None, is_union).0,
            (None, None) => return Err("struct without tag or body".into()),
        };
        if let Some(fields) = &rs.fields {
            let mut built = Vec::new();
            for fd in fields {
                let ty = self.build(&fd.ty)?;
                match &fd.name {
                    Some(n) => built.push(Field {
                        name: n.clone(),
                        ty,
                        anonymous: false,
                    }),
                    None if self.table.is_record_like(ty) => {
                        self.anon += 1;
                        built.push(Field {
                            name: format!("__anon{}", self.anon),
                            ty,
                            anonymous: true,
                        });
                    }
                    None => {} // unnamed bit-field padding
                }
            }
            self.table.complete_record(rid, built);
        }
        Ok(self.table.intern(TypeKind::Record(rid)))
    }

    fn build_enum(&mut self, es: &EnumSpec) -> TypeId {
        if let Some(items) = &es.items {
            let mut next = 0i64;
            for (name, val) in items {
                if let Some(e) = val {
                    if let Some(v) = self.const_eval(e) {
                        next = v;
                    }
                }
                self.enum_consts.insert(name.clone(), next);
                next += 1;
            }
        }
        self.table.intern(TypeKind::Enum(es.tag.clone()))
    }

    /// Constant evaluation for array bounds / enum values / case labels.
    pub fn const_eval(&mut self, e: &Expr) -> Option<i64> {
        use structcast_ast::BinOp::*;
        match &e.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Some(*v),
            ExprKind::Ident(n) => self.enum_consts.get(n).copied(),
            ExprKind::Unary(UnOp::Neg, i) => self.const_eval(i).map(|v| -v),
            ExprKind::Unary(UnOp::Plus, i) => self.const_eval(i),
            ExprKind::Unary(UnOp::BitNot, i) => self.const_eval(i).map(|v| !v),
            ExprKind::Unary(UnOp::Not, i) => self.const_eval(i).map(|v| i64::from(v == 0)),
            ExprKind::Binary(op, a, b) => {
                let (x, y) = (self.const_eval(a)?, self.const_eval(b)?);
                Some(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return None;
                        }
                        x / y
                    }
                    Rem => {
                        if y == 0 {
                            return None;
                        }
                        x % y
                    }
                    Shl => x.wrapping_shl(y as u32),
                    Shr => x.wrapping_shr(y as u32),
                    BitAnd => x & y,
                    BitOr => x | y,
                    BitXor => x ^ y,
                    Lt => i64::from(x < y),
                    Gt => i64::from(x > y),
                    Le => i64::from(x <= y),
                    Ge => i64::from(x >= y),
                    Eq => i64::from(x == y),
                    Ne => i64::from(x != y),
                    LogAnd => i64::from(x != 0 && y != 0),
                    LogOr => i64::from(x != 0 || y != 0),
                })
            }
            ExprKind::Cast(_, i) => self.const_eval(i),
            ExprKind::SizeofType(t) => {
                let ty = self.build(t).ok()?;
                let layout = self.layout.clone()?;
                Some(layout.size_of(&self.table, ty) as i64)
            }
            ExprKind::Cond(c, t, f) => {
                if self.const_eval(c)? != 0 {
                    self.const_eval(t)
                } else {
                    self.const_eval(f)
                }
            }
            _ => None,
        }
    }

    /// Builds a declarator type around an already-built base (avoids
    /// double-registering record bodies cloned into each declarator).
    pub fn build_with_base(&mut self, ty: &AstType, base: TypeId) -> Result<TypeId, String> {
        Ok(match ty {
            AstType::Base(_) => base,
            AstType::Pointer(inner) => {
                let i = self.build_with_base(inner, base)?;
                self.table.pointer_to(i)
            }
            AstType::Array(inner, n) => {
                let i = self.build_with_base(inner, base)?;
                let len = n.as_deref().and_then(|e| self.const_eval(e)).map(|v| v.max(0) as u64);
                self.table.array_of(i, len)
            }
            AstType::Function {
                ret,
                params,
                variadic,
            } => {
                let r = self.build_with_base(ret, base)?;
                let ps: Result<Vec<TypeId>, String> =
                    params.iter().map(|p| self.build(&p.ty)).collect();
                self.table.function(FuncSig {
                    ret: r,
                    params: ps?,
                    variadic: *variadic,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ast::parse;

    #[test]
    fn builds_struct_types_from_ast() {
        let tu = parse("typedef struct S { int *a; char b; } S; S x;").unwrap();
        let mut env = TypeEnv::new(Layout::ilp32());
        for d in &tu.decls {
            if let structcast_ast::ExternalDecl::Declaration(decl) = d {
                let base = env.build(&decl.base).unwrap();
                for item in &decl.items {
                    let ty = env.build_with_base(&item.ty, base).unwrap();
                    if decl.storage == structcast_ast::Storage::Typedef {
                        env.define_typedef(&item.name, ty);
                    } else {
                        assert_eq!(env.table.display(ty), "struct S");
                    }
                }
            }
        }
    }

    #[test]
    fn enum_constants_fold() {
        let tu = parse("enum E { A = 3, B, C = B * 2 };").unwrap();
        let mut env = TypeEnv::new(Layout::ilp32());
        if let structcast_ast::ExternalDecl::Declaration(d) = &tu.decls[0] {
            env.build(&d.base).unwrap();
        }
        assert_eq!(env.enum_consts["A"], 3);
        assert_eq!(env.enum_consts["B"], 4);
        assert_eq!(env.enum_consts["C"], 8);
    }
}
