//! Byte-level memory with pointer provenance.
//!
//! Every object (global, local instance, heap block, string literal) is a
//! byte array plus a *provenance map*: offsets at which a whole pointer
//! value is stored. Reads that exactly cover a stored pointer recover it;
//! partial overlaps lose provenance (returning plain bytes), which only
//! makes the oracle weaker, never wrong — the static analysis must cover
//! every fact the oracle *does* observe.

use std::collections::BTreeMap;
use structcast_types::TypeId;

/// Handle of a memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// A concrete pointer value: object + byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtrVal {
    /// Target object.
    pub obj: MemId,
    /// Byte offset within it.
    pub off: u64,
}

/// What kind of storage an object is (used to map back to analysis names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemKind {
    /// A named variable; the string is the analysis display name
    /// (`"x"` or `"f::x"`).
    Var(String),
    /// A heap block; the u32 is the *span start* of the allocating call.
    Heap(u32),
    /// A string literal.
    Str,
    /// A function (address-taken only; has no bytes).
    Func(String),
}

/// One memory object.
#[derive(Debug, Clone)]
pub struct MemObj {
    /// Raw storage.
    pub bytes: Vec<u8>,
    /// Pointer payloads keyed by start offset (span length = pointer size).
    pub ptrs: BTreeMap<u64, PtrVal>,
    /// Declared/known type (drives canonical-offset projection).
    pub ty: TypeId,
    /// What this object is.
    pub kind: MemKind,
    /// Whether `free` was called on it (reads/writes still allowed; the
    /// oracle is not a UB detector).
    pub freed: bool,
}

/// The interpreter's memory.
#[derive(Debug, Default)]
pub struct Memory {
    objects: Vec<MemObj>,
    ptr_size: u64,
}

impl Memory {
    /// Creates memory for a given pointer size (layout-dependent).
    pub fn new(ptr_size: u64) -> Self {
        Memory {
            objects: Vec::new(),
            ptr_size,
        }
    }

    /// The pointer size in bytes.
    pub fn ptr_size(&self) -> u64 {
        self.ptr_size
    }

    /// Allocates a fresh object of `size` zeroed bytes.
    pub fn alloc(&mut self, size: u64, ty: TypeId, kind: MemKind) -> MemId {
        let id = MemId(self.objects.len() as u32);
        self.objects.push(MemObj {
            bytes: vec![0; size as usize],
            ptrs: BTreeMap::new(),
            ty,
            kind,
            freed: false,
        });
        id
    }

    /// The object behind `id`.
    pub fn obj(&self, id: MemId) -> &MemObj {
        &self.objects[id.0 as usize]
    }

    /// Mutable access.
    pub fn obj_mut(&mut self, id: MemId) -> &mut MemObj {
        &mut self.objects[id.0 as usize]
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if nothing was allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Clears any pointer spans overlapping `[off, off+len)` in `id`.
    fn clear_ptr_spans(&mut self, id: MemId, off: u64, len: u64) {
        let ps = self.ptr_size;
        let o = self.obj_mut(id);
        let keys: Vec<u64> = o
            .ptrs
            .range(off.saturating_sub(ps - 1)..off + len)
            .map(|(&k, _)| k)
            .filter(|&k| k + ps > off && k < off + len)
            .collect();
        for k in keys {
            o.ptrs.remove(&k);
        }
    }

    /// Stores an integer of `len` bytes at `id+off` (little-endian),
    /// clobbering any overlapping pointer payload.
    ///
    /// Out-of-bounds stores are silently clipped (the oracle is not a
    /// bounds checker).
    pub fn store_int(&mut self, id: MemId, off: u64, v: i64, len: u64) {
        self.clear_ptr_spans(id, off, len);
        let o = self.obj_mut(id);
        let bytes = v.to_le_bytes();
        for i in 0..len.min(8) {
            if let Some(b) = o.bytes.get_mut((off + i) as usize) {
                *b = bytes[i as usize];
            }
        }
    }

    /// Loads a `len`-byte little-endian integer from `id+off` (sign
    /// extension is the caller's concern; returns the raw bits
    /// zero-extended).
    pub fn load_int(&self, id: MemId, off: u64, len: u64) -> i64 {
        let o = self.obj(id);
        let mut out = [0u8; 8];
        for i in 0..len.min(8) {
            if let Some(&b) = o.bytes.get((off + i) as usize) {
                out[i as usize] = b;
            }
        }
        i64::from_le_bytes(out)
    }

    /// Stores a pointer value at `id+off`.
    pub fn store_ptr(&mut self, id: MemId, off: u64, v: Option<PtrVal>) {
        let ps = self.ptr_size;
        self.clear_ptr_spans(id, off, ps);
        let o = self.obj_mut(id);
        // Null is just zero bytes with no provenance.
        for i in 0..ps {
            if let Some(b) = o.bytes.get_mut((off + i) as usize) {
                *b = 0;
            }
        }
        if let Some(p) = v {
            if (off + ps) as usize <= o.bytes.len() {
                o.ptrs.insert(off, p);
            }
        }
    }

    /// Loads a pointer from `id+off`: provenance if a whole pointer is
    /// stored exactly there, null if the bytes are all zero, otherwise an
    /// opaque non-null-but-unknown value (returned as `Err(bits)`).
    pub fn load_ptr(&self, id: MemId, off: u64) -> Result<Option<PtrVal>, i64> {
        let o = self.obj(id);
        if let Some(&p) = o.ptrs.get(&off) {
            return Ok(Some(p));
        }
        let bits = self.load_int(id, off, self.ptr_size);
        if bits == 0 {
            Ok(None)
        } else {
            Err(bits)
        }
    }

    /// memcpy semantics: copies `len` bytes *and* any wholly-contained
    /// pointer payloads from `src+soff` to `dst+doff`.
    pub fn copy_bytes(&mut self, dst: MemId, doff: u64, src: MemId, soff: u64, len: u64) {
        let ps = self.ptr_size;
        // Snapshot the source region first (dst may alias src).
        let src_obj = self.obj(src);
        let mut data = Vec::with_capacity(len as usize);
        for i in 0..len {
            data.push(src_obj.bytes.get((soff + i) as usize).copied().unwrap_or(0));
        }
        let spans: Vec<(u64, PtrVal)> = src_obj
            .ptrs
            .range(soff..soff + len)
            .filter(|(&k, _)| k + ps <= soff + len)
            .map(|(&k, &v)| (k - soff, v))
            .collect();
        self.clear_ptr_spans(dst, doff, len);
        let d = self.obj_mut(dst);
        for (i, b) in data.into_iter().enumerate() {
            if let Some(slot) = d.bytes.get_mut(doff as usize + i) {
                *slot = b;
            }
        }
        for (rel, v) in spans {
            if (doff + rel + ps) as usize <= d.bytes.len() {
                d.ptrs.insert(doff + rel, v);
            }
        }
    }

    /// All pointer payloads currently stored in `id` (offset → value).
    pub fn ptr_spans(&self, id: MemId) -> Vec<(u64, PtrVal)> {
        self.obj(id).ptrs.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_types::TypeTable;

    fn mem() -> (Memory, MemId, MemId) {
        let mut t = TypeTable::new();
        let int = t.int();
        let mut m = Memory::new(4);
        let a = m.alloc(32, int, MemKind::Var("a".into()));
        let b = m.alloc(32, int, MemKind::Var("b".into()));
        (m, a, b)
    }

    #[test]
    fn int_round_trip() {
        let (mut m, a, _) = mem();
        m.store_int(a, 4, -123, 4);
        assert_eq!(m.load_int(a, 4, 4) as i32, -123);
        m.store_int(a, 0, 0x1122334455, 8);
        assert_eq!(m.load_int(a, 0, 8), 0x1122334455);
    }

    #[test]
    fn ptr_round_trip_and_null() {
        let (mut m, a, b) = mem();
        let p = PtrVal { obj: b, off: 8 };
        m.store_ptr(a, 0, Some(p));
        assert_eq!(m.load_ptr(a, 0), Ok(Some(p)));
        m.store_ptr(a, 0, None);
        assert_eq!(m.load_ptr(a, 0), Ok(None));
    }

    #[test]
    fn int_store_clobbers_pointer() {
        let (mut m, a, b) = mem();
        m.store_ptr(a, 4, Some(PtrVal { obj: b, off: 0 }));
        m.store_int(a, 6, 1, 1); // overlaps the middle of the pointer
        match m.load_ptr(a, 4) {
            Err(_) | Ok(None) => {} // provenance gone
            Ok(Some(_)) => panic!("pointer survived a partial overwrite"),
        }
    }

    #[test]
    fn misaligned_pointer_read_loses_provenance() {
        let (mut m, a, b) = mem();
        m.store_ptr(a, 4, Some(PtrVal { obj: b, off: 0 }));
        // Reading at 6 does not see a stored pointer at exactly 6.
        assert!(matches!(m.load_ptr(a, 6), Ok(None) | Err(_)));
    }

    #[test]
    fn copy_bytes_carries_pointers() {
        let (mut m, a, b) = mem();
        m.store_ptr(a, 0, Some(PtrVal { obj: b, off: 4 }));
        m.store_int(a, 4, 99, 4);
        m.copy_bytes(b, 8, a, 0, 8);
        assert_eq!(m.load_ptr(b, 8), Ok(Some(PtrVal { obj: b, off: 4 })));
        assert_eq!(m.load_int(b, 12, 4), 99);
    }

    #[test]
    fn partial_copy_drops_straddling_pointer() {
        let (mut m, a, b) = mem();
        m.store_ptr(a, 2, Some(PtrVal { obj: b, off: 0 }));
        // Copy only bytes [0,4): the pointer at 2..6 straddles the edge.
        m.copy_bytes(b, 0, a, 0, 4);
        assert!(matches!(m.load_ptr(b, 2), Ok(None) | Err(_)));
    }

    #[test]
    fn out_of_bounds_is_clipped() {
        let (mut m, a, _) = mem();
        m.store_int(a, 30, -1, 8); // runs past the end
        let _ = m.load_int(a, 30, 8);
        m.store_ptr(a, 30, Some(PtrVal { obj: a, off: 0 })); // doesn't fit
        assert!(matches!(m.load_ptr(a, 30), Ok(None) | Err(_)));
    }
}
