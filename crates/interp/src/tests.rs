//! Interpreter unit tests: language semantics and fact recording.

use crate::eval::{run_source, ConcreteId, RunResult};

fn run(src: &str) -> RunResult {
    let r = run_source(src).expect("parse ok");
    if let Some(e) = &r.error {
        panic!("runtime error: {e}");
    }
    r
}

/// Facts as readable strings "src+off -> tgt+off".
fn fact_strings(r: &RunResult) -> Vec<String> {
    r.facts
        .iter()
        .map(|f| {
            let name = |id: &ConcreteId| match id {
                ConcreteId::Var(n) => n.clone(),
                ConcreteId::Heap(s) => format!("heap@{s}"),
                ConcreteId::Str => "str".into(),
                ConcreteId::Func(n) => format!("fn:{n}"),
            };
            format!(
                "{}+{} -> {}+{}",
                name(&f.src.0),
                f.src.1,
                name(&f.tgt.0),
                f.tgt.1
            )
        })
        .collect()
}

#[test]
fn exit_value_of_main() {
    let r = run("int main(void) { return 41 + 1; }");
    assert_eq!(r.exit_value, Some(42));
}

#[test]
fn arithmetic_and_control_flow() {
    let r = run(
        "int main(void) {\n\
           int i, acc;\n\
           acc = 0;\n\
           for (i = 1; i <= 10; i++) { if (i % 2 == 0) acc = acc + i; }\n\
           while (acc > 30) acc--;\n\
           return acc;\n\
         }",
    );
    assert_eq!(r.exit_value, Some(30));
}

#[test]
fn switch_with_fallthrough_and_default() {
    let r = run(
        "int classify(int x) {\n\
           int r;\n\
           r = 0;\n\
           switch (x) {\n\
           case 1: r = r + 1;\n\
           case 2: r = r + 2; break;\n\
           case 3: r = 30; break;\n\
           default: r = 99;\n\
           }\n\
           return r;\n\
         }\n\
         int main(void) { return classify(1) * 10000 + classify(3) * 100 + classify(7); }",
    );
    // classify(1) = 3 (fallthrough), classify(3) = 30, classify(7) = 99.
    assert_eq!(r.exit_value, Some(3 * 10000 + 30 * 100 + 99));
}

#[test]
fn pointer_store_records_fact() {
    let r = run("int x, *p; void main(void) { p = &x; }");
    assert_eq!(fact_strings(&r), vec!["p+0 -> x+0"]);
}

#[test]
fn struct_field_stores_record_offsets() {
    let r = run(
        "struct S { int *a; int *b; } s; int x, y;\n\
         void main(void) { s.a = &x; s.b = &y; }",
    );
    let fs = fact_strings(&r);
    assert!(fs.contains(&"s+0 -> x+0".to_string()), "{fs:?}");
    assert!(fs.contains(&"s+4 -> y+0".to_string()), "{fs:?}");
}

#[test]
fn struct_copy_carries_pointers() {
    let r = run(
        "struct S { int *a; int *b; } s, t; int x;\n\
         void main(void) { s.b = &x; t = s; }",
    );
    let fs = fact_strings(&r);
    assert!(fs.contains(&"t+4 -> x+0".to_string()), "{fs:?}");
}

#[test]
fn cast_roundtrip_preserves_provenance() {
    let r = run(
        "int x, *p, *q; long l;\n\
         void main(void) { p = &x; l = (long)p; q = (int *)l; *q = 7; }",
    );
    assert!(r.completed);
    // q = (int*)l stored a pointer back into q.
    let fs = fact_strings(&r);
    assert!(fs.iter().any(|f| f.starts_with("q+0 -> x")), "{fs:?}");
}

#[test]
fn first_field_pun_reads_pointer() {
    let r = run(
        "struct Box { int *inner; } b; int x, *out;\n\
         void main(void) { b.inner = &x; out = *(int **)&b; *out = 3; }",
    );
    let fs = fact_strings(&r);
    assert!(fs.iter().any(|f| f.starts_with("out+0 -> x")), "{fs:?}");
}

#[test]
fn malloc_heap_identity_by_span() {
    let r = run(
        "struct N { struct N *next; } *a, *b;\n\
         void main(void) {\n\
           a = (struct N *)malloc(sizeof(struct N));\n\
           b = (struct N *)malloc(sizeof(struct N));\n\
           a->next = b;\n\
         }",
    );
    let heap_ids: std::collections::HashSet<_> = r
        .facts
        .iter()
        .filter_map(|f| match &f.tgt.0 {
            ConcreteId::Heap(s) => Some(*s),
            _ => None,
        })
        .collect();
    assert_eq!(heap_ids.len(), 2, "two distinct allocation sites");
}

#[test]
fn arrays_are_concretely_indexed() {
    let r = run(
        "int a[10];\n\
         int main(void) {\n\
           int i;\n\
           for (i = 0; i < 10; i++) a[i] = i * i;\n\
           return a[7];\n\
         }",
    );
    assert_eq!(r.exit_value, Some(49));
}

#[test]
fn array_of_pointers_records_element_offsets() {
    let r = run(
        "int x, y, *t[4];\n\
         void main(void) { t[1] = &x; t[3] = &y; }",
    );
    let fs = fact_strings(&r);
    assert!(fs.contains(&"t+4 -> x+0".to_string()), "{fs:?}");
    assert!(fs.contains(&"t+12 -> y+0".to_string()), "{fs:?}");
}

#[test]
fn function_pointers_dispatch() {
    let r = run(
        "int add(int a, int b) { return a + b; }\n\
         int mul(int a, int b) { return a * b; }\n\
         int (*op)(int, int);\n\
         int main(void) {\n\
           int r;\n\
           op = add; r = op(3, 4);\n\
           op = mul; r = r * 10 + (*op)(3, 4);\n\
           return r;\n\
         }",
    );
    assert_eq!(r.exit_value, Some(82));
    let fs = fact_strings(&r);
    assert!(fs.contains(&"op+0 -> fn:add+0".to_string()), "{fs:?}");
    assert!(fs.contains(&"op+0 -> fn:mul+0".to_string()));
}

#[test]
fn recursion_works() {
    let r = run(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
         int main(void) { return fib(12); }",
    );
    assert_eq!(r.exit_value, Some(144));
}

#[test]
fn memcpy_builtin_moves_pointers() {
    let r = run(
        "struct P { int *a; int *b; } src, dst; int x;\n\
         void main(void) { src.b = &x; memcpy(&dst, &src, sizeof(struct P)); }",
    );
    let fs = fact_strings(&r);
    assert!(fs.contains(&"dst+4 -> x+0".to_string()), "{fs:?}");
}

#[test]
fn string_builtins() {
    let r = run(
        "char buf[16]; char *hit; int n;\n\
         int main(void) {\n\
           strcpy(buf, \"hello\");\n\
           n = strlen(buf);\n\
           hit = strchr(buf, 'l');\n\
           return n * 10 + (hit != 0);\n\
         }",
    );
    assert_eq!(r.exit_value, Some(51));
}

#[test]
fn step_budget_stops_infinite_loops() {
    let r = crate::eval::run_source_with_budget(
        "void main(void) { while (1) { } }",
        10_000,
    )
    .unwrap();
    assert!(!r.completed);
    assert!(r.error.is_some());
    assert!(r.steps >= 10_000);
}

#[test]
fn pointer_arithmetic_scales_by_pointee() {
    let r = run(
        "int a[5], *p;\n\
         int main(void) { a[2] = 77; p = a; p = p + 2; return *p; }",
    );
    assert_eq!(r.exit_value, Some(77));
}

#[test]
fn null_dereference_is_a_runtime_error() {
    let r = run_source("int *p; void main(void) { *p = 1; }").unwrap();
    assert!(r.error.is_some());
    assert!(r.error.unwrap().message.contains("null"));
}

#[test]
fn locals_get_scoped_names() {
    let r = run(
        "int x; void f(void) { int *local; local = &x; }\n\
         void main(void) { f(); }",
    );
    let fs = fact_strings(&r);
    assert!(fs.contains(&"f::local+0 -> x+0".to_string()), "{fs:?}");
}

#[test]
fn union_members_overlap() {
    let r = run(
        "union U { int i; int j; } u;\n\
         int main(void) { u.i = 5; return u.j; }",
    );
    assert_eq!(r.exit_value, Some(5));
}

#[test]
fn conditional_expression_and_logic_ops() {
    let r = run(
        "int main(void) {\n\
           int a, b;\n\
           a = 1 ? 10 : 20;\n\
           b = (0 && (1 / 0)) + (1 || (1 / 0));\n\
           return a + b;\n\
         }",
    );
    // Short-circuiting avoids both divisions by zero.
    assert_eq!(r.exit_value, Some(11));
}
