//! The differential soundness oracle.
//!
//! Run each program concretely and collect every pointer-store fact the
//! execution produces; then check that every static analysis instance
//! *covers* all of them. A miss is a soundness bug in the analysis (or a
//! provenance bug in the interpreter) — either way, a real defect.
//!
//! Coverage is checked at two granularities:
//!
//! * **object level** for all four instances: the (source object → target
//!   object) projection of every concrete fact must appear among the
//!   instance's facts;
//! * **offset level** for the Offsets instance (same ILP32 layout as the
//!   interpreter): source and target byte offsets must match after
//!   canonicalization against the *static* object types (folding array
//!   elements onto their representative).

use std::collections::HashSet;
use structcast::{analyze, AnalysisConfig, FieldRep, Layout, ModelKind, ObjId, Program};
use structcast_interp::{run_source_with_budget, ConcreteFact, ConcreteId};

/// Maps a concrete identity to the static object, if it has one.
fn static_obj(prog: &Program, id: &ConcreteId) -> Option<ObjId> {
    match id {
        ConcreteId::Var(name) => prog.object_by_name(name),
        ConcreteId::Heap(span_start) => prog.heap_object_at(*span_start),
        ConcreteId::Func(name) => prog.function_by_name(name).map(|f| f.obj),
        ConcreteId::Str => None, // string literals are not name-matched
    }
}

fn check_program(label: &str, src: &str) {
    let run = run_source_with_budget(src, 3_000_000)
        .unwrap_or_else(|e| panic!("{label}: interpreter setup failed: {e}"));
    if let Some(e) = &run.error {
        // Runtime errors (wild pointers etc.) still leave valid facts; a
        // parse-level mismatch would have failed above.
        eprintln!("{label}: interpreter stopped early: {e}");
    }
    if run.facts.is_empty() {
        return;
    }
    let prog = structcast::lower_source(src)
        .unwrap_or_else(|e| panic!("{label}: lowering failed: {e}"));
    let layout = Layout::ilp32();

    // Resolve concrete facts to static objects once.
    let resolved: Vec<(&ConcreteFact, ObjId, ObjId)> = run
        .facts
        .iter()
        .filter_map(|f| {
            let s = static_obj(&prog, &f.src.0)?;
            let t = static_obj(&prog, &f.tgt.0)?;
            Some((f, s, t))
        })
        .collect();

    for kind in ModelKind::ALL {
        let cfg = AnalysisConfig::new(kind).with_layout(layout.clone());
        let res = analyze(&prog, &cfg);
        // Object-level projection of the static facts, by *name* (shadowed
        // locals share display names; so does the concrete side).
        let static_objs: HashSet<(String, String)> = res
            .facts
            .iter()
            .map(|(a, b)| {
                (
                    prog.object(a.obj).name.clone(),
                    prog.object(b.obj).name.clone(),
                )
            })
            .collect();
        let static_offsets: HashSet<(String, u64, String, u64)> = res
            .facts
            .iter()
            .filter_map(|(a, b)| match (&a.field, &b.field) {
                (FieldRep::Off(ao), FieldRep::Off(bo)) => Some((
                    prog.object(a.obj).name.clone(),
                    *ao,
                    prog.object(b.obj).name.clone(),
                    *bo,
                )),
                _ => None,
            })
            .collect();

        for (f, s, t) in &resolved {
            let sname = prog.object(*s).name.clone();
            let tname = prog.object(*t).name.clone();
            assert!(
                static_objs.contains(&(sname.clone(), tname.clone())),
                "{label} under {kind}: concrete fact {sname}(+{}) -> {tname}(+{}) \
                 not covered at object level",
                f.src.1,
                f.tgt.1
            );
            if kind == ModelKind::Offsets {
                let soff = layout.canonical_offset(&prog.types, prog.type_of(*s), f.src.1);
                let toff = layout.canonical_offset(&prog.types, prog.type_of(*t), f.tgt.1);
                assert!(
                    static_offsets.contains(&(sname.clone(), soff, tname.clone(), toff)),
                    "{label} under Offsets: concrete fact {sname}+{soff} -> {tname}+{toff} \
                     (raw +{} -> +{}) not covered at offset level",
                    f.src.1,
                    f.tgt.1
                );
            }
        }
    }
}

// ----- paper examples, executed for real -----

#[test]
fn oracle_intro_example() {
    check_program(
        "intro",
        "struct S { int *s1; int *s2; } s; int x, y, *p;\n\
         void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }",
    );
}

#[test]
fn oracle_problem1() {
    check_program(
        "problem1",
        "struct S { int *s1; } s, *p; int x, *q, *r;\n\
         void main(void) { p = &s; q = &x; *p = *(struct S *)&q; r = s.s1; }",
    );
}

#[test]
fn oracle_complication2_double_roundtrip() {
    check_program(
        "complication2",
        "struct R { int *r1; int *r2; } r, r2v; double d; int x, y;\n\
         void main(void) {\n\
           r.r1 = &x; r.r2 = &y;\n\
           d = *(double *)&r;\n\
           r2v = *(struct R *)&d;\n\
         }",
    );
}

#[test]
fn oracle_complication4_partial_copy() {
    check_program(
        "complication4",
        "struct R { int *r1; int *r2; char *r3; } r;\n\
         struct S { int *s1; int *s2; int *s3; } s;\n\
         struct T { int *t1; int *t2; } *p;\n\
         int a, b, c0;\n\
         void main(void) {\n\
           s.s1 = &a; s.s2 = &b; s.s3 = &c0;\n\
           p = (struct T *)&r;\n\
           *p = *(struct T *)&s;\n\
         }",
    );
}

#[test]
fn oracle_oop_downcasts() {
    check_program(
        "oop",
        "struct Shape { int kind; int *tag; } ;\n\
         struct Circle { int kind; int *tag; int radius; } c;\n\
         struct Shape *sp; int t1;\n\
         void main(void) {\n\
           c.kind = 1; c.tag = &t1; c.radius = 5;\n\
           sp = (struct Shape *)&c;\n\
           sp->tag = c.tag;\n\
         }",
    );
}

#[test]
fn oracle_heap_lists() {
    check_program(
        "heap-list",
        "struct N { struct N *next; int *data; } *head; int x;\n\
         void main(void) {\n\
           int i;\n\
           for (i = 0; i < 5; i++) {\n\
             struct N *n;\n\
             n = (struct N *)malloc(sizeof(struct N));\n\
             n->data = &x;\n\
             n->next = head;\n\
             head = n;\n\
           }\n\
         }",
    );
}

#[test]
fn oracle_function_pointers() {
    check_program(
        "fnptr",
        "int x;\n\
         int *get(void) { return &x; }\n\
         struct Ops { int *(*fn)(void); } ops;\n\
         int *out;\n\
         void main(void) { ops.fn = get; out = ops.fn(); }",
    );
}

#[test]
fn oracle_int_smuggled_pointers() {
    check_program(
        "smuggle",
        "int x, *p, *q; long l;\n\
         void main(void) { p = &x; l = (long)p; q = (int *)l; }",
    );
}

#[test]
fn oracle_union_type_punning() {
    check_program(
        "union-pun",
        "union U { int *as_ip; char *as_cp; long bits; } u;\n\
         struct Holder { union U inner; int *clean; } h;\n\
         int x, y; char c0;\n\
         int *out1; char *out2;\n\
         void main(void) {\n\
           h.inner.as_ip = &x;\n\
           h.clean = &y;\n\
           out1 = h.inner.as_ip;\n\
           out2 = h.inner.as_cp;\n\
           u.as_cp = &c0;\n\
           out2 = u.as_cp;\n\
         }",
    );
}

// ----- the whole benchmark corpus, executed -----

#[test]
fn oracle_corpus_programs() {
    // Programs the interpreter can execute end to end (they use only the
    // implemented builtins; qsort/getenv-style summaries are analysis-only).
    let runnable = [
        "list-utils",
        "bst",
        "matrix",
        "stack-calc",
        "string-pool",
        "queue-sim",
        "graph-dfs",
        "hashmap",
        "tagged-union",
        "allocator",
        "packet-parse",
        "oop-shapes",
        "intrusive-list",
        "event-loop",
        "serializer",
        "vm-interp",
        "arena",
        "plugin-registry",
        "btree-generic",
        "symtab",
    ];
    for name in runnable {
        let p = structcast_progen::corpus_program(name).unwrap();
        check_program(name, p.source);
    }
}

// ----- generated programs -----

#[test]
fn oracle_generated_programs() {
    for seed in [5u64, 17, 99] {
        for ratio in [0.0, 0.5, 1.0] {
            let src = structcast_progen::generate(
                &structcast_progen::GenConfig::small(seed).with_cast_ratio(ratio),
            );
            check_program(&format!("gen-{seed}-{ratio}"), &src);
        }
    }
}
