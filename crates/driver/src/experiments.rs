//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5) over the substitute corpus, plus the ablations and
//! scaling sweeps documented in DESIGN.md.
//!
//! Each `run_*` function returns structured rows; rendering lives in
//! [`crate::report`].
//!
//! Runners that collect *metrics* (figures 3, 4, 6, the layout and stride
//! ablations, MOD/REF) take a `threads` knob and solve their per-program
//! model batch through [`AnalysisSession::solve_all`] — the deterministic
//! parallel layer guarantees the rows are identical to a sequential run.
//! Runners whose per-model **wall-clock** feeds a figure (figure 5, the
//! Steensgaard ablation) keep strictly sequential timing loops so the
//! reported times are uncontended.

use std::time::{Duration, Instant};
use structcast::steensgaard::steensgaard;
use structcast::{AnalysisConfig, AnalysisSession, Layout, ModelKind, Program};
use structcast_progen::{casty_corpus, corpus, generate, CorpusProgram, GenConfig};

/// One row of Figure 3: program characteristics and the share of
/// `lookup`/`resolve` calls that involved structures / mismatched types,
/// for the two portable cast-aware instances.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Program name.
    pub name: String,
    /// Whether the program casts structures (paper: second half of table).
    pub casty: bool,
    /// Source line count.
    pub lines: usize,
    /// Normalized assignment statements.
    pub assignments: usize,
    /// Collapse-on-Cast: % lookup calls involving structs.
    pub coc_lookup_struct_pct: f64,
    /// Collapse-on-Cast: % resolve calls involving structs.
    pub coc_resolve_struct_pct: f64,
    /// Collapse-on-Cast: % of struct lookups with a type mismatch.
    pub coc_lookup_mismatch_pct: f64,
    /// Collapse-on-Cast: % of struct resolves with a type mismatch.
    pub coc_resolve_mismatch_pct: f64,
    /// Common-Initial-Sequence: % lookup calls involving structs.
    pub cis_lookup_struct_pct: f64,
    /// Common-Initial-Sequence: % resolve calls involving structs.
    pub cis_resolve_struct_pct: f64,
    /// Common-Initial-Sequence: % of struct lookups with a type mismatch.
    pub cis_lookup_mismatch_pct: f64,
    /// Common-Initial-Sequence: % of struct resolves with a type mismatch.
    pub cis_resolve_mismatch_pct: f64,
}

/// One row of Figures 4/5/6: a per-program metric under all four models,
/// in [`ModelKind::ALL`] order.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Program name.
    pub name: String,
    /// Metric per model (CollapseAlways, CollapseOnCast, CIS, Offsets).
    pub values: [f64; 4],
}

impl ModelRow {
    /// Value for a specific model.
    pub fn value(&self, kind: ModelKind) -> f64 {
        let idx = ModelKind::ALL.iter().position(|k| *k == kind).expect("known model");
        self.values[idx]
    }

    /// Values normalized so the Offsets column is 1.0 (Figures 5 and 6).
    pub fn normalized_to_offsets(&self) -> [f64; 4] {
        let base = self.value(ModelKind::Offsets);
        let mut out = self.values;
        if base > 0.0 {
            for v in &mut out {
                *v /= base;
            }
        }
        out
    }
}

fn lower(p: &CorpusProgram) -> Program {
    structcast::lower_source(p.source)
        .unwrap_or_else(|e| panic!("corpus program {} failed to lower: {e}", p.name))
}

fn run_model(session: &AnalysisSession<'_>, kind: ModelKind) -> structcast::AnalysisResult {
    session.solve(&AnalysisConfig::new(kind))
}

/// Solves all four default model configs over one session, `threads`-wide,
/// returning results in [`ModelKind::ALL`] order.
fn run_all_models(
    session: &AnalysisSession<'_>,
    threads: usize,
) -> Vec<structcast::AnalysisResult> {
    let configs = AnalysisConfig::default().for_all_kinds();
    session.solve_all(&configs, threads)
}

/// Figure 3: program stats + struct/cast call ratios for all 20 programs.
pub fn run_fig3(threads: usize) -> Vec<Fig3Row> {
    corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let configs = [
                AnalysisConfig::new(ModelKind::CollapseOnCast),
                AnalysisConfig::new(ModelKind::CommonInitialSeq),
            ];
            let mut results = session.solve_all(&configs, threads).into_iter();
            let (coc, cis) = (results.next().unwrap(), results.next().unwrap());
            Fig3Row {
                name: p.name.to_string(),
                casty: p.casty,
                lines: p.line_count(),
                assignments: prog.assignment_count(),
                coc_lookup_struct_pct: coc.stats.lookup_struct_pct(),
                coc_resolve_struct_pct: coc.stats.resolve_struct_pct(),
                coc_lookup_mismatch_pct: coc.stats.lookup_mismatch_pct(),
                coc_resolve_mismatch_pct: coc.stats.resolve_mismatch_pct(),
                cis_lookup_struct_pct: cis.stats.lookup_struct_pct(),
                cis_resolve_struct_pct: cis.stats.resolve_struct_pct(),
                cis_lookup_mismatch_pct: cis.stats.lookup_mismatch_pct(),
                cis_resolve_mismatch_pct: cis.stats.resolve_mismatch_pct(),
            }
        })
        .collect()
}

/// Figure 4: average points-to set size per static dereference, for the 12
/// cast-heavy programs, under all four instances (Collapse-Always expanded
/// per-field for fairness).
pub fn run_fig4(threads: usize) -> Vec<ModelRow> {
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let results = run_all_models(&session, threads);
            let mut values = [0.0; 4];
            for (v, res) in values.iter_mut().zip(&results) {
                *v = res.average_deref_size(&prog);
            }
            ModelRow {
                name: p.name.to_string(),
                values,
            }
        })
        .collect()
}

/// Figure 5: analysis wall-clock time per program and model. `repeats`
/// controls how many timed runs are averaged (after one warmup).
pub fn run_fig5(repeats: usize) -> Vec<ModelRow> {
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let values = ModelKind::ALL.map(|kind| {
                let _ = run_model(&session, kind); // warmup
                let mut total = Duration::ZERO;
                for _ in 0..repeats.max(1) {
                    total += run_model(&session, kind).elapsed;
                }
                total.as_secs_f64() / repeats.max(1) as f64
            });
            ModelRow {
                name: p.name.to_string(),
                values,
            }
        })
        .collect()
}

/// Figure 6: total points-to edges per program and model.
pub fn run_fig6(threads: usize) -> Vec<ModelRow> {
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let results = run_all_models(&session, threads);
            let mut values = [0.0; 4];
            for (v, res) in values.iter_mut().zip(&results) {
                *v = res.edge_count() as f64;
            }
            ModelRow {
                name: p.name.to_string(),
                values,
            }
        })
        .collect()
}

/// Ablation A: inclusion-based instances vs the Steensgaard-style
/// unification baseline, on the cast-heavy corpus.
#[derive(Debug, Clone)]
pub struct SteensRow {
    /// Program name.
    pub name: String,
    /// Average deref set size, Collapse-Always (inclusion).
    pub collapse_always: f64,
    /// Average deref set size, Common Initial Sequence (inclusion).
    pub cis: f64,
    /// Average deref set size, Steensgaard unification.
    pub steensgaard: f64,
    /// Steensgaard wall-clock seconds.
    pub steens_time: f64,
    /// CIS wall-clock seconds.
    pub cis_time: f64,
}

/// Runs Ablation A over the cast-heavy corpus.
pub fn run_ablation_steensgaard() -> Vec<SteensRow> {
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let ca = run_model(&session, ModelKind::CollapseAlways);
            let cis = run_model(&session, ModelKind::CommonInitialSeq);
            let st = steensgaard(&prog);
            SteensRow {
                name: p.name.to_string(),
                collapse_always: ca.average_deref_size(&prog),
                cis: cis.average_deref_size(&prog),
                steensgaard: st.average_deref_size(&prog),
                steens_time: st.elapsed.as_secs_f64(),
                cis_time: cis.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

/// Ablation B: the Offsets instance under three layout strategies,
/// demonstrating why its results are not portable.
#[derive(Debug, Clone)]
pub struct LayoutRow {
    /// Program name.
    pub name: String,
    /// Average deref size per layout (ilp32, lp64, packed32).
    pub avg_sizes: [f64; 3],
    /// Edge counts per layout.
    pub edges: [usize; 3],
}

/// Runs Ablation B over the cast-heavy corpus.
pub fn run_ablation_layout(threads: usize) -> Vec<LayoutRow> {
    let layouts = [Layout::ilp32(), Layout::lp64(), Layout::packed32()];
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let configs: Vec<AnalysisConfig> = layouts
                .iter()
                .map(|l| AnalysisConfig::new(ModelKind::Offsets).with_layout(l.clone()))
                .collect();
            let results = session.solve_all(&configs, threads);
            let mut avg_sizes = [0.0; 3];
            let mut edges = [0usize; 3];
            for (i, res) in results.iter().enumerate() {
                avg_sizes[i] = res.average_deref_size(&prog);
                edges[i] = res.edge_count();
            }
            LayoutRow {
                name: p.name.to_string(),
                avg_sizes,
                edges,
            }
        })
        .collect()
}

/// Ablation C: the Wilson–Lam stride refinement for pointer arithmetic
/// (related work §6) vs the paper's whole-object spread, plus the count of
/// dereference sites the Unknown-flagging mode (§4.2.1) would report.
#[derive(Debug, Clone)]
pub struct StrideRow {
    /// Program name.
    pub name: String,
    /// Average deref size: Offsets, plain spread.
    pub off_plain: f64,
    /// Average deref size: Offsets with stride.
    pub off_stride: f64,
    /// Average deref size: CIS, plain spread.
    pub cis_plain: f64,
    /// Average deref size: CIS with stride.
    pub cis_stride: f64,
    /// Dereference sites flagged by the Unknown mode (CIS instance).
    pub unknown_sites: usize,
}

/// Runs Ablation C over the cast-heavy corpus.
pub fn run_ablation_stride(threads: usize) -> Vec<StrideRow> {
    use structcast::ArithMode;
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let configs = [
                AnalysisConfig::new(ModelKind::Offsets),
                AnalysisConfig::new(ModelKind::Offsets).with_stride(true),
                AnalysisConfig::new(ModelKind::CommonInitialSeq),
                AnalysisConfig::new(ModelKind::CommonInitialSeq).with_stride(true),
                AnalysisConfig::new(ModelKind::CommonInitialSeq)
                    .with_arith_mode(ArithMode::FlagUnknown),
            ];
            let results = session.solve_all(&configs, threads);
            let avg = |i: usize| results[i].average_deref_size(&prog);
            StrideRow {
                name: p.name.to_string(),
                off_plain: avg(0),
                off_stride: avg(1),
                cis_plain: avg(2),
                cis_stride: avg(3),
                unknown_sites: results[4].unknown_deref_sites(&prog).len(),
            }
        })
        .collect()
}

/// Experiment D: downstream impact — average MOD-set size per function
/// (the side-effect client from `structcast::modref`), under all four
/// instances. Mirrors the paper's motivation that pointer precision drives
/// the precision of subsequent phases.
#[derive(Debug, Clone)]
pub struct ModRefRow {
    /// Program name.
    pub name: String,
    /// Average MOD size per model, in [`ModelKind::ALL`] order.
    pub avg_mod: [f64; 4],
}

/// Runs Experiment D over the cast-heavy corpus (transitive MOD/REF).
pub fn run_modref(threads: usize) -> Vec<ModRefRow> {
    use structcast::modref::mod_ref;
    casty_corpus()
        .iter()
        .map(|p| {
            let prog = lower(p);
            let session = AnalysisSession::compile(&prog);
            let results = run_all_models(&session, threads);
            let mut avg_mod = [0.0; 4];
            for (v, res) in avg_mod.iter_mut().zip(&results) {
                *v = mod_ref(&prog, res, true).average_mod_size(&prog);
            }
            ModRefRow {
                name: p.name.to_string(),
                avg_mod,
            }
        })
        .collect()
}

/// One scaling measurement on a generated program.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Preset label.
    pub preset: String,
    /// Cast ratio used.
    pub cast_ratio: f64,
    /// Source lines.
    pub lines: usize,
    /// Normalized assignments.
    pub assignments: usize,
    /// One-time IR→constraint compilation (stage 1), seconds — paid once
    /// and shared by all four solves below.
    pub compile_s: f64,
    /// Per-model specialize+solve time (seconds), in [`ModelKind::ALL`] order.
    pub times: [f64; 4],
    /// Edge counts per model.
    pub edges: [usize; 4],
    /// Solver iterations (statement evaluations) per model.
    pub iterations: [u64; 4],
    /// Worker threads used for the multi-model parallel measurement.
    pub threads: usize,
    /// Wall-clock seconds to solve all four models sequentially.
    pub seq4_s: f64,
    /// Wall-clock seconds to solve all four models via `solve_all` at
    /// `threads` workers (same compiled constraints).
    pub par4_s: f64,
}

impl ScalingRow {
    /// Multi-model speedup: sequential 4-model wall-clock over parallel.
    pub fn speedup(&self) -> f64 {
        if self.par4_s > 0.0 {
            self.seq4_s / self.par4_s
        } else {
            1.0
        }
    }
}

/// Scaling sweep over generated programs (size × cast ratio).
pub fn run_scaling(include_large: bool, threads: usize) -> Vec<ScalingRow> {
    let mut cases: Vec<(String, GenConfig)> = vec![];
    for ratio in [0.0, 0.3, 0.8] {
        cases.push((
            format!("small/r{ratio}"),
            GenConfig::small(97).with_cast_ratio(ratio),
        ));
        cases.push((
            format!("medium/r{ratio}"),
            GenConfig::medium(97).with_cast_ratio(ratio),
        ));
    }
    if include_large {
        cases.push(("large/r0.3".into(), GenConfig::large(97).with_cast_ratio(0.3)));
    }
    cases
        .into_iter()
        .map(|(label, cfg)| {
            let src = generate(&cfg);
            let prog = structcast::lower_source(&src).expect("generated program lowers");
            let start = Instant::now();
            let session = AnalysisSession::compile(&prog);
            let compile_s = start.elapsed().as_secs_f64();
            let mut times = [0.0; 4];
            let mut edges = [0usize; 4];
            let mut iterations = [0u64; 4];
            for (i, kind) in ModelKind::ALL.iter().enumerate() {
                let res = run_model(&session, *kind);
                times[i] = res.elapsed.as_secs_f64();
                edges[i] = res.edge_count();
                iterations[i] = res.iterations;
            }
            // Multi-model wall-clock: the same four solves back-to-back vs
            // fanned out `threads`-wide over the shared constraint set.
            let configs = AnalysisConfig::default().for_all_kinds();
            let start = Instant::now();
            for cfg in &configs {
                let _ = session.solve(cfg);
            }
            let seq4_s = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let _ = session.solve_all(&configs, threads);
            let par4_s = start.elapsed().as_secs_f64();
            ScalingRow {
                preset: label,
                cast_ratio: cfg.cast_ratio,
                lines: src.lines().count(),
                assignments: prog.assignment_count(),
                compile_s,
                times,
                edges,
                iterations,
                threads,
                seq4_s,
                par4_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_twenty_rows_in_paper_order() {
        let rows = run_fig3(2);
        assert_eq!(rows.len(), 20);
        assert!(rows[..8].iter().all(|r| !r.casty));
        assert!(rows[8..].iter().all(|r| r.casty));
        // Cast-heavy programs must show nonzero mismatch percentages
        // somewhere (that is what makes them cast-heavy).
        let any_mismatch = rows[8..].iter().any(|r| {
            r.coc_lookup_mismatch_pct > 0.0 || r.coc_resolve_mismatch_pct > 0.0
        });
        assert!(any_mismatch);
    }

    #[test]
    fn fig4_collapse_always_dominates() {
        let rows = run_fig4(4);
        assert_eq!(rows.len(), 12);
        // In aggregate, Collapse-Always sets are the largest; per program
        // they are never smaller than the CIS sets.
        for r in &rows {
            assert!(
                r.value(ModelKind::CollapseAlways) >= r.value(ModelKind::CommonInitialSeq) - 1e-9,
                "{}: CA {} < CIS {}",
                r.name,
                r.value(ModelKind::CollapseAlways),
                r.value(ModelKind::CommonInitialSeq)
            );
        }
        let ca_sum: f64 = rows.iter().map(|r| r.value(ModelKind::CollapseAlways)).sum();
        let off_sum: f64 = rows.iter().map(|r| r.value(ModelKind::Offsets)).sum();
        assert!(ca_sum > off_sum);
    }

    #[test]
    fn fig6_normalization() {
        let rows = run_fig6(4);
        for r in &rows {
            let norm = r.normalized_to_offsets();
            assert!((norm[3] - 1.0).abs() < 1e-9, "{}: {:?}", r.name, norm);
        }
    }

    #[test]
    fn ablations_produce_rows() {
        let st = run_ablation_steensgaard();
        assert_eq!(st.len(), 12);
        // Unification is never more precise than inclusion at the same
        // (collapsed) granularity, in aggregate.
        let steens_sum: f64 = st.iter().map(|r| r.steensgaard).sum();
        let cis_sum: f64 = st.iter().map(|r| r.cis).sum();
        assert!(steens_sum >= cis_sum);

        let lay = run_ablation_layout(3);
        assert_eq!(lay.len(), 12);
        assert!(lay.iter().all(|r| r.edges.iter().all(|&e| e > 0)));
    }

    #[test]
    fn parallel_runners_match_sequential_runners() {
        // threads=1 takes the sequential path; higher counts must not
        // change a single figure value.
        let seq = run_fig4(1);
        let par = run_fig4(4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.values, b.values, "{}", a.name);
        }
    }

    #[test]
    fn scaling_small_runs() {
        let rows = run_scaling(false, 4);
        assert!(rows.len() >= 6);
        for r in &rows {
            assert!(r.lines > 0 && r.assignments > 0);
            assert!(r.edges.iter().all(|&e| e > 0), "{r:?}");
            assert_eq!(r.threads, 4);
            assert!(r.seq4_s > 0.0 && r.par4_s > 0.0, "{r:?}");
            assert!(r.speedup() > 0.0);
        }
    }
}
