//! `scast` — analyze a C file and print points-to information.
//!
//! ```text
//! scast <file.c> [--model collapse|cast|cis|offsets] [--layout ilp32|lp64|packed32]
//!       [--var NAME]... [--demand NAME]... [--threads N] [--deadline-ms N] [--max-edges N]
//!       [--deref-stats] [--dump-ir] [--dump-constraints] [--steensgaard] [--json]
//! scast --corpus            # list the embedded benchmark corpus
//! scast serve [--addr HOST:PORT] [--threads N] [--max-cache-mb N]
//!             [--snapshot DIR] [--snapshot-every-s N] [--no-wal] [--brownout N]
//! scast fleet --replicas N [--addr HOST:PORT] [--snapshot DIR] [--threads N] [--no-wal]
//! scast query --addr HOST:PORT [--timeout-ms N] [--binary]
//!             [--max-retries N] [--backoff-seed N] <request-json>... | -
//! scast update --addr HOST:PORT --program NAME [--max-retries N] <file.c> | -
//! ```
//!
//! `--demand NAME` answers the named pointer's points-to query in demand
//! mode: the constraint graph is sliced to what the query can see and only
//! the slice is solved — same answer as the exhaustive fixpoint, printed
//! with the slice/total statement counts.
//!
//! `scast update` pushes an edited source file to a running server as a
//! live-editing delta against the cached session `--program`: the server
//! diffs it function-by-function against the loaded text, reuses every
//! unchanged constraint, and re-solves only what the edit can reach.
//!
//! `scast serve --snapshot DIR` persists the session cache to `DIR` on
//! shutdown (and on `{"op":"snapshot"}` requests), and restarts warm
//! from it: previously-answered queries come back with zero compile or
//! solve misses. `scast fleet --replicas N` runs N serve processes behind
//! a consistent-hash router that detects dead replicas and restarts them
//! from their snapshots. `scast query --binary` speaks the length-prefixed
//! binary codec instead of NDJSON (same requests, same replies).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;
use structcast::steensgaard::steensgaard;
use structcast::{
    try_analyze, AnalysisConfig, AnalysisResult, Budget, Layout, ModelKind, Program,
};
use structcast_server::json::Json;
use structcast_server::{serve, BinaryClient, Client, FleetConfig, RetryOpts, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: scast <file.c> [--model collapse|cast|cis|offsets] \
         [--layout ilp32|lp64|packed32] [--var NAME]... [--demand NAME]... \
         [--threads N] [--deadline-ms N] [--max-edges N] \
         [--deref-stats] [--dump-ir] [--dump-constraints] [--steensgaard] \
         [--stride] [--flag-unknown] [--dot] [--modref] [--json]\
         \n       scast --corpus\
         \n       scast serve [--addr HOST:PORT] [--threads N] [--max-cache-mb N] \
         [--snapshot DIR] [--snapshot-every-s N] [--no-wal] [--brownout N]\
         \n       scast fleet --replicas N [--addr HOST:PORT] [--snapshot DIR] [--threads N] \
         [--no-wal]\
         \n       scast query --addr HOST:PORT [--timeout-ms N] [--binary] \
         [--max-retries N] [--backoff-seed N] <request-json>... | -\
         \n       scast update --addr HOST:PORT --program NAME [--timeout-ms N] \
         [--max-retries N] [--backoff-seed N] <file.c> | -"
    );
    std::process::exit(2);
}

fn parse_model(s: &str) -> ModelKind {
    match s {
        "collapse" | "collapse-always" => ModelKind::CollapseAlways,
        "cast" | "collapse-on-cast" => ModelKind::CollapseOnCast,
        "cis" | "common-initial-seq" => ModelKind::CommonInitialSeq,
        "offsets" => ModelKind::Offsets,
        other => {
            eprintln!("unknown model `{other}`");
            usage()
        }
    }
}

fn parse_layout(s: &str) -> Layout {
    match s {
        "ilp32" => Layout::ilp32(),
        "lp64" => Layout::lp64(),
        "packed32" => Layout::packed32(),
        other => {
            eprintln!("unknown layout `{other}`");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let outcome = match args[0].as_str() {
        "serve" => cmd_serve(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "update" => cmd_update(&args[1..]),
        _ => run(args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scast: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `scast serve`: run the analysis-query service in the foreground until a
/// client sends `{"op": "shutdown"}`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    // Byte-granular override for scripts and tests; the flag below wins.
    if let Ok(bytes) = std::env::var("SCAST_MAX_CACHE_BYTES") {
        cfg.max_cache_bytes = bytes
            .parse()
            .map_err(|_| format!("serve: bad SCAST_MAX_CACHE_BYTES `{bytes}`"))?;
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--threads" => {
                let n = it.next().unwrap_or_else(|| usage());
                cfg.threads = n.parse().map_err(|_| format!("serve: bad --threads `{n}`"))?;
            }
            "--max-cache-mb" => {
                let n = it.next().unwrap_or_else(|| usage());
                let mb: usize =
                    n.parse().map_err(|_| format!("serve: bad --max-cache-mb `{n}`"))?;
                // 0 = unbounded, matching the cache's convention.
                cfg.max_cache_bytes = mb.saturating_mul(1024 * 1024);
            }
            "--snapshot" => {
                cfg.snapshot_dir =
                    Some(it.next().cloned().unwrap_or_else(|| usage()).into());
            }
            "--snapshot-every-s" => {
                let n = it.next().unwrap_or_else(|| usage());
                let secs: u64 =
                    n.parse().map_err(|_| format!("serve: bad --snapshot-every-s `{n}`"))?;
                cfg.snapshot_every = Some(Duration::from_secs(secs));
            }
            "--no-wal" => cfg.wal = false,
            "--brownout" => {
                let n = it.next().unwrap_or_else(|| usage());
                cfg.brownout_high_water =
                    Some(n.parse().map_err(|_| format!("serve: bad --brownout `{n}`"))?);
            }
            _ => usage(),
        }
    }
    let handle = serve(&cfg).map_err(|e| format!("serve: cannot bind {}: {e}", cfg.addr))?;
    println!("listening on {}", handle.addr());
    // Scripts scrape that line from a pipe, so force it out now.
    let _ = std::io::stdout().flush();
    handle.wait(); // the accept thread prints the final summary line
    Ok(())
}

/// `scast fleet`: N serve processes (spawned from this same binary, each
/// with its own snapshot directory) behind a consistent-hash router.
fn cmd_fleet(args: &[String]) -> Result<(), String> {
    let mut cfg = FleetConfig::default();
    let mut threads: Option<usize> = None;
    let mut no_wal = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--replicas" => {
                let n = it.next().unwrap_or_else(|| usage());
                cfg.replicas =
                    n.parse().map_err(|_| format!("fleet: bad --replicas `{n}`"))?;
            }
            "--snapshot" => {
                cfg.snapshot_root =
                    Some(it.next().cloned().unwrap_or_else(|| usage()).into());
            }
            "--threads" => {
                let n = it.next().unwrap_or_else(|| usage());
                threads =
                    Some(n.parse().map_err(|_| format!("fleet: bad --threads `{n}`"))?);
            }
            "--no-wal" => no_wal = true,
            _ => usage(),
        }
    }
    // Replicas are this very binary, re-entered as `scast serve`.
    cfg.program = std::env::current_exe()
        .map_err(|e| format!("fleet: cannot locate my own binary: {e}"))?;
    cfg.args = vec!["serve".to_string()];
    if let Some(n) = threads {
        cfg.args.push("--threads".to_string());
        cfg.args.push(n.to_string());
    }
    if no_wal {
        cfg.args.push("--no-wal".to_string());
    }
    let handle =
        structcast_server::fleet(&cfg).map_err(|e| format!("fleet: cannot start: {e}"))?;
    println!("listening on {}", handle.addr());
    for (i, addr) in handle.replica_addrs().iter().enumerate() {
        match addr {
            Some(a) => println!("replica {i} on {a}"),
            None => println!("replica {i} down"),
        }
    }
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok(())
}

/// `scast query`: send request lines to a running server and print the
/// response lines. Requests come from the argument list, or from stdin
/// (one per line) when the single argument `-` is given.
fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut timeout_ms: u64 = 5000;
    let mut binary = false;
    let mut retry = RetryOpts { max_retries: 0, ..RetryOpts::default() };
    let mut reqs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--timeout-ms" => {
                let n = it.next().unwrap_or_else(|| usage());
                timeout_ms =
                    n.parse().map_err(|_| format!("query: bad --timeout-ms `{n}`"))?;
            }
            "--binary" => binary = true,
            "--max-retries" => {
                let n = it.next().unwrap_or_else(|| usage());
                retry.max_retries =
                    n.parse().map_err(|_| format!("query: bad --max-retries `{n}`"))?;
            }
            "--backoff-seed" => {
                let n = it.next().unwrap_or_else(|| usage());
                retry.backoff_seed =
                    n.parse().map_err(|_| format!("query: bad --backoff-seed `{n}`"))?;
            }
            other => reqs.push(other.to_string()),
        }
    }
    let addr = addr.ok_or("query: --addr HOST:PORT is required")?;
    if reqs.is_empty() {
        return Err("query: no requests given (pass JSON objects, or `-` for stdin)".into());
    }
    if reqs == ["-"] {
        reqs = std::io::read_to_string(std::io::stdin())
            .map_err(|e| format!("query: cannot read stdin: {e}"))?
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
    }
    if binary {
        // Binary codec: same requests and replies, framed instead of
        // line-delimited. Replies are printed as JSON lines, so the two
        // codecs are diffable with the shell.
        let mut client = if timeout_ms == 0 {
            BinaryClient::connect(&addr)
        } else {
            BinaryClient::connect_timeout(&addr, Duration::from_millis(timeout_ms))
        }
        .map_err(|e| format!("query: cannot connect to {addr}: {e}"))?;
        for req in &reqs {
            let parsed = Json::parse(req).map_err(|e| format!("query: bad request: {e}"))?;
            let resp = client
                .request_with_retry(&parsed, &retry)
                .map_err(|e| format!("query: {addr}: {e}"))?;
            println!("{resp}");
        }
        return Ok(());
    }
    // --timeout-ms 0 opts back into blocking forever (e.g. a query that is
    // expected to solve a huge program on a cold cache).
    let mut client = if timeout_ms == 0 {
        Client::connect(&addr)
    } else {
        Client::connect_timeout(&addr, Duration::from_millis(timeout_ms))
    }
    .map_err(|e| format!("query: cannot connect to {addr}: {e}"))?;
    for req in &reqs {
        // Without a retry budget, stay on the raw byte-preserving path;
        // with one, requests must be parsed so retries can re-send them.
        if retry.max_retries == 0 {
            let resp = client
                .request_line(req)
                .map_err(|e| format!("query: {addr}: {e}"))?;
            println!("{resp}");
        } else {
            let parsed = Json::parse(req).map_err(|e| format!("query: bad request: {e}"))?;
            let resp = client
                .request_with_retry(&parsed, &retry)
                .map_err(|e| format!("query: {addr}: {e}"))?;
            println!("{resp}");
        }
    }
    Ok(())
}

/// `scast update`: send an edited source file to a running server as a
/// live-editing delta against the cached session `--program`, and print
/// the server's reuse/retraction report line. The file may be `-` to read
/// the edited text from stdin (editor-integration shape).
fn cmd_update(args: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut program = None;
    let mut timeout_ms: u64 = 5000;
    let mut retry = RetryOpts { max_retries: 0, ..RetryOpts::default() };
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--program" => program = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--timeout-ms" => {
                let n = it.next().unwrap_or_else(|| usage());
                timeout_ms =
                    n.parse().map_err(|_| format!("update: bad --timeout-ms `{n}`"))?;
            }
            "--max-retries" => {
                let n = it.next().unwrap_or_else(|| usage());
                retry.max_retries =
                    n.parse().map_err(|_| format!("update: bad --max-retries `{n}`"))?;
            }
            "--backoff-seed" => {
                let n = it.next().unwrap_or_else(|| usage());
                retry.backoff_seed =
                    n.parse().map_err(|_| format!("update: bad --backoff-seed `{n}`"))?;
            }
            other if !other.starts_with("--") && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let addr = addr.ok_or("update: --addr HOST:PORT is required")?;
    let program = program.ok_or("update: --program NAME is required")?;
    let file = file.ok_or("update: no source file given (pass a path, or `-` for stdin)")?;
    let source = if file == "-" {
        std::io::read_to_string(std::io::stdin())
            .map_err(|e| format!("update: cannot read stdin: {e}"))?
    } else {
        std::fs::read_to_string(&file).map_err(|e| format!("update: cannot read {file}: {e}"))?
    };
    let mut client = if timeout_ms == 0 {
        Client::connect(&addr)
    } else {
        Client::connect_timeout(&addr, Duration::from_millis(timeout_ms))
    }
    .map_err(|e| format!("update: cannot connect to {addr}: {e}"))?;
    let req = Json::obj([
        ("op", Json::str("update")),
        ("program", Json::str(&program)),
        ("source", Json::str(&source)),
    ]);
    let resp = client
        .request_with_retry(&req, &retry)
        .map_err(|e| format!("update: {addr}: {e}"))?;
    println!("{resp}");
    Ok(())
}

/// Renders one analysis as a machine-readable JSON object: the full
/// points-to edge list plus per-dereference-site points-to sizes. Shares
/// the server's emitter so the output grammar is identical.
fn render_json(file: &str, model: ModelKind, prog: &Program, res: &AnalysisResult) -> Json {
    let edges = res
        .edge_displays(prog)
        .into_iter()
        .map(|(from, to)| Json::Arr(vec![Json::Str(from), Json::Str(to)]))
        .collect();
    let derefs = res
        .deref_site_sizes(prog)
        .into_iter()
        .map(|(sid, size)| {
            Json::obj([
                ("stmt", Json::str(prog.display_stmt(&prog.stmts[sid.0 as usize]))),
                ("size", Json::count(size as u64)),
            ])
        })
        .collect();
    Json::obj([
        ("file", Json::str(file)),
        ("model", Json::str(model.paper_name())),
        ("edge_count", Json::count(res.edge_count() as u64)),
        ("iterations", Json::count(res.iterations)),
        ("avg_deref_size", Json::num(res.average_deref_size(prog))),
        ("edges", Json::Arr(edges)),
        ("deref_sites", Json::Arr(derefs)),
    ])
}

fn run(args: Vec<String>) -> Result<(), String> {
    if args[0] == "--corpus" {
        println!("{:<18} {:>6} {:>6}", "name", "lines", "casty");
        for p in structcast_progen::corpus() {
            println!("{:<18} {:>6} {:>6}", p.name, p.line_count(), p.casty);
        }
        return Ok(());
    }

    let mut file = None;
    let mut model = ModelKind::CommonInitialSeq;
    let mut layout = Layout::ilp32();
    let mut vars: Vec<String> = Vec::new();
    let mut demand: Vec<String> = Vec::new();
    let mut deref_stats = false;
    let mut dump_ir = false;
    let mut dump_constraints = false;
    let mut steens = false;
    let mut stride = false;
    let mut threads = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_edges: Option<usize> = None;
    let mut flag_unknown = false;
    let mut dot = false;
    let mut modref = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => model = parse_model(&it.next().unwrap_or_else(|| usage())),
            "--layout" => layout = parse_layout(&it.next().unwrap_or_else(|| usage())),
            "--var" => vars.push(it.next().unwrap_or_else(|| usage())),
            "--demand" => demand.push(it.next().unwrap_or_else(|| usage())),
            "--deref-stats" => deref_stats = true,
            "--dump-ir" => dump_ir = true,
            "--dump-constraints" => dump_constraints = true,
            "--steensgaard" => steens = true,
            "--stride" => stride = true,
            "--threads" => {
                let n = it.next().unwrap_or_else(|| usage());
                threads =
                    Some(n.parse::<usize>().map_err(|_| format!("bad --threads `{n}`"))?);
            }
            "--deadline-ms" => {
                let n = it.next().unwrap_or_else(|| usage());
                deadline_ms =
                    Some(n.parse::<u64>().map_err(|_| format!("bad --deadline-ms `{n}`"))?);
            }
            "--max-edges" => {
                let n = it.next().unwrap_or_else(|| usage());
                max_edges =
                    Some(n.parse::<usize>().map_err(|_| format!("bad --max-edges `{n}`"))?);
            }
            "--flag-unknown" => flag_unknown = true,
            "--dot" => dot = true,
            "--modref" => modref = true,
            "--json" => json = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    // The corpus can be referenced by name instead of a path.
    let source = match structcast_progen::corpus_program(&file) {
        Some(p) => p.source.to_string(),
        None => match std::fs::read_to_string(&file) {
            Ok(raw) => {
                // Preprocess real files: object-like #define, #ifdef, and
                // quoted includes resolved next to the input file.
                let base = std::path::Path::new(&file)
                    .parent()
                    .map(|p| p.to_path_buf())
                    .unwrap_or_default();
                structcast::parse_support::preprocess(&raw, &|name: &str| {
                    std::fs::read_to_string(base.join(name)).ok()
                })
            }
            Err(e) => return Err(format!("cannot read {file}: {e}")),
        },
    };

    let prog = structcast::lower_source(&source).map_err(|e| format!("{file}: {e}"))?;
    for w in &prog.warnings {
        eprintln!("scast: warning: {w}");
    }
    if dump_ir {
        print!("{}", prog.dump());
        return Ok(());
    }
    if dump_constraints {
        // Stage-1 output only: the model-independent constraint form,
        // printed in deterministic statement order. No solving happens.
        let session = structcast::AnalysisSession::compile(&prog);
        print!("{}", session.constraints().dump(&prog));
        return Ok(());
    }

    if steens {
        let res = steensgaard(&prog);
        println!(
            "steensgaard: classes={} time={:?} indirect_calls={}",
            res.class_count(),
            res.elapsed,
            res.resolved_indirect_calls
        );
        for v in &vars {
            println!("  {v} -> {{{}}}", res.points_to_names(&prog, v).join(", "));
        }
        return Ok(());
    }

    let mut cfg = AnalysisConfig::new(model).with_layout(layout).with_stride(stride);
    if let Some(n) = threads {
        // Explicit flag beats the SCAST_SOLVER_THREADS default.
        cfg = cfg.with_threads(n);
    }
    if flag_unknown {
        cfg = cfg.with_arith_mode(structcast::ArithMode::FlagUnknown);
    }
    if deadline_ms.is_some() || max_edges.is_some() {
        let mut budget = Budget::unlimited();
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline_in(Duration::from_millis(ms));
        }
        if let Some(max) = max_edges {
            budget = budget.with_max_edges(max);
        }
        cfg = cfg.with_budget(budget);
    }
    if !demand.is_empty() {
        // Demand mode: slice the constraint graph down to what each
        // queried pointer can see, and solve only the slice. The budget
        // and thread flags govern the sliced solve exactly as they would
        // the full one.
        let session = structcast::AnalysisSession::compile(&prog);
        for v in &demand {
            let query = structcast::DemandQuery::points_to_named(&prog, v)
                .ok_or_else(|| format!("{file}: unknown pointer `{v}`"))?;
            let d = session
                .try_solve_demand(&query, &cfg)
                .map_err(|e| format!("{file}: {e}"))?;
            println!(
                "demand ({}): {} -> {{{}}}",
                model.paper_name(),
                v,
                d.result.points_to_names(&prog, v).join(", ")
            );
            println!(
                "  slice={}/{} statements ({:.1}%) objects={} time={:?}",
                d.stats.slice_statements,
                d.stats.total_statements,
                100.0 * d.stats.ratio(),
                d.stats.relevant_objects,
                d.result.elapsed
            );
        }
        return Ok(());
    }

    let res = try_analyze(&prog, &cfg).map_err(|e| format!("{file}: {e}"))?;
    if json {
        println!("{}", render_json(&file, model, &prog, &res));
        return Ok(());
    }
    if dot {
        print!("{}", structcast::modref::to_dot(&prog, &res));
        return Ok(());
    }
    if modref {
        let mr = structcast::modref::mod_ref(&prog, &res, true);
        println!("MOD/REF per function ({}):", model.paper_name());
        for f in &prog.functions {
            if !f.defined {
                continue;
            }
            let sets = mr.of(f.id);
            let names = |set: &std::collections::BTreeSet<structcast::ObjId>| {
                set.iter()
                    .map(|o| prog.object(*o).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("  {:<20} MOD {{{}}}", f.name, names(&sets.mods));
            println!("  {:<20} REF {{{}}}", "", names(&sets.refs));
        }
        return Ok(());
    }
    if flag_unknown {
        let sites = res.unknown_deref_sites(&prog);
        println!(
            "possibly-corrupted pointers: {} locations; {} suspicious dereference sites",
            res.unknown.len(),
            sites.len()
        );
        for sid in sites.iter().take(10) {
            println!("  suspicious deref: {}", prog.display_stmt(&prog.stmts[sid.0 as usize]));
        }
    }
    println!(
        "{}: edges={} iterations={} time={:?}",
        model.paper_name(),
        res.edge_count(),
        res.iterations,
        res.elapsed
    );
    if deref_stats {
        println!(
            "deref sites={} avg points-to size={:.3}",
            prog.deref_sites().len(),
            res.average_deref_size(&prog)
        );
    }
    if vars.is_empty() {
        // Print points-to sets of all named pointers with nonempty sets.
        for obj in prog.objects.iter() {
            if !obj.kind.is_named_variable() {
                continue;
            }
            let names = res.points_to_names(&prog, &obj.name);
            if !names.is_empty() {
                println!("  {} -> {{{}}}", obj.name, names.join(", "));
            }
        }
    } else {
        for v in &vars {
            println!("  {v} -> {{{}}}", res.points_to_names(&prog, v).join(", "));
        }
    }
    Ok(())
}
