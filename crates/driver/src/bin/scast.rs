//! `scast` — analyze a C file and print points-to information.
//!
//! ```text
//! scast <file.c> [--model collapse|cast|cis|offsets] [--layout ilp32|lp64|packed32]
//!       [--var NAME]... [--deref-stats] [--dump-ir] [--dump-constraints] [--steensgaard]
//! scast --corpus            # list the embedded benchmark corpus
//! ```

use std::process::ExitCode;
use structcast::steensgaard::steensgaard;
use structcast::{analyze, AnalysisConfig, Layout, ModelKind};

fn usage() -> ! {
    eprintln!(
        "usage: scast <file.c> [--model collapse|cast|cis|offsets] \
         [--layout ilp32|lp64|packed32] [--var NAME]... [--deref-stats] \
         [--dump-ir] [--dump-constraints] [--steensgaard] [--stride] \
         [--flag-unknown] [--dot] [--modref]\n       scast --corpus"
    );
    std::process::exit(2);
}

fn parse_model(s: &str) -> ModelKind {
    match s {
        "collapse" | "collapse-always" => ModelKind::CollapseAlways,
        "cast" | "collapse-on-cast" => ModelKind::CollapseOnCast,
        "cis" | "common-initial-seq" => ModelKind::CommonInitialSeq,
        "offsets" => ModelKind::Offsets,
        other => {
            eprintln!("unknown model `{other}`");
            usage()
        }
    }
}

fn parse_layout(s: &str) -> Layout {
    match s {
        "ilp32" => Layout::ilp32(),
        "lp64" => Layout::lp64(),
        "packed32" => Layout::packed32(),
        other => {
            eprintln!("unknown layout `{other}`");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--corpus" {
        println!("{:<18} {:>6} {:>6}", "name", "lines", "casty");
        for p in structcast_progen::corpus() {
            println!("{:<18} {:>6} {:>6}", p.name, p.line_count(), p.casty);
        }
        return ExitCode::SUCCESS;
    }

    let mut file = None;
    let mut model = ModelKind::CommonInitialSeq;
    let mut layout = Layout::ilp32();
    let mut vars: Vec<String> = Vec::new();
    let mut deref_stats = false;
    let mut dump_ir = false;
    let mut dump_constraints = false;
    let mut steens = false;
    let mut stride = false;
    let mut flag_unknown = false;
    let mut dot = false;
    let mut modref = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => model = parse_model(&it.next().unwrap_or_else(|| usage())),
            "--layout" => layout = parse_layout(&it.next().unwrap_or_else(|| usage())),
            "--var" => vars.push(it.next().unwrap_or_else(|| usage())),
            "--deref-stats" => deref_stats = true,
            "--dump-ir" => dump_ir = true,
            "--dump-constraints" => dump_constraints = true,
            "--steensgaard" => steens = true,
            "--stride" => stride = true,
            "--flag-unknown" => flag_unknown = true,
            "--dot" => dot = true,
            "--modref" => modref = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    // The corpus can be referenced by name instead of a path.
    let source = match structcast_progen::corpus_program(&file) {
        Some(p) => p.source.to_string(),
        None => match std::fs::read_to_string(&file) {
            Ok(raw) => {
                // Preprocess real files: object-like #define, #ifdef, and
                // quoted includes resolved next to the input file.
                let base = std::path::Path::new(&file)
                    .parent()
                    .map(|p| p.to_path_buf())
                    .unwrap_or_default();
                structcast::parse_support::preprocess(&raw, &|name: &str| {
                    std::fs::read_to_string(base.join(name)).ok()
                })
            }
            Err(e) => {
                eprintln!("scast: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let prog = match structcast::lower_source(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("scast: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &prog.warnings {
        eprintln!("scast: warning: {w}");
    }
    if dump_ir {
        print!("{}", prog.dump());
        return ExitCode::SUCCESS;
    }
    if dump_constraints {
        // Stage-1 output only: the model-independent constraint form,
        // printed in deterministic statement order. No solving happens.
        let session = structcast::AnalysisSession::compile(&prog);
        print!("{}", session.constraints().dump(&prog));
        return ExitCode::SUCCESS;
    }

    if steens {
        let res = steensgaard(&prog);
        println!(
            "steensgaard: classes={} time={:?} indirect_calls={}",
            res.class_count(),
            res.elapsed,
            res.resolved_indirect_calls
        );
        for v in &vars {
            println!("  {v} -> {{{}}}", res.points_to_names(&prog, v).join(", "));
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = AnalysisConfig::new(model).with_layout(layout).with_stride(stride);
    if flag_unknown {
        cfg = cfg.with_arith_mode(structcast::ArithMode::FlagUnknown);
    }
    let res = analyze(&prog, &cfg);
    if dot {
        print!("{}", structcast::modref::to_dot(&prog, &res));
        return ExitCode::SUCCESS;
    }
    if modref {
        let mr = structcast::modref::mod_ref(&prog, &res, true);
        println!("MOD/REF per function ({}):", model.paper_name());
        for f in &prog.functions {
            if !f.defined {
                continue;
            }
            let sets = mr.of(f.id);
            let names = |set: &std::collections::BTreeSet<structcast::ObjId>| {
                set.iter()
                    .map(|o| prog.object(*o).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("  {:<20} MOD {{{}}}", f.name, names(&sets.mods));
            println!("  {:<20} REF {{{}}}", "", names(&sets.refs));
        }
        return ExitCode::SUCCESS;
    }
    if flag_unknown {
        let sites = res.unknown_deref_sites(&prog);
        println!(
            "possibly-corrupted pointers: {} locations; {} suspicious dereference sites",
            res.unknown.len(),
            sites.len()
        );
        for sid in sites.iter().take(10) {
            println!("  suspicious deref: {}", prog.display_stmt(&prog.stmts[sid.0 as usize]));
        }
    }
    println!(
        "{}: edges={} iterations={} time={:?}",
        model.paper_name(),
        res.edge_count(),
        res.iterations,
        res.elapsed
    );
    if deref_stats {
        println!(
            "deref sites={} avg points-to size={:.3}",
            prog.deref_sites().len(),
            res.average_deref_size(&prog)
        );
    }
    if vars.is_empty() {
        // Print points-to sets of all named pointers with nonempty sets.
        for (i, obj) in prog.objects.iter().enumerate() {
            if !obj.kind.is_named_variable() {
                continue;
            }
            let id = structcast::ObjId(i as u32);
            let names = res.points_to_names(&prog, &obj.name);
            if !names.is_empty() {
                println!("  {} -> {{{}}}", obj.name, names.join(", "));
                let _ = id;
            }
        }
    } else {
        for v in &vars {
            println!("  {v} -> {{{}}}", res.points_to_names(&prog, v).join(", "));
        }
    }
    ExitCode::SUCCESS
}
