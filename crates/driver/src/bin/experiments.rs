//! `scast-experiments` — regenerate the paper's evaluation tables/figures.
//!
//! ```text
//! scast-experiments fig3|fig4|fig5|fig6|ablation-steens|ablation-layout|ablation-stride|modref|scaling|all
//!                   [--repeats N] [--large] [--threads N]
//! ```
//!
//! `--threads` sets how many workers the multi-model runners fan out over
//! (default: `SCAST_SOLVER_THREADS`, else 4). Results are identical at any
//! count; only wall-clock changes.

use std::process::ExitCode;
use structcast_driver::{experiments as ex, report};

fn usage() -> ! {
    eprintln!(
        "usage: scast-experiments <fig3|fig4|fig5|fig6|ablation-steens|\
         ablation-layout|ablation-stride|modref|scaling|all> [--repeats N] \
         [--large] [--threads N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut repeats = 3usize;
    let mut large = false;
    // Multi-model fan-out width; the env default keeps CI matrices simple.
    let mut threads = match structcast::env_solver_threads() {
        1 => 4,
        n => n,
    };
    let mut cmd = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--large" => large = true,
            c if cmd.is_none() => cmd = Some(c.to_string()),
            _ => usage(),
        }
    }
    let cmd = cmd.unwrap_or_else(|| usage());

    let fig3 = || println!("{}", report::render_fig3(&ex::run_fig3(threads)));
    let fig4 = || println!("{}", report::render_fig4(&ex::run_fig4(threads)));
    let fig5 = |r: usize| println!("{}", report::render_fig5(&ex::run_fig5(r)));
    let fig6 = || println!("{}", report::render_fig6(&ex::run_fig6(threads)));
    let abl_s = || println!("{}", report::render_steensgaard(&ex::run_ablation_steensgaard()));
    let abl_l = || println!("{}", report::render_layout(&ex::run_ablation_layout(threads)));
    let abl_c = || println!("{}", report::render_stride(&ex::run_ablation_stride(threads)));
    let modref = || println!("{}", report::render_modref(&ex::run_modref(threads)));
    let scaling = |l: bool| println!("{}", report::render_scaling(&ex::run_scaling(l, threads)));

    match cmd.as_str() {
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(repeats),
        "fig6" => fig6(),
        "ablation-steens" => abl_s(),
        "ablation-layout" => abl_l(),
        "ablation-stride" => abl_c(),
        "modref" => modref(),
        "scaling" => scaling(large),
        "all" => {
            fig3();
            fig4();
            fig5(repeats);
            fig6();
            abl_s();
            abl_l();
            abl_c();
            modref();
            scaling(large);
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}
