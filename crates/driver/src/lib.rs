//! # structcast-driver
//!
//! The experiment harness and CLI for the structcast reproduction of
//! Yong/Horwitz/Reps (PLDI 1999).
//!
//! * [`experiments`] — one `run_*` function per paper figure (3–6) plus the
//!   ablations and scaling sweeps from DESIGN.md;
//! * [`report`] — plain-text table renderers;
//! * binaries: `scast` (analyze a C file, print points-to sets) and
//!   `scast-experiments` (regenerate any or all figures).
//!
//! ```
//! use structcast_driver::experiments::run_fig4;
//! use structcast_driver::report::render_fig4;
//!
//! let rows = run_fig4(4); // solve the four models 4-wide per program
//! assert_eq!(rows.len(), 12); // the 12 cast-heavy corpus programs
//! let table = render_fig4(&rows);
//! assert!(table.contains("Figure 4"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
