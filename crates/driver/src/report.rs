//! Plain-text rendering of the experiment tables, matching the shape of
//! the paper's Figures 3–6 (tables/series, one row per program).

use crate::experiments::{Fig3Row, LayoutRow, ModelRow, ScalingRow, SteensRow};
use std::fmt::Write as _;
use structcast::ModelKind;

const MODEL_SHORT: [&str; 4] = ["CollapseAlw", "CollapseCast", "CommonInit", "Offsets"];

/// Renders Figure 3 (program stats and struct/cast call percentages).
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 3: test programs and lookup/resolve call classification"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>6} {:>7} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6}",
        "program", "lines", "asgn", "CoC-l%", "CoC-r%", "CoC-lm", "CoC-rm", "CIS-l%", "CIS-r%",
        "CIS-lm", "CIS-rm"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>6} {:>7} | {:>27} | {:>27}",
        "", "", "", "struct%  (mismatch% of those)", "struct%  (mismatch% of those)"
    );
    let mut last_casty = false;
    for r in rows {
        if r.casty && !last_casty {
            let _ = writeln!(s, "{}", "-".repeat(96));
        }
        last_casty = r.casty;
        let _ = writeln!(
            s,
            "{:<16} {:>6} {:>7} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            r.name,
            r.lines,
            r.assignments,
            r.coc_lookup_struct_pct,
            r.coc_resolve_struct_pct,
            r.coc_lookup_mismatch_pct,
            r.coc_resolve_mismatch_pct,
            r.cis_lookup_struct_pct,
            r.cis_resolve_struct_pct,
            r.cis_lookup_mismatch_pct,
            r.cis_resolve_mismatch_pct,
        );
    }
    s
}

/// Renders Figure 4 (average points-to set sizes, absolute values).
pub fn render_fig4(rows: &[ModelRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 4: average points-to set size of a dereferenced pointer"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "program", MODEL_SHORT[0], MODEL_SHORT[1], MODEL_SHORT[2], MODEL_SHORT[3]
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r.name, r.values[0], r.values[1], r.values[2], r.values[3]
        );
    }
    append_ratio_summary(&mut s, rows);
    s
}

/// Renders Figure 5 (analysis times, normalized to Offsets; absolute
/// Offsets seconds shown like the paper shows them under the bars).
pub fn render_fig5(rows: &[ModelRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5: analysis-time ratios (normalized to Offsets)");
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "program", MODEL_SHORT[0], MODEL_SHORT[1], MODEL_SHORT[2], MODEL_SHORT[3], "offsets(s)"
    );
    for r in rows {
        let n = r.normalized_to_offsets();
        let _ = writeln!(
            s,
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.6}",
            r.name,
            n[0],
            n[1],
            n[2],
            n[3],
            r.value(ModelKind::Offsets)
        );
    }
    s
}

/// Renders Figure 6 (points-to edge counts, normalized to Offsets).
pub fn render_fig6(rows: &[ModelRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 6: points-to edge counts (normalized to Offsets; absolute in parens)"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>16}",
        "program", MODEL_SHORT[0], MODEL_SHORT[1], MODEL_SHORT[2], MODEL_SHORT[3]
    );
    for r in rows {
        let n = r.normalized_to_offsets();
        let _ = writeln!(
            s,
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>7.2} ({:>6})",
            r.name,
            n[0],
            n[1],
            n[2],
            n[3],
            r.value(ModelKind::Offsets) as usize
        );
    }
    s
}

fn append_ratio_summary(s: &mut String, rows: &[ModelRow]) {
    // Headline ratios used in §5's prose.
    let sums: Vec<f64> = (0..4)
        .map(|i| rows.iter().map(|r| r.values[i]).sum::<f64>())
        .collect();
    let off = sums[3].max(1e-12);
    let _ = writeln!(
        s,
        "aggregate vs Offsets: CollapseAlways ×{:.2}, CollapseOnCast ×{:.2}, CIS ×{:.2}",
        sums[0] / off,
        sums[1] / off,
        sums[2] / off
    );
}

/// Renders Ablation A (inclusion vs unification).
pub fn render_steensgaard(rows: &[SteensRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation A: inclusion (this paper) vs Steensgaard-style unification"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "program", "CollapseAlw", "CIS", "Steensgaard", "steens(s)", "cis(s)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>12.6} {:>12.6}",
            r.name, r.collapse_always, r.cis, r.steensgaard, r.steens_time, r.cis_time
        );
    }
    s
}

/// Renders Ablation B (layout sensitivity of the Offsets instance).
pub fn render_layout(rows: &[LayoutRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation B: Offsets instance under different layout strategies"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "program", "ilp32", "lp64", "packed32", "e32", "e64", "epak"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>10.2} {:>10.2} {:>10.2} | {:>8} {:>8} {:>8}",
            r.name,
            r.avg_sizes[0],
            r.avg_sizes[1],
            r.avg_sizes[2],
            r.edges[0],
            r.edges[1],
            r.edges[2]
        );
    }
    s
}

/// Renders Ablation C (pointer-arithmetic stride refinement + Unknown
/// flagging).
pub fn render_stride(rows: &[crate::experiments::StrideRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation C: Wilson–Lam stride for pointer arithmetic (avg deref size)"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "program", "Off", "Off+str", "CIS", "CIS+str", "unknowns"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            r.name, r.off_plain, r.off_stride, r.cis_plain, r.cis_stride, r.unknown_sites
        );
    }
    s
}

/// Renders Experiment D (downstream MOD/REF impact).
pub fn render_modref(rows: &[crate::experiments::ModRefRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Experiment D: average MOD-set size per function (side-effect client)"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "program", MODEL_SHORT[0], MODEL_SHORT[1], MODEL_SHORT[2], MODEL_SHORT[3]
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r.name, r.avg_mod[0], r.avg_mod[1], r.avg_mod[2], r.avg_mod[3]
        );
    }
    s
}

/// Renders the scaling sweep.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Scaling: generated programs (size × cast ratio)");
    let _ = writeln!(
        s,
        "{:<14} {:>7} {:>7} | {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>6}",
        "preset", "lines", "asgn", "compile", "tCA(s)", "tCoC(s)", "tCIS(s)", "tOff(s)", "eCA",
        "eCoC", "eCIS", "eOff", "iCA", "iCoC", "iCIS", "iOff", "seq4(s)", "par4(s)", "spd"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>7} {:>7} | {:>9.4} | {:>9.4} {:>9.4} {:>9.4} {:>9.4} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>9.4} {:>9.4} {:>5.2}x",
            r.preset,
            r.lines,
            r.assignments,
            r.compile_s,
            r.times[0],
            r.times[1],
            r.times[2],
            r.times[3],
            r.edges[0],
            r.edges[1],
            r.edges[2],
            r.edges[3],
            r.iterations[0],
            r.iterations[1],
            r.iterations[2],
            r.iterations[3],
            r.seq4_s,
            r.par4_s,
            r.speedup()
        );
    }
    if let Some(t) = rows.first().map(|r| r.threads) {
        let _ = writeln!(s, "multi-model fan-out: {t} threads (seq4 = four solves back-to-back)");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_model_rows() -> Vec<ModelRow> {
        vec![
            ModelRow {
                name: "prog-a".into(),
                values: [8.0, 4.0, 2.0, 2.0],
            },
            ModelRow {
                name: "prog-b".into(),
                values: [3.0, 1.5, 1.0, 1.0],
            },
        ]
    }

    #[test]
    fn fig4_rendering_contains_rows_and_summary() {
        let out = render_fig4(&fake_model_rows());
        assert!(out.contains("prog-a"));
        assert!(out.contains("aggregate vs Offsets"));
        assert!(out.contains("×3.67") || out.contains("x3.67") || out.contains("3.67"));
    }

    #[test]
    fn fig5_normalizes_to_one() {
        let out = render_fig5(&fake_model_rows());
        // The Offsets column is the normalization base.
        assert!(out.contains("1.00"));
    }

    #[test]
    fn fig6_shows_absolute_in_parens() {
        let out = render_fig6(&fake_model_rows());
        assert!(out.contains("("));
    }

    #[test]
    fn stride_rendering() {
        let rows = vec![crate::experiments::StrideRow {
            name: "prog-a".into(),
            off_plain: 2.0,
            off_stride: 1.5,
            cis_plain: 2.5,
            cis_stride: 2.0,
            unknown_sites: 4,
        }];
        let out = render_stride(&rows);
        assert!(out.contains("Ablation C"));
        assert!(out.contains("prog-a"));
        assert!(out.contains("1.50"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn modref_rendering() {
        let rows = vec![crate::experiments::ModRefRow {
            name: "prog-b".into(),
            avg_mod: [5.0, 3.0, 2.5, 2.5],
        }];
        let out = render_modref(&rows);
        assert!(out.contains("Experiment D"));
        assert!(out.contains("prog-b"));
        assert!(out.contains("5.00"));
    }

    #[test]
    fn steensgaard_and_layout_rendering() {
        let out = render_steensgaard(&[crate::experiments::SteensRow {
            name: "p".into(),
            collapse_always: 2.0,
            cis: 1.0,
            steensgaard: 3.0,
            steens_time: 1e-5,
            cis_time: 2e-4,
        }]);
        assert!(out.contains("unification"));
        let out = render_layout(&[crate::experiments::LayoutRow {
            name: "p".into(),
            avg_sizes: [1.0, 1.1, 1.0],
            edges: [10, 11, 10],
        }]);
        assert!(out.contains("layout strategies"));
        assert!(out.contains("1.10"));
    }
}
