//! End-to-end CLI tests: run the built `scast` / `scast-experiments`
//! binaries the way a user would and check their output.

use std::process::Command;

fn scast(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(args)
        .output()
        .expect("scast runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn corpus_listing() {
    let (stdout, _, ok) = scast(&["--corpus"]);
    assert!(ok);
    assert!(stdout.contains("tagged-union"));
    assert!(stdout.contains("list-utils"));
    assert_eq!(stdout.lines().count(), 21); // header + 20 programs
}

#[test]
fn analyze_corpus_program_by_name() {
    let (stdout, _, ok) = scast(&["tagged-union", "--deref-stats"]);
    assert!(ok);
    assert!(stdout.contains("Common Initial Sequence"));
    assert!(stdout.contains("avg points-to size"));
}

#[test]
fn model_and_var_selection() {
    let (stdout, _, ok) = scast(&[
        "oop-shapes",
        "--model",
        "offsets",
        "--layout",
        "lp64",
        "--var",
        "shapes",
    ]);
    assert!(ok);
    assert!(stdout.contains("Offsets"));
    assert!(stdout.contains("shapes ->"));
}

#[test]
fn analyze_a_real_file() {
    let dir = std::env::temp_dir().join("scast_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.c");
    std::fs::write(
        &path,
        "int x, *p; void main(void) { p = &x; }",
    )
    .unwrap();
    let (stdout, _, ok) = scast(&[path.to_str().unwrap(), "--var", "p"]);
    assert!(ok);
    assert!(stdout.contains("p -> {x}"), "{stdout}");
}

#[test]
fn preprocessor_resolves_defines_and_includes() {
    let dir = std::env::temp_dir().join("scast_cli_pp");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("defs.h"),
        "#define CAP 4\nstruct Slot { int *owner; };\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.c"),
        "#include \"defs.h\"\nstruct Slot table[CAP];\nint who;\n\
         void main(void) { table[0].owner = &who; }\n",
    )
    .unwrap();
    let (stdout, _, ok) = scast(&[
        dir.join("main.c").to_str().unwrap(),
        "--var",
        "table",
    ]);
    assert!(ok);
    assert!(stdout.contains("table -> {who}"), "{stdout}");
}

#[test]
fn dump_ir_shows_normalized_forms() {
    let (stdout, _, ok) = scast(&["list-utils", "--dump-ir"]);
    assert!(ok);
    assert!(stdout.contains("objects"));
    assert!(stdout.contains("= &"));
}

#[test]
fn dump_constraints_prints_the_stage1_dump() {
    let (stdout, _, ok) = scast(&["list-utils", "--dump-constraints"]);
    assert!(ok);
    assert!(stdout.starts_with("# structcast-constraints v1\n"), "{stdout}");
    assert!(stdout.contains("addrof"), "{stdout}");
    // Deterministic: two runs print byte-identical dumps.
    let (again, _, ok2) = scast(&["list-utils", "--dump-constraints"]);
    assert!(ok2);
    assert_eq!(stdout, again);
    // Sorted: zero-padded indices make lexicographic == statement order.
    let ids: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with('c'))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}

#[test]
fn steensgaard_mode() {
    let (stdout, _, ok) = scast(&["bst", "--steensgaard", "--var", "g_tree"]);
    assert!(ok);
    assert!(stdout.contains("steensgaard: classes="));
}

#[test]
fn flag_unknown_mode_reports_suspicious_sites() {
    let (stdout, _, ok) = scast(&["allocator", "--flag-unknown"]);
    assert!(ok);
    assert!(stdout.contains("possibly-corrupted pointers"), "{stdout}");
}

#[test]
fn bad_file_fails_cleanly() {
    let (_, stderr, ok) = scast(&["definitely-not-a-file.c"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn bad_model_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(["bst", "--model", "telepathy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn experiments_fig4_shape() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast-experiments"))
        .args(["fig4"])
        .output()
        .expect("experiments runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 4"));
    assert!(stdout.contains("aggregate vs Offsets"));
    // 12 cast-heavy rows.
    assert!(stdout.lines().filter(|l| l.contains('.')).count() >= 12);
}

#[test]
fn experiments_usage_on_no_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast-experiments"))
        .output()
        .unwrap();
    assert!(!out.status.success());
}
