//! End-to-end CLI tests: run the built `scast` / `scast-experiments`
//! binaries the way a user would and check their output.

use std::process::Command;

fn scast(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(args)
        .output()
        .expect("scast runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn corpus_listing() {
    let (stdout, _, ok) = scast(&["--corpus"]);
    assert!(ok);
    assert!(stdout.contains("tagged-union"));
    assert!(stdout.contains("list-utils"));
    assert_eq!(stdout.lines().count(), 21); // header + 20 programs
}

#[test]
fn analyze_corpus_program_by_name() {
    let (stdout, _, ok) = scast(&["tagged-union", "--deref-stats"]);
    assert!(ok);
    assert!(stdout.contains("Common Initial Sequence"));
    assert!(stdout.contains("avg points-to size"));
}

#[test]
fn model_and_var_selection() {
    let (stdout, _, ok) = scast(&[
        "oop-shapes",
        "--model",
        "offsets",
        "--layout",
        "lp64",
        "--var",
        "shapes",
    ]);
    assert!(ok);
    assert!(stdout.contains("Offsets"));
    assert!(stdout.contains("shapes ->"));
}

#[test]
fn analyze_a_real_file() {
    let dir = std::env::temp_dir().join("scast_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.c");
    std::fs::write(
        &path,
        "int x, *p; void main(void) { p = &x; }",
    )
    .unwrap();
    let (stdout, _, ok) = scast(&[path.to_str().unwrap(), "--var", "p"]);
    assert!(ok);
    assert!(stdout.contains("p -> {x}"), "{stdout}");
}

#[test]
fn preprocessor_resolves_defines_and_includes() {
    let dir = std::env::temp_dir().join("scast_cli_pp");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("defs.h"),
        "#define CAP 4\nstruct Slot { int *owner; };\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.c"),
        "#include \"defs.h\"\nstruct Slot table[CAP];\nint who;\n\
         void main(void) { table[0].owner = &who; }\n",
    )
    .unwrap();
    let (stdout, _, ok) = scast(&[
        dir.join("main.c").to_str().unwrap(),
        "--var",
        "table",
    ]);
    assert!(ok);
    assert!(stdout.contains("table -> {who}"), "{stdout}");
}

#[test]
fn dump_ir_shows_normalized_forms() {
    let (stdout, _, ok) = scast(&["list-utils", "--dump-ir"]);
    assert!(ok);
    assert!(stdout.contains("objects"));
    assert!(stdout.contains("= &"));
}

#[test]
fn dump_constraints_prints_the_stage1_dump() {
    let (stdout, _, ok) = scast(&["list-utils", "--dump-constraints"]);
    assert!(ok);
    assert!(stdout.starts_with("# structcast-constraints v1\n"), "{stdout}");
    assert!(stdout.contains("addrof"), "{stdout}");
    // Deterministic: two runs print byte-identical dumps.
    let (again, _, ok2) = scast(&["list-utils", "--dump-constraints"]);
    assert!(ok2);
    assert_eq!(stdout, again);
    // Sorted: zero-padded indices make lexicographic == statement order.
    let ids: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with('c'))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}

#[test]
fn steensgaard_mode() {
    let (stdout, _, ok) = scast(&["bst", "--steensgaard", "--var", "g_tree"]);
    assert!(ok);
    assert!(stdout.contains("steensgaard: classes="));
}

#[test]
fn flag_unknown_mode_reports_suspicious_sites() {
    let (stdout, _, ok) = scast(&["allocator", "--flag-unknown"]);
    assert!(ok);
    assert!(stdout.contains("possibly-corrupted pointers"), "{stdout}");
}

#[test]
fn demand_query_matches_the_exhaustive_answer() {
    // Happy path: `--demand p` prints the same points-to set `--var p`
    // prints from the full solve, plus the slice statistics.
    let (full, _, ok1) = scast(&["bst", "--var", "g_tree", "--model", "offsets"]);
    let (demand, _, ok2) = scast(&["bst", "--demand", "g_tree", "--model", "offsets"]);
    assert!(ok1 && ok2);
    let set_of = |out: &str| {
        out.lines()
            .find(|l| l.contains("g_tree -> {"))
            .and_then(|l| l.split_once("g_tree -> ").map(|(_, s)| s.to_string()))
            .unwrap_or_else(|| panic!("no g_tree set in {out}"))
    };
    assert_eq!(set_of(&full), set_of(&demand), "full:\n{full}\ndemand:\n{demand}");
    assert!(demand.contains("demand (Offsets)"), "{demand}");
    // The slice stats line reports slice/total, with slice ≤ total.
    let stats = demand.lines().find(|l| l.contains("slice=")).unwrap();
    let (slice, total) = stats
        .split_once("slice=")
        .and_then(|(_, r)| r.split_once(' '))
        .and_then(|(frac, _)| frac.split_once('/'))
        .map(|(s, t)| (s.parse::<u64>().unwrap(), t.parse::<u64>().unwrap()))
        .unwrap();
    assert!(slice > 0 && slice <= total, "{stats}");
}

#[test]
fn demand_query_for_unknown_pointer_fails_cleanly() {
    let (stdout, stderr, ok) = scast(&["bst", "--demand", "ghost"]);
    assert!(!ok, "unknown pointer must exit nonzero");
    assert!(stderr.contains("unknown pointer `ghost`"), "{stderr}");
    assert!(stdout.is_empty(), "diagnostics go to stderr: {stdout}");
}

#[test]
fn demand_composes_with_budgets() {
    // A roomy deadline completes and answers normally...
    let (stdout, _, ok) = scast(&["bst", "--demand", "g_tree", "--deadline-ms", "600000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("g_tree -> {"), "{stdout}");
    // ...a zero deadline trips the sliced solve with the typed error.
    let (_, stderr, ok) = scast(&["bst", "--demand", "g_tree", "--deadline-ms", "0"]);
    assert!(!ok, "a zero deadline must trip the demand solve");
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
    // ...and an impossible edge cap does too, naming the cap.
    let (_, stderr, ok) = scast(&["bst", "--demand", "g_tree", "--max-edges", "1"]);
    assert!(!ok);
    assert!(stderr.contains("edge limit (1)"), "{stderr}");
}

#[test]
fn bad_file_fails_cleanly() {
    let (_, stderr, ok) = scast(&["definitely-not-a-file.c"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn malformed_input_fails_with_parse_error_on_stderr() {
    let dir = std::env::temp_dir().join("scast_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.c");
    std::fs::write(&path, "int x = ;;; garbage(((").unwrap();
    let (stdout, stderr, ok) = scast(&[path.to_str().unwrap()]);
    assert!(!ok, "malformed input must exit nonzero");
    assert!(stderr.contains("parse error"), "{stderr}");
    assert!(stderr.contains("bad.c"), "{stderr}");
    assert!(stdout.is_empty(), "diagnostics go to stderr, not stdout: {stdout}");
}

#[test]
fn json_output_is_machine_readable_and_deterministic() {
    use structcast_server::json::Json;
    let (stdout, _, ok) = scast(&["tagged-union", "--json", "--model", "offsets"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 1, "one JSON object per run: {stdout}");
    let v = Json::parse(stdout.trim()).expect("valid JSON");
    assert_eq!(v.get("model").and_then(Json::as_str), Some("Offsets"));
    let edges = v.get("edges").and_then(Json::as_arr).unwrap();
    assert_eq!(
        edges.len() as u64,
        v.get("edge_count").and_then(Json::as_u64).unwrap()
    );
    assert!(edges.iter().any(|e| {
        e.as_arr().is_some_and(|pair| {
            pair[0].as_str() == Some("g_registry")
        })
    }), "{stdout}");
    assert!(!v.get("deref_sites").and_then(Json::as_arr).unwrap().is_empty());
    let (again, _, ok2) = scast(&["tagged-union", "--json", "--model", "offsets"]);
    assert!(ok2);
    assert_eq!(stdout, again, "--json output must be byte-deterministic");
}

#[test]
fn serve_and_query_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut server = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("scast serve starts");
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner.strip_prefix("listening on ").expect(&banner).to_string();

    let query = |reqs: &[&str]| -> Vec<String> {
        let mut args = vec!["query", "--addr", &addr];
        args.extend_from_slice(reqs);
        let (stdout, stderr, ok) = scast(&args);
        assert!(ok, "{stderr}");
        stdout.lines().map(str::to_string).collect()
    };
    let pass = || {
        query(&[
            r#"{"op":"load","name":"bst"}"#,
            r#"{"op":"points_to","program":"bst","var":"g_tree"}"#,
            r#"{"op":"alias","program":"bst","a":"g_tree","b":"g_tree"}"#,
            r#"{"op":"modref","program":"bst"}"#,
            r#"{"op":"compare_models","program":"bst"}"#,
        ])
    };
    let first = pass();
    assert_eq!(first.len(), 5);
    assert!(first.iter().all(|l| l.starts_with(r#"{"ok": true"#)), "{first:?}");

    let misses = |stats: &str| {
        let v = structcast_server::json::Json::parse(stats).unwrap();
        let g = |k| v.get(k).and_then(structcast_server::json::Json::as_u64).unwrap();
        g("program_misses") + g("solve_misses")
    };
    let cold = misses(&query(&[r#"{"op":"stats"}"#])[0]);
    assert!(cold > 0);
    // Second identical pass: byte-identical answers, no new cache misses.
    assert_eq!(first, pass());
    assert_eq!(misses(&query(&[r#"{"op":"stats"}"#])[0]), cold);

    let bye = query(&[r#"{"op":"shutdown"}"#]);
    assert!(bye[0].contains("\"shutdown\": true"), "{bye:?}");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "clean exit after shutdown: {status:?}");
    let summary: Vec<String> = lines.map(|l| l.unwrap()).collect();
    assert!(
        summary.iter().any(|l| l.contains("structcast-server: served")),
        "{summary:?}"
    );
}

#[test]
fn query_reads_requests_from_stdin() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let mut server = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner.strip_prefix("listening on ").unwrap().to_string();

    let mut child = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(["query", "--addr", &addr, "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"op\":\"points_to\",\"program\":\"tagged-union\",\"var\":\"g_registry\"}\n{\"op\":\"shutdown\"}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
    assert!(stdout.contains("\"points_to\": ["), "{stdout}");
    assert!(server.wait().unwrap().success());
}

#[test]
fn query_without_server_fails_cleanly() {
    // Port 9 (discard) on loopback is virtually never listening.
    let (_, stderr, ok) = scast(&["query", "--addr", "127.0.0.1:9", r#"{"op":"stats"}"#]);
    assert!(!ok);
    assert!(stderr.contains("cannot connect"), "{stderr}");
}

#[test]
fn threads_flag_does_not_change_answers() {
    // --threads selects the sharded fixpoint; every *answer* (edges, deref
    // sites, averages) must be identical. Only the iteration count — how
    // many statement evaluations the schedule needed — may differ, so
    // strip that one field before comparing byte-for-byte.
    let strip_iterations = |s: &str| -> String {
        let start = s.find("\"iterations\":").expect("iterations field");
        let end = start + s[start..].find(',').unwrap();
        format!("{}{}", &s[..start], &s[end + 2..])
    };
    let (seq, _, ok1) = scast(&["tagged-union", "--json", "--threads", "1"]);
    let (par, _, ok2) = scast(&["tagged-union", "--json", "--threads", "8"]);
    assert!(ok1 && ok2);
    assert_eq!(
        strip_iterations(&seq),
        strip_iterations(&par),
        "sharded solve must match sequential answers byte-for-byte"
    );
}

#[test]
fn bad_threads_value_fails_cleanly() {
    let (_, stderr, ok) = scast(&["tagged-union", "--threads", "many"]);
    assert!(!ok);
    assert!(stderr.contains("bad --threads"), "{stderr}");
}

#[test]
fn tripped_budgets_fail_with_typed_errors() {
    let (_, stderr, ok) = scast(&["bst", "--max-edges", "1"]);
    assert!(!ok, "one edge cannot fit the fixpoint");
    assert!(stderr.contains("edge limit (1)"), "{stderr}");
    let (_, stderr, ok) = scast(&["bst", "--deadline-ms", "0"]);
    assert!(!ok, "a zero deadline trips before the first pop");
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
}

#[test]
fn a_roomy_budget_does_not_change_answers() {
    let (free, _, ok1) = scast(&["bst", "--json"]);
    let (budgeted, _, ok2) =
        scast(&["bst", "--json", "--deadline-ms", "600000", "--max-edges", "1000000"]);
    assert!(ok1 && ok2);
    assert_eq!(free, budgeted, "a budget that completes must not perturb the result");
}

#[test]
fn bad_budget_values_fail_cleanly() {
    let (_, stderr, ok) = scast(&["bst", "--max-edges", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("bad --max-edges"), "{stderr}");
    let (_, stderr, ok) = scast(&["bst", "--deadline-ms", "soon"]);
    assert!(!ok);
    assert!(stderr.contains("bad --deadline-ms"), "{stderr}");
}

#[test]
fn bad_model_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast"))
        .args(["bst", "--model", "telepathy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn experiments_fig4_shape() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast-experiments"))
        .args(["fig4"])
        .output()
        .expect("experiments runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 4"));
    assert!(stdout.contains("aggregate vs Offsets"));
    // 12 cast-heavy rows.
    assert!(stdout.lines().filter(|l| l.contains('.')).count() >= 12);
}

#[test]
fn experiments_usage_on_no_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_scast-experiments"))
        .output()
        .unwrap();
    assert!(!out.status.success());
}
