/* graph_dfs: adjacency-list graph with DFS, cycle detection, and component
 * counting. No structure casting. */

struct Edge {
    int to;
    struct Edge *next;
};

struct Graph {
    struct Edge *adj[32];
    int visited[32];
    int n;
};

struct Graph g_graph;
int g_cycle_found;

void graph_init(int n) {
    int i;
    g_graph.n = n;
    for (i = 0; i < n; i++) {
        g_graph.adj[i] = 0;
        g_graph.visited[i] = 0;
    }
}

void add_edge(int from, int to) {
    struct Edge *e;
    e = (struct Edge *)malloc(sizeof(struct Edge));
    e->to = to;
    e->next = g_graph.adj[from];
    g_graph.adj[from] = e;
}

void dfs(int v) {
    struct Edge *e;
    g_graph.visited[v] = 1;
    for (e = g_graph.adj[v]; e != 0; e = e->next) {
        if (g_graph.visited[e->to] == 1)
            g_cycle_found = 1;
        else if (g_graph.visited[e->to] == 0)
            dfs(e->to);
    }
    g_graph.visited[v] = 2;
}

int count_components(void) {
    int i, comps;
    comps = 0;
    for (i = 0; i < g_graph.n; i++) {
        if (g_graph.visited[i] == 0) {
            comps++;
            dfs(i);
        }
    }
    return comps;
}

int out_degree(int v) {
    struct Edge *e;
    int d;
    d = 0;
    for (e = g_graph.adj[v]; e != 0; e = e->next)
        d++;
    return d;
}

int main(void) {
    int comps, i, total;
    graph_init(8);
    add_edge(0, 1);
    add_edge(1, 2);
    add_edge(2, 0);
    add_edge(3, 4);
    add_edge(5, 6);
    add_edge(6, 7);
    comps = count_components();
    total = 0;
    for (i = 0; i < 8; i++)
        total = total + out_degree(i);
    printf("comps=%d cyc=%d edges=%d\n", comps, g_cycle_found, total);
    return 0;
}
