/* stack_calc: an RPN calculator over a stack of typed frames.
 * No structure casting. */

struct Frame {
    int value;
    int op_count;
    struct Frame *below;
};

struct Calc {
    struct Frame *top;
    int depth;
    int error;
};

struct Calc g_calc;

void calc_push(struct Calc *c, int v) {
    struct Frame *f;
    f = (struct Frame *)malloc(sizeof(struct Frame));
    f->value = v;
    f->op_count = 0;
    f->below = c->top;
    c->top = f;
    c->depth++;
}

int calc_pop(struct Calc *c) {
    struct Frame *f;
    int v;
    if (c->top == 0) {
        c->error = 1;
        return 0;
    }
    f = c->top;
    c->top = f->below;
    v = f->value;
    free(f);
    c->depth--;
    return v;
}

void calc_binop(struct Calc *c, char op) {
    int a, b, r;
    b = calc_pop(c);
    a = calc_pop(c);
    r = 0;
    switch (op) {
    case '+': r = a + b; break;
    case '-': r = a - b; break;
    case '*': r = a * b; break;
    case '/':
        if (b == 0)
            c->error = 1;
        else
            r = a / b;
        break;
    default:
        c->error = 1;
    }
    calc_push(c, r);
    if (c->top != 0)
        c->top->op_count++;
}

int calc_peek(struct Calc *c) {
    if (c->top == 0)
        return 0;
    return c->top->value;
}

void calc_run(struct Calc *c, const char *prog) {
    int i;
    char ch;
    for (i = 0; prog[i] != 0; i++) {
        ch = prog[i];
        if (ch >= '0' && ch <= '9')
            calc_push(c, ch - '0');
        else if (ch != ' ')
            calc_binop(c, ch);
    }
}

int main(void) {
    calc_run(&g_calc, "34+2*7-");
    printf("%d depth=%d err=%d\n", calc_peek(&g_calc), g_calc.depth,
           g_calc.error);
    while (g_calc.depth > 0)
        calc_pop(&g_calc);
    return 0;
}
