/* event_loop: a callback-driven event loop where handlers receive their
 * context as void* and cast it back to a concrete type — the ubiquitous
 * C idiom that defeats naive type-based analyses. */

struct Event {
    int kind;
    int payload;
};

struct Handler {
    int kind_mask;
    void (*fn)(struct Event *ev, void *ctx);
    void *ctx;
    struct Handler *next;
};

struct CounterCtx {
    int count;
    int last_payload;
};

struct LoggerCtx {
    char *prefix;
    int lines;
};

struct Handler *g_handlers;
int g_dispatched;

void on_count(struct Event *ev, void *ctx) {
    struct CounterCtx *c;
    c = (struct CounterCtx *)ctx;
    c->count++;
    c->last_payload = ev->payload;
}

void on_log(struct Event *ev, void *ctx) {
    struct LoggerCtx *l;
    l = (struct LoggerCtx *)ctx;
    l->lines++;
    printf("%s kind=%d\n", l->prefix, ev->kind);
}

void subscribe(int mask, void (*fn)(struct Event *, void *), void *ctx) {
    struct Handler *h;
    h = (struct Handler *)malloc(sizeof(struct Handler));
    h->kind_mask = mask;
    h->fn = fn;
    h->ctx = ctx;
    h->next = g_handlers;
    g_handlers = h;
}

void dispatch(struct Event *ev) {
    struct Handler *h;
    for (h = g_handlers; h != 0; h = h->next) {
        if (h->kind_mask & ev->kind) {
            h->fn(ev, h->ctx);
            g_dispatched++;
        }
    }
}

struct CounterCtx g_clicks;
struct CounterCtx g_keys;
struct LoggerCtx g_logger;

int main(void) {
    struct Event e1, e2, e3;
    g_logger.prefix = "evt";
    subscribe(1, on_count, &g_clicks);
    subscribe(2, on_count, &g_keys);
    subscribe(3, on_log, &g_logger);
    e1.kind = 1; e1.payload = 11;
    e2.kind = 2; e2.payload = 22;
    e3.kind = 1; e3.payload = 33;
    dispatch(&e1);
    dispatch(&e2);
    dispatch(&e3);
    printf("clicks=%d keys=%d logged=%d disp=%d\n", g_clicks.count,
           g_keys.count, g_logger.lines, g_dispatched);
    printf("last=%d\n", g_clicks.last_payload);
    return 0;
}
