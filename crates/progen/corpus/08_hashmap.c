/* hashmap: chained hash table mapping int keys to typed values.
 * No structure casting. */

struct MapEntry {
    int key;
    int value;
    struct MapEntry *chain;
};

struct HashMap {
    struct MapEntry *buckets[16];
    int count;
    int collisions;
};

struct HashMap g_map;

int hash_key(int k) {
    unsigned int h;
    h = (unsigned int)k;
    h = h * 2654435761;
    return (int)(h % 16);
}

struct MapEntry *map_find(struct HashMap *m, int key) {
    struct MapEntry *e;
    e = m->buckets[hash_key(key)];
    while (e != 0) {
        if (e->key == key)
            return e;
        e = e->chain;
    }
    return 0;
}

void map_put(struct HashMap *m, int key, int value) {
    struct MapEntry *e;
    int b;
    e = map_find(m, key);
    if (e != 0) {
        e->value = value;
        return;
    }
    b = hash_key(key);
    e = (struct MapEntry *)malloc(sizeof(struct MapEntry));
    e->key = key;
    e->value = value;
    if (m->buckets[b] != 0)
        m->collisions++;
    e->chain = m->buckets[b];
    m->buckets[b] = e;
    m->count++;
}

int map_get(struct HashMap *m, int key, int fallback) {
    struct MapEntry *e;
    e = map_find(m, key);
    if (e == 0)
        return fallback;
    return e->value;
}

int map_remove(struct HashMap *m, int key) {
    struct MapEntry *e, *prev;
    int b;
    b = hash_key(key);
    prev = 0;
    for (e = m->buckets[b]; e != 0; e = e->chain) {
        if (e->key == key) {
            if (prev == 0)
                m->buckets[b] = e->chain;
            else
                prev->chain = e->chain;
            free(e);
            m->count--;
            return 1;
        }
        prev = e;
    }
    return 0;
}

int main(void) {
    int i, sum;
    for (i = 0; i < 40; i++)
        map_put(&g_map, i * 3, i);
    map_put(&g_map, 6, 100);
    map_remove(&g_map, 9);
    sum = 0;
    for (i = 0; i < 120; i++)
        sum = sum + map_get(&g_map, i, 0);
    printf("n=%d coll=%d sum=%d\n", g_map.count, g_map.collisions, sum);
    return 0;
}
