/* btree_generic: a "generic" ordered container storing void* elements with
 * a comparator callback; clients cast elements back at every use, and the
 * container is reused at two different element types. */

struct GNode {
    void *elem;
    struct GNode *left;
    struct GNode *right;
};

struct GTree {
    struct GNode *root;
    int (*cmp)(const void *a, const void *b);
    int size;
};

struct Employee {
    int id;
    int salary;
    char *name;
};

struct Machine {
    char *hostname;
    int cores;
};

struct GTree g_emps;
struct GTree g_machines;

int emp_cmp(const void *a, const void *b) {
    const struct Employee *x;
    const struct Employee *y;
    x = (const struct Employee *)a;
    y = (const struct Employee *)b;
    return x->id - y->id;
}

int machine_cmp(const void *a, const void *b) {
    const struct Machine *x;
    const struct Machine *y;
    x = (const struct Machine *)a;
    y = (const struct Machine *)b;
    return x->cores - y->cores;
}

struct GNode *gnode_new(void *elem) {
    struct GNode *n;
    n = (struct GNode *)malloc(sizeof(struct GNode));
    n->elem = elem;
    n->left = 0;
    n->right = 0;
    return n;
}

struct GNode *gtree_insert_at(struct GTree *t, struct GNode *root,
                              void *elem) {
    int c;
    if (root == 0)
        return gnode_new(elem);
    c = t->cmp(elem, root->elem);
    if (c < 0)
        root->left = gtree_insert_at(t, root->left, elem);
    else
        root->right = gtree_insert_at(t, root->right, elem);
    return root;
}

void gtree_insert(struct GTree *t, void *elem) {
    t->root = gtree_insert_at(t, t->root, elem);
    t->size++;
}

void *gtree_min(struct GTree *t) {
    struct GNode *n;
    n = t->root;
    if (n == 0)
        return 0;
    while (n->left != 0)
        n = n->left;
    return n->elem;
}

struct Employee *mk_emp(int id, int salary, char *name) {
    struct Employee *e;
    e = (struct Employee *)malloc(sizeof(struct Employee));
    e->id = id;
    e->salary = salary;
    e->name = name;
    return e;
}

struct Machine *mk_machine(char *host, int cores) {
    struct Machine *m;
    m = (struct Machine *)malloc(sizeof(struct Machine));
    m->hostname = host;
    m->cores = cores;
    return m;
}

int main(void) {
    struct Employee *lowest;
    struct Machine *smallest;
    g_emps.cmp = emp_cmp;
    g_machines.cmp = machine_cmp;
    gtree_insert(&g_emps, mk_emp(30, 900, "carol"));
    gtree_insert(&g_emps, mk_emp(10, 700, "alice"));
    gtree_insert(&g_emps, mk_emp(20, 800, "bob"));
    gtree_insert(&g_machines, mk_machine("web1", 8));
    gtree_insert(&g_machines, mk_machine("db1", 32));
    lowest = (struct Employee *)gtree_min(&g_emps);
    smallest = (struct Machine *)gtree_min(&g_machines);
    if (lowest != 0 && smallest != 0)
        printf("%s %d %s %d\n", lowest->name, lowest->salary,
               smallest->hostname, smallest->cores);
    printf("sizes=%d,%d\n", g_emps.size, g_machines.size);
    return 0;
}
