/* allocator: a free-list allocator over a static byte arena. Blocks are
 * carved from raw bytes and viewed through header structs — heavy casting
 * between char*, header, and user types (Problems 1 and 2). */

struct BlockHdr {
    int size;
    int in_use;
    struct BlockHdr *next_free;
};

struct UserRec {
    int *owner;
    int ticket;
};

char g_arena[4096];
struct BlockHdr *g_free_list;
int g_carved;
int g_allocs;
int g_frees;

void arena_init(void) {
    struct BlockHdr *first;
    first = (struct BlockHdr *)g_arena;
    first->size = 4096 - sizeof(struct BlockHdr);
    first->in_use = 0;
    first->next_free = 0;
    g_free_list = first;
    g_carved = 1;
}

char *block_payload(struct BlockHdr *b) {
    return (char *)b + sizeof(struct BlockHdr);
}

struct BlockHdr *payload_header(char *p) {
    return (struct BlockHdr *)(p - sizeof(struct BlockHdr));
}

char *arena_alloc(int want) {
    struct BlockHdr *cur, *prev, *split;
    char *base;
    prev = 0;
    cur = g_free_list;
    while (cur != 0) {
        if (cur->size >= want) {
            if (cur->size >= want + (int)sizeof(struct BlockHdr) + 8) {
                base = block_payload(cur);
                split = (struct BlockHdr *)(base + want);
                split->size = cur->size - want - sizeof(struct BlockHdr);
                split->in_use = 0;
                split->next_free = cur->next_free;
                cur->size = want;
                if (prev == 0)
                    g_free_list = split;
                else
                    prev->next_free = split;
                g_carved++;
            } else {
                if (prev == 0)
                    g_free_list = cur->next_free;
                else
                    prev->next_free = cur->next_free;
            }
            cur->in_use = 1;
            g_allocs++;
            return block_payload(cur);
        }
        prev = cur;
        cur = cur->next_free;
    }
    return 0;
}

void arena_free(char *p) {
    struct BlockHdr *b;
    if (p == 0)
        return;
    b = payload_header(p);
    b->in_use = 0;
    b->next_free = g_free_list;
    g_free_list = b;
    g_frees++;
}

int g_token;

int main(void) {
    struct UserRec *r1, *r2;
    char *raw;
    arena_init();
    r1 = (struct UserRec *)arena_alloc(sizeof(struct UserRec));
    r2 = (struct UserRec *)arena_alloc(sizeof(struct UserRec));
    raw = arena_alloc(100);
    if (r1 != 0) {
        r1->owner = &g_token;
        r1->ticket = 1;
    }
    if (r2 != 0) {
        r2->owner = r1 != 0 ? r1->owner : 0;
        r2->ticket = 2;
    }
    arena_free((char *)r1);
    arena_free(raw);
    printf("carved=%d a=%d f=%d tick=%d\n", g_carved, g_allocs, g_frees,
           r2 != 0 ? r2->ticket : -1);
    return 0;
}
