/* list_utils: singly-linked list library with insert/delete/reverse/map.
 * No structure casting: a clean, typed workload. */

struct IntList {
    int value;
    struct IntList *next;
};

struct IntList *g_head;
int g_length;

struct IntList *list_new_node(int v) {
    struct IntList *n;
    n = (struct IntList *)malloc(sizeof(struct IntList));
    n->value = v;
    n->next = 0;
    return n;
}

void list_push_front(int v) {
    struct IntList *n;
    n = list_new_node(v);
    n->next = g_head;
    g_head = n;
    g_length++;
}

void list_push_back(int v) {
    struct IntList *n, *cur;
    n = list_new_node(v);
    if (g_head == 0) {
        g_head = n;
    } else {
        cur = g_head;
        while (cur->next != 0)
            cur = cur->next;
        cur->next = n;
    }
    g_length++;
}

int list_pop_front(void) {
    struct IntList *old;
    int v;
    if (g_head == 0)
        return -1;
    old = g_head;
    v = old->value;
    g_head = old->next;
    free(old);
    g_length--;
    return v;
}

void list_reverse(void) {
    struct IntList *prev, *cur, *next;
    prev = 0;
    cur = g_head;
    while (cur != 0) {
        next = cur->next;
        cur->next = prev;
        prev = cur;
        cur = next;
    }
    g_head = prev;
}

struct IntList *list_find(int v) {
    struct IntList *cur;
    for (cur = g_head; cur != 0; cur = cur->next) {
        if (cur->value == v)
            return cur;
    }
    return 0;
}

void list_remove(int v) {
    struct IntList *cur, *prev;
    prev = 0;
    cur = g_head;
    while (cur != 0) {
        if (cur->value == v) {
            if (prev == 0)
                g_head = cur->next;
            else
                prev->next = cur->next;
            free(cur);
            g_length--;
            return;
        }
        prev = cur;
        cur = cur->next;
    }
}

void list_map(int (*fn)(int)) {
    struct IntList *cur;
    for (cur = g_head; cur != 0; cur = cur->next)
        cur->value = fn(cur->value);
}

int double_it(int x) { return x * 2; }
int negate_it(int x) { return -x; }

int main(void) {
    int i, v;
    struct IntList *hit;
    for (i = 0; i < 10; i++)
        list_push_front(i);
    list_push_back(99);
    list_reverse();
    list_map(double_it);
    list_map(negate_it);
    hit = list_find(-8);
    if (hit != 0)
        hit->value = 0;
    list_remove(0);
    v = list_pop_front();
    printf("%d %d\n", v, g_length);
    return 0;
}
