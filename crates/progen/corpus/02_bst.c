/* bst: binary search tree with insert, lookup, min/max, and destroy.
 * No structure casting. */

struct TreeNode {
    int key;
    int payload;
    struct TreeNode *left;
    struct TreeNode *right;
};

struct Tree {
    struct TreeNode *root;
    int size;
};

struct Tree g_tree;

struct TreeNode *node_new(int key, int payload) {
    struct TreeNode *n;
    n = (struct TreeNode *)malloc(sizeof(struct TreeNode));
    n->key = key;
    n->payload = payload;
    n->left = 0;
    n->right = 0;
    return n;
}

struct TreeNode *tree_insert(struct TreeNode *root, int key, int payload) {
    if (root == 0)
        return node_new(key, payload);
    if (key < root->key)
        root->left = tree_insert(root->left, key, payload);
    else if (key > root->key)
        root->right = tree_insert(root->right, key, payload);
    else
        root->payload = payload;
    return root;
}

struct TreeNode *tree_find(struct TreeNode *root, int key) {
    while (root != 0) {
        if (key < root->key)
            root = root->left;
        else if (key > root->key)
            root = root->right;
        else
            return root;
    }
    return 0;
}

struct TreeNode *tree_min(struct TreeNode *root) {
    if (root == 0)
        return 0;
    while (root->left != 0)
        root = root->left;
    return root;
}

struct TreeNode *tree_max(struct TreeNode *root) {
    if (root == 0)
        return 0;
    while (root->right != 0)
        root = root->right;
    return root;
}

int tree_height(struct TreeNode *root) {
    int lh, rh;
    if (root == 0)
        return 0;
    lh = tree_height(root->left);
    rh = tree_height(root->right);
    return 1 + (lh > rh ? lh : rh);
}

void tree_destroy(struct TreeNode *root) {
    if (root == 0)
        return;
    tree_destroy(root->left);
    tree_destroy(root->right);
    free(root);
}

int main(void) {
    int keys[8];
    int i;
    struct TreeNode *hit, *lo, *hi;
    keys[0] = 50; keys[1] = 30; keys[2] = 70; keys[3] = 20;
    keys[4] = 40; keys[5] = 60; keys[6] = 80; keys[7] = 35;
    for (i = 0; i < 8; i++) {
        g_tree.root = tree_insert(g_tree.root, keys[i], i);
        g_tree.size++;
    }
    hit = tree_find(g_tree.root, 40);
    lo = tree_min(g_tree.root);
    hi = tree_max(g_tree.root);
    if (hit != 0 && lo != 0 && hi != 0)
        printf("%d %d %d %d\n", hit->payload, lo->key, hi->key,
               tree_height(g_tree.root));
    tree_destroy(g_tree.root);
    g_tree.root = 0;
    return 0;
}
