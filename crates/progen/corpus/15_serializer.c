/* serializer: writes typed records into a flat byte buffer and reads them
 * back by casting at offsets — Problem 3 (copies between different types)
 * plus memcpy-mediated struct transfer. */

struct WireHeader {
    int magic;
    int kind;
    int body_len;
};

struct PointRec {
    int magic;
    int kind;
    int body_len;
    int x;
    int y;
};

struct NameRec {
    int magic;
    int kind;
    int body_len;
    char name[16];
};

char g_wire[1024];
int g_wire_used;
int g_decoded_points;
int g_decoded_names;

char *wire_reserve(int n) {
    char *at;
    if (g_wire_used + n > 1024)
        return 0;
    at = g_wire + g_wire_used;
    g_wire_used = g_wire_used + n;
    return at;
}

void put_point(int x, int y) {
    struct PointRec rec;
    char *slot;
    rec.magic = 777;
    rec.kind = 1;
    rec.body_len = 2 * sizeof(int);
    rec.x = x;
    rec.y = y;
    slot = wire_reserve(sizeof(struct PointRec));
    if (slot != 0)
        memcpy(slot, &rec, sizeof(struct PointRec));
}

void put_name(const char *s) {
    struct NameRec rec;
    char *slot;
    int i;
    rec.magic = 777;
    rec.kind = 2;
    rec.body_len = 16;
    for (i = 0; i < 15 && s[i] != 0; i++)
        rec.name[i] = s[i];
    rec.name[i] = 0;
    slot = wire_reserve(sizeof(struct NameRec));
    if (slot != 0)
        memcpy(slot, &rec, sizeof(struct NameRec));
}

int decode_one(char *at, int remaining) {
    struct WireHeader *h;
    struct PointRec *p;
    struct NameRec *n;
    if (remaining < (int)sizeof(struct WireHeader))
        return 0;
    h = (struct WireHeader *)at;
    if (h->magic != 777)
        return 0;
    if (h->kind == 1) {
        p = (struct PointRec *)at;
        g_decoded_points = g_decoded_points + (p->x + p->y != -1);
        return sizeof(struct PointRec);
    }
    if (h->kind == 2) {
        n = (struct NameRec *)at;
        if (n->name[0] != 0)
            g_decoded_names++;
        return sizeof(struct NameRec);
    }
    return 0;
}

void decode_all(void) {
    int off, step;
    off = 0;
    while (off < g_wire_used) {
        step = decode_one(g_wire + off, g_wire_used - off);
        if (step == 0)
            break;
        off = off + step;
    }
}

int main(void) {
    put_point(3, 4);
    put_name("alice");
    put_point(7, 9);
    decode_all();
    printf("pts=%d names=%d used=%d\n", g_decoded_points, g_decoded_names,
           g_wire_used);
    return 0;
}
