/* vm_interp: a tiny bytecode VM. Instructions are variant structs sharing
 * an opcode header; the decoder casts the instruction stream, and the VM
 * keeps tagged operand slots that may hold ints or pointers. */

struct Insn {
    int op;
};

struct PushInsn {
    int op;
    int value;
};

struct LoadInsn {
    int op;
    int *slot;
};

struct JumpInsn {
    int op;
    int target;
};

struct Vm {
    int stack[32];
    int sp;
    int pc;
    int steps;
    int *globals[4];
};

char g_code[256];
int g_code_len;
struct Vm g_vm;
int g_var_a, g_var_b;

char *emit(int bytes) {
    char *at;
    at = g_code + g_code_len;
    g_code_len = g_code_len + bytes;
    return at;
}

void emit_push(int v) {
    struct PushInsn *i;
    i = (struct PushInsn *)emit(sizeof(struct PushInsn));
    i->op = 1;
    i->value = v;
}

void emit_load(int *slot) {
    struct LoadInsn *i;
    i = (struct LoadInsn *)emit(sizeof(struct LoadInsn));
    i->op = 2;
    i->slot = slot;
}

void emit_add(void) {
    struct Insn *i;
    i = (struct Insn *)emit(sizeof(struct Insn));
    i->op = 3;
}

void emit_halt(void) {
    struct Insn *i;
    i = (struct Insn *)emit(sizeof(struct Insn));
    i->op = 0;
}

int vm_run(struct Vm *vm) {
    struct Insn *insn;
    struct PushInsn *pi;
    struct LoadInsn *li;
    vm->pc = 0;
    vm->sp = 0;
    while (vm->pc < g_code_len) {
        insn = (struct Insn *)(g_code + vm->pc);
        vm->steps++;
        switch (insn->op) {
        case 0:
            return vm->sp > 0 ? vm->stack[vm->sp - 1] : 0;
        case 1:
            pi = (struct PushInsn *)insn;
            vm->stack[vm->sp] = pi->value;
            vm->sp++;
            vm->pc = vm->pc + sizeof(struct PushInsn);
            break;
        case 2:
            li = (struct LoadInsn *)insn;
            vm->stack[vm->sp] = *li->slot;
            vm->sp++;
            vm->pc = vm->pc + sizeof(struct LoadInsn);
            break;
        case 3:
            vm->stack[vm->sp - 2] =
                vm->stack[vm->sp - 2] + vm->stack[vm->sp - 1];
            vm->sp--;
            vm->pc = vm->pc + sizeof(struct Insn);
            break;
        default:
            return -1;
        }
    }
    return -1;
}

int main(void) {
    int result;
    g_var_a = 10;
    g_var_b = 32;
    g_vm.globals[0] = &g_var_a;
    g_vm.globals[1] = &g_var_b;
    emit_push(5);
    emit_load(g_vm.globals[0]);
    emit_add();
    emit_load(&g_var_b);
    emit_add();
    emit_halt();
    result = vm_run(&g_vm);
    printf("result=%d steps=%d\n", result, g_vm.steps);
    return 0;
}
