/* packet_parse: network-style packet parsing; raw byte buffers are viewed
 * through layered header structs via casts, and headers are advanced with
 * pointer arithmetic (Problem 2 + Complication 1). */

struct EthHdr {
    char dst[6];
    char src[6];
    int ethertype;
};

struct IpHdr {
    int version;
    int length;
    int proto;
    char *src_addr;
    char *dst_addr;
};

struct TcpHdr {
    int sport;
    int dport;
    int seq;
    int flags;
};

struct ParsedPacket {
    struct EthHdr *eth;
    struct IpHdr *ip;
    struct TcpHdr *tcp;
    int payload_len;
};

char g_rx_buffer[512];
struct ParsedPacket g_last;
int g_parsed;
int g_dropped;
char g_addr_a[4];
char g_addr_b[4];

void fill_fake_packet(void) {
    struct EthHdr *e;
    struct IpHdr *ip;
    struct TcpHdr *t;
    e = (struct EthHdr *)g_rx_buffer;
    e->ethertype = 800;
    ip = (struct IpHdr *)(g_rx_buffer + sizeof(struct EthHdr));
    ip->version = 4;
    ip->length = sizeof(struct IpHdr) + sizeof(struct TcpHdr) + 32;
    ip->proto = 6;
    ip->src_addr = g_addr_a;
    ip->dst_addr = g_addr_b;
    t = (struct TcpHdr *)((char *)ip + sizeof(struct IpHdr));
    t->sport = 80;
    t->dport = 443;
    t->seq = 1;
    t->flags = 2;
}

int parse_packet(char *buf, struct ParsedPacket *out) {
    struct EthHdr *e;
    struct IpHdr *ip;
    e = (struct EthHdr *)buf;
    out->eth = e;
    if (e->ethertype != 800) {
        g_dropped++;
        return 0;
    }
    ip = (struct IpHdr *)(buf + sizeof(struct EthHdr));
    out->ip = ip;
    if (ip->version != 4) {
        g_dropped++;
        return 0;
    }
    if (ip->proto == 6) {
        out->tcp = (struct TcpHdr *)((char *)ip + sizeof(struct IpHdr));
        out->payload_len =
            ip->length - sizeof(struct IpHdr) - sizeof(struct TcpHdr);
    } else {
        out->tcp = 0;
        out->payload_len = ip->length - sizeof(struct IpHdr);
    }
    g_parsed++;
    return 1;
}

char *packet_src(struct ParsedPacket *p) {
    if (p->ip == 0)
        return 0;
    return p->ip->src_addr;
}

int main(void) {
    char *src;
    fill_fake_packet();
    if (parse_packet(g_rx_buffer, &g_last)) {
        src = packet_src(&g_last);
        printf("ok sport=%d len=%d src0=%d\n",
               g_last.tcp != 0 ? g_last.tcp->sport : -1, g_last.payload_len,
               src != 0 ? src[0] : -1);
    }
    printf("parsed=%d dropped=%d\n", g_parsed, g_dropped);
    return 0;
}
