/* arena: a bump arena handing out void* that callers cast to concrete
 * types; arena snapshots copy whole regions with memcpy. */

struct Arena {
    char storage[2048];
    int used;
    int high_water;
};

struct Session {
    struct Arena *arena;
    int id;
};

struct Point {
    int *x_ref;
    int *y_ref;
};

struct Header {
    int len;
    char *data;
};

struct Arena g_main_arena;
struct Arena g_snapshot;
int g_px, g_py;

void *arena_bump(struct Arena *a, int n) {
    char *at;
    if (a->used + n > 2048)
        return 0;
    at = a->storage + a->used;
    a->used = a->used + n;
    if (a->used > a->high_water)
        a->high_water = a->used;
    return (void *)at;
}

void arena_reset(struct Arena *a) {
    a->used = 0;
}

void arena_snapshot(struct Arena *dst, struct Arena *src) {
    memcpy(dst, src, sizeof(struct Arena));
}

struct Point *alloc_point(struct Arena *a) {
    struct Point *p;
    p = (struct Point *)arena_bump(a, sizeof(struct Point));
    if (p != 0) {
        p->x_ref = &g_px;
        p->y_ref = &g_py;
    }
    return p;
}

struct Header *alloc_header(struct Arena *a, int len) {
    struct Header *h;
    h = (struct Header *)arena_bump(a, sizeof(struct Header));
    if (h != 0) {
        h->len = len;
        h->data = (char *)arena_bump(a, len);
    }
    return h;
}

int session_use(struct Session *s) {
    struct Point *p;
    struct Header *h;
    p = alloc_point(s->arena);
    h = alloc_header(s->arena, 64);
    if (p == 0 || h == 0)
        return -1;
    *p->x_ref = s->id;
    if (h->data != 0)
        h->data[0] = (char)s->id;
    return s->arena->used;
}

int main(void) {
    struct Session s1, s2;
    int u1, u2;
    s1.arena = &g_main_arena;
    s1.id = 1;
    s2.arena = &g_main_arena;
    s2.id = 2;
    u1 = session_use(&s1);
    arena_snapshot(&g_snapshot, &g_main_arena);
    u2 = session_use(&s2);
    arena_reset(&g_main_arena);
    printf("u1=%d u2=%d hw=%d snap=%d px=%d\n", u1, u2,
           g_main_arena.high_water, g_snapshot.used, g_px);
    return 0;
}
