/* oop_shapes: object-oriented C with a Shape "base class" embedded as the
 * first member of Circle/Rect "subclasses" — up- and down-casts rely on the
 * first-field-at-offset-zero guarantee (Problem 1) and virtual dispatch
 * goes through function pointers in a vtable struct. */

struct Shape;

struct ShapeOps {
    int (*area)(struct Shape *self);
    int (*perimeter)(struct Shape *self);
    const char *name;
};

struct Shape {
    struct ShapeOps *ops;
    int id;
};

struct Circle {
    struct Shape base;
    int radius;
};

struct Rect {
    struct Shape base;
    int w;
    int h;
};

int circle_area(struct Shape *self) {
    struct Circle *c;
    c = (struct Circle *)self;
    return 3 * c->radius * c->radius;
}

int circle_perimeter(struct Shape *self) {
    struct Circle *c;
    c = (struct Circle *)self;
    return 6 * c->radius;
}

int rect_area(struct Shape *self) {
    struct Rect *r;
    r = (struct Rect *)self;
    return r->w * r->h;
}

int rect_perimeter(struct Shape *self) {
    struct Rect *r;
    r = (struct Rect *)self;
    return 2 * (r->w + r->h);
}

struct ShapeOps g_circle_ops = { circle_area, circle_perimeter, "circle" };
struct ShapeOps g_rect_ops = { rect_area, rect_perimeter, "rect" };
int g_next_id;

struct Shape *new_circle(int radius) {
    struct Circle *c;
    c = (struct Circle *)malloc(sizeof(struct Circle));
    c->base.ops = &g_circle_ops;
    c->base.id = g_next_id++;
    c->radius = radius;
    return &c->base;
}

struct Shape *new_rect(int w, int h) {
    struct Rect *r;
    r = (struct Rect *)malloc(sizeof(struct Rect));
    r->base.ops = &g_rect_ops;
    r->base.id = g_next_id++;
    r->w = w;
    r->h = h;
    return (struct Shape *)r;
}

int total_area(struct Shape **shapes, int n) {
    int i, total;
    total = 0;
    for (i = 0; i < n; i++)
        total = total + shapes[i]->ops->area(shapes[i]);
    return total;
}

struct Shape *biggest(struct Shape **shapes, int n) {
    int i, best_area, a;
    struct Shape *best;
    best = 0;
    best_area = -1;
    for (i = 0; i < n; i++) {
        a = shapes[i]->ops->area(shapes[i]);
        if (a > best_area) {
            best_area = a;
            best = shapes[i];
        }
    }
    return best;
}

int main(void) {
    struct Shape *shapes[4];
    struct Shape *top;
    shapes[0] = new_circle(2);
    shapes[1] = new_rect(3, 4);
    shapes[2] = new_rect(5, 1);
    shapes[3] = new_circle(1);
    printf("total=%d\n", total_area(shapes, 4));
    top = biggest(shapes, 4);
    if (top != 0)
        printf("best=%s per=%d\n", top->ops->name, top->ops->perimeter(top));
    return 0;
}
