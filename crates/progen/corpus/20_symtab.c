/* symtab: a compiler-style symbol table. Entries share a common header
 * (name/kind/scope) and diverge per kind; the table stores header pointers
 * and code downcasts after checking the kind — common-initial-sequence
 * casting with structure copies between entry kinds. */

struct SymHdr {
    char *name;
    int kind;
    int scope_depth;
};

struct VarSym {
    char *name;
    int kind;
    int scope_depth;
    int offset;
    int *type_ref;
};

struct FuncSym {
    char *name;
    int kind;
    int scope_depth;
    int arity;
    struct VarSym *params[4];
};

struct TypeSym {
    char *name;
    int kind;
    int scope_depth;
    int size;
    int align;
};

struct SymHdr *g_table[32];
int g_nsyms;
int g_depth;
int g_int_type;

struct SymHdr *sym_lookup(char *name) {
    int i;
    for (i = g_nsyms - 1; i >= 0; i--) {
        if (strcmp(g_table[i]->name, name) == 0)
            return g_table[i];
    }
    return 0;
}

void sym_insert(struct SymHdr *s) {
    if (g_nsyms < 32) {
        g_table[g_nsyms] = s;
        g_nsyms++;
    }
}

struct VarSym *declare_var(char *name, int offset) {
    struct VarSym *v;
    v = (struct VarSym *)malloc(sizeof(struct VarSym));
    v->name = name;
    v->kind = 1;
    v->scope_depth = g_depth;
    v->offset = offset;
    v->type_ref = &g_int_type;
    sym_insert((struct SymHdr *)v);
    return v;
}

struct FuncSym *declare_func(char *name, int arity) {
    struct FuncSym *f;
    int i;
    f = (struct FuncSym *)malloc(sizeof(struct FuncSym));
    f->name = name;
    f->kind = 2;
    f->scope_depth = g_depth;
    f->arity = arity;
    for (i = 0; i < 4; i++)
        f->params[i] = 0;
    sym_insert((struct SymHdr *)f);
    return f;
}

struct TypeSym *declare_type(char *name, int size, int align) {
    struct TypeSym *t;
    t = (struct TypeSym *)malloc(sizeof(struct TypeSym));
    t->name = name;
    t->kind = 3;
    t->scope_depth = g_depth;
    t->size = size;
    t->align = align;
    sym_insert((struct SymHdr *)t);
    return t;
}

void scope_enter(void) {
    g_depth++;
}

void scope_exit(void) {
    while (g_nsyms > 0 && g_table[g_nsyms - 1]->scope_depth == g_depth)
        g_nsyms--;
    g_depth--;
}

int sym_sizeof(struct SymHdr *s) {
    struct TypeSym *t;
    struct VarSym *v;
    if (s == 0)
        return 0;
    if (s->kind == 3) {
        t = (struct TypeSym *)s;
        return t->size;
    }
    if (s->kind == 1) {
        v = (struct VarSym *)s;
        return v->type_ref != 0 ? *v->type_ref : 0;
    }
    return 0;
}

int main(void) {
    struct FuncSym *f;
    struct VarSym *x, *p0;
    struct SymHdr *found;
    g_int_type = 4;
    declare_type("int", 4, 4);
    f = declare_func("compute", 1);
    scope_enter();
    p0 = declare_var("arg0", 8);
    f->params[0] = p0;
    x = declare_var("x", -4);
    found = sym_lookup("x");
    printf("x_sz=%d depth=%d\n", sym_sizeof(found), found->scope_depth);
    scope_exit();
    found = sym_lookup("x");
    printf("after_exit=%d syms=%d arity=%d off=%d\n", found == 0, g_nsyms,
           f->arity, x->offset);
    return 0;
}
