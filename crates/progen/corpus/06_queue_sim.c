/* queue_sim: an M/M/1-ish queueing simulation with typed event and server
 * structures. No structure casting. */

struct Job {
    int id;
    int arrival;
    int service;
    struct Job *next;
};

struct Server {
    struct Job *current;
    int busy_until;
    int completed;
    int total_wait;
};

struct Queue {
    struct Job *head;
    struct Job *tail;
    int length;
    int max_length;
};

struct Queue g_queue;
struct Server g_server;
int g_clock;
int g_seed;

int next_rand(void) {
    g_seed = (g_seed * 1103515245 + 12345) % 2147483647;
    if (g_seed < 0)
        g_seed = -g_seed;
    return g_seed;
}

void enqueue(struct Job *j) {
    j->next = 0;
    if (g_queue.tail == 0) {
        g_queue.head = j;
        g_queue.tail = j;
    } else {
        g_queue.tail->next = j;
        g_queue.tail = j;
    }
    g_queue.length++;
    if (g_queue.length > g_queue.max_length)
        g_queue.max_length = g_queue.length;
}

struct Job *dequeue(void) {
    struct Job *j;
    j = g_queue.head;
    if (j == 0)
        return 0;
    g_queue.head = j->next;
    if (g_queue.head == 0)
        g_queue.tail = 0;
    g_queue.length--;
    return j;
}

struct Job *make_job(int id) {
    struct Job *j;
    j = (struct Job *)malloc(sizeof(struct Job));
    j->id = id;
    j->arrival = g_clock;
    j->service = 1 + next_rand() % 5;
    j->next = 0;
    return j;
}

void step_server(void) {
    struct Job *j;
    if (g_server.current != 0 && g_clock >= g_server.busy_until) {
        g_server.completed++;
        free(g_server.current);
        g_server.current = 0;
    }
    if (g_server.current == 0) {
        j = dequeue();
        if (j != 0) {
            g_server.current = j;
            g_server.total_wait = g_server.total_wait + (g_clock - j->arrival);
            g_server.busy_until = g_clock + j->service;
        }
    }
}

int main(void) {
    int next_id;
    g_seed = 42;
    next_id = 0;
    for (g_clock = 0; g_clock < 200; g_clock++) {
        if (next_rand() % 3 == 0) {
            enqueue(make_job(next_id));
            next_id++;
        }
        step_server();
    }
    printf("done=%d maxq=%d wait=%d\n", g_server.completed,
           g_queue.max_length, g_server.total_wait);
    return 0;
}
