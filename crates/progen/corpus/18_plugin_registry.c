/* plugin_registry: a plugin table with init/exec/teardown function pointers
 * and per-plugin opaque state (void*), cast back inside each callback. */

struct Plugin {
    const char *name;
    int (*init)(void **state_out);
    int (*exec)(void *state, int input);
    void (*teardown)(void *state);
    void *state;
    int enabled;
};

struct DoublerState {
    int calls;
    int factor;
};

struct AccumState {
    int total;
    int *sink;
};

struct Plugin g_plugins[4];
int g_nplugins;
int g_accum_out;

int doubler_init(void **state_out) {
    struct DoublerState *s;
    s = (struct DoublerState *)malloc(sizeof(struct DoublerState));
    s->calls = 0;
    s->factor = 2;
    *state_out = (void *)s;
    return 0;
}

int doubler_exec(void *state, int input) {
    struct DoublerState *s;
    s = (struct DoublerState *)state;
    s->calls++;
    return input * s->factor;
}

void doubler_teardown(void *state) {
    free(state);
}

int accum_init(void **state_out) {
    struct AccumState *s;
    s = (struct AccumState *)malloc(sizeof(struct AccumState));
    s->total = 0;
    s->sink = &g_accum_out;
    *state_out = (void *)s;
    return 0;
}

int accum_exec(void *state, int input) {
    struct AccumState *s;
    s = (struct AccumState *)state;
    s->total = s->total + input;
    *s->sink = s->total;
    return s->total;
}

void accum_teardown(void *state) {
    struct AccumState *s;
    s = (struct AccumState *)state;
    s->sink = 0;
    free(state);
}

void register_plugin(const char *name, int (*init)(void **),
                     int (*exec)(void *, int), void (*teardown)(void *)) {
    struct Plugin *p;
    if (g_nplugins >= 4)
        return;
    p = &g_plugins[g_nplugins];
    g_nplugins++;
    p->name = name;
    p->init = init;
    p->exec = exec;
    p->teardown = teardown;
    p->state = 0;
    p->enabled = 0;
}

void start_all(void) {
    int i;
    struct Plugin *p;
    for (i = 0; i < g_nplugins; i++) {
        p = &g_plugins[i];
        if (p->init(&p->state) == 0)
            p->enabled = 1;
    }
}

int run_pipeline(int input) {
    int i, v;
    struct Plugin *p;
    v = input;
    for (i = 0; i < g_nplugins; i++) {
        p = &g_plugins[i];
        if (p->enabled)
            v = p->exec(p->state, v);
    }
    return v;
}

void stop_all(void) {
    int i;
    for (i = 0; i < g_nplugins; i++) {
        if (g_plugins[i].enabled) {
            g_plugins[i].teardown(g_plugins[i].state);
            g_plugins[i].enabled = 0;
        }
    }
}

int main(void) {
    int out;
    register_plugin("doubler", doubler_init, doubler_exec, doubler_teardown);
    register_plugin("accum", accum_init, accum_exec, accum_teardown);
    start_all();
    out = run_pipeline(5);
    out = run_pipeline(out);
    stop_all();
    printf("out=%d sink=%d\n", out, g_accum_out);
    return 0;
}
