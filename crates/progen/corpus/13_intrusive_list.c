/* intrusive_list: kernel-style intrusive doubly-linked lists. Link nodes
 * are embedded in payload structs and recovered with container_of-style
 * pointer arithmetic and casts (Complication 1 territory). */

struct Link {
    struct Link *next;
    struct Link *prev;
};

struct Task {
    struct Link node;
    int priority;
    int runtime;
};

struct Timer {
    int deadline;
    struct Link node;
    int fired;
};

struct Link g_run_queue;
struct Link g_timer_list;
int g_scheduled;

void list_init(struct Link *head) {
    head->next = head;
    head->prev = head;
}

void list_insert(struct Link *head, struct Link *item) {
    item->next = head->next;
    item->prev = head;
    head->next->prev = item;
    head->next = item;
}

void list_remove(struct Link *item) {
    item->prev->next = item->next;
    item->next->prev = item->prev;
    item->next = item;
    item->prev = item;
}

int list_empty(struct Link *head) {
    return head->next == head;
}

struct Task *task_of(struct Link *l) {
    /* node is the first member: a direct cast recovers the Task. */
    return (struct Task *)l;
}

struct Timer *timer_of(struct Link *l) {
    /* node is NOT first: recover with byte arithmetic. */
    char *raw;
    raw = (char *)l;
    return (struct Timer *)(raw - sizeof(int));
}

struct Task *spawn(int prio) {
    struct Task *t;
    t = (struct Task *)malloc(sizeof(struct Task));
    t->priority = prio;
    t->runtime = 0;
    list_insert(&g_run_queue, &t->node);
    g_scheduled++;
    return t;
}

struct Timer *arm_timer(int deadline) {
    struct Timer *t;
    t = (struct Timer *)malloc(sizeof(struct Timer));
    t->deadline = deadline;
    t->fired = 0;
    list_insert(&g_timer_list, &t->node);
    return t;
}

struct Task *pick_next(void) {
    struct Link *l;
    struct Task *best, *cand;
    best = 0;
    for (l = g_run_queue.next; l != &g_run_queue; l = l->next) {
        cand = task_of(l);
        if (best == 0 || cand->priority > best->priority)
            best = cand;
    }
    return best;
}

void expire_timers(int now) {
    struct Link *l, *next;
    struct Timer *t;
    l = g_timer_list.next;
    while (l != &g_timer_list) {
        next = l->next;
        t = timer_of(l);
        if (t->deadline <= now) {
            t->fired = 1;
            list_remove(l);
        }
        l = next;
    }
}

int main(void) {
    struct Task *a, *b, *winner;
    struct Timer *t1, *t2;
    list_init(&g_run_queue);
    list_init(&g_timer_list);
    a = spawn(3);
    b = spawn(7);
    t1 = arm_timer(10);
    t2 = arm_timer(50);
    winner = pick_next();
    if (winner != 0)
        winner->runtime = winner->runtime + 5;
    expire_timers(20);
    list_remove(&a->node);
    printf("sched=%d win=%d t1=%d t2=%d\n", g_scheduled,
           winner != 0 ? winner->priority : -1, t1->fired, t2->fired);
    printf("b_runtime=%d empty=%d\n", b->runtime, list_empty(&g_timer_list));
    return 0;
}
