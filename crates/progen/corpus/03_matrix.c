/* matrix: small fixed-size matrix library with struct values and pointer
 * parameters. No structure casting. */

struct Mat3 {
    int cells[9];
    int rows;
    int cols;
};

struct Mat3 g_a, g_b, g_scratch;

void mat_init(struct Mat3 *m, int seed) {
    int i;
    m->rows = 3;
    m->cols = 3;
    for (i = 0; i < 9; i++)
        m->cells[i] = (seed + i * 7) % 11;
}

int mat_get(const struct Mat3 *m, int r, int c) {
    return m->cells[r * 3 + c];
}

void mat_set(struct Mat3 *m, int r, int c, int v) {
    m->cells[r * 3 + c] = v;
}

void mat_add(struct Mat3 *out, const struct Mat3 *x, const struct Mat3 *y) {
    int i;
    out->rows = x->rows;
    out->cols = x->cols;
    for (i = 0; i < 9; i++)
        out->cells[i] = x->cells[i] + y->cells[i];
}

void mat_mul(struct Mat3 *out, const struct Mat3 *x, const struct Mat3 *y) {
    int r, c, k, acc;
    for (r = 0; r < 3; r++) {
        for (c = 0; c < 3; c++) {
            acc = 0;
            for (k = 0; k < 3; k++)
                acc = acc + mat_get(x, r, k) * mat_get(y, k, c);
            mat_set(out, r, c, acc);
        }
    }
    out->rows = 3;
    out->cols = 3;
}

void mat_transpose(struct Mat3 *m) {
    int r, c, tmp;
    for (r = 0; r < 3; r++) {
        for (c = r + 1; c < 3; c++) {
            tmp = mat_get(m, r, c);
            mat_set(m, r, c, mat_get(m, c, r));
            mat_set(m, c, r, tmp);
        }
    }
}

int mat_trace(const struct Mat3 *m) {
    int i, t;
    t = 0;
    for (i = 0; i < 3; i++)
        t = t + mat_get(m, i, i);
    return t;
}

struct Mat3 mat_copy(const struct Mat3 *m) {
    struct Mat3 out;
    out = *m;
    return out;
}

int main(void) {
    struct Mat3 sum;
    mat_init(&g_a, 3);
    mat_init(&g_b, 5);
    mat_add(&g_scratch, &g_a, &g_b);
    mat_mul(&sum, &g_scratch, &g_a);
    mat_transpose(&sum);
    g_scratch = mat_copy(&sum);
    printf("%d\n", mat_trace(&g_scratch));
    return 0;
}
