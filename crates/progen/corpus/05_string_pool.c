/* string_pool: a string interning pool with linear probing over heap
 * buffers. No structure casting. */

struct PoolEntry {
    char *text;
    int length;
    int refcount;
};

struct Pool {
    struct PoolEntry entries[64];
    int used;
    int hits;
    int misses;
};

struct Pool g_pool;

int str_len(const char *s) {
    int n;
    n = 0;
    while (s[n] != 0)
        n++;
    return n;
}

int str_eq(const char *a, const char *b) {
    int i;
    for (i = 0; a[i] != 0 && b[i] != 0; i++) {
        if (a[i] != b[i])
            return 0;
    }
    return a[i] == b[i];
}

char *str_dup(const char *s) {
    char *out;
    int n, i;
    n = str_len(s);
    out = (char *)malloc(n + 1);
    for (i = 0; i <= n; i++)
        out[i] = s[i];
    return out;
}

struct PoolEntry *pool_find(struct Pool *p, const char *s) {
    int i;
    for (i = 0; i < p->used; i++) {
        if (str_eq(p->entries[i].text, s))
            return &p->entries[i];
    }
    return 0;
}

char *pool_intern(struct Pool *p, const char *s) {
    struct PoolEntry *e;
    e = pool_find(p, s);
    if (e != 0) {
        e->refcount++;
        p->hits++;
        return e->text;
    }
    p->misses++;
    if (p->used >= 64)
        return 0;
    e = &p->entries[p->used];
    p->used++;
    e->text = str_dup(s);
    e->length = str_len(s);
    e->refcount = 1;
    return e->text;
}

void pool_release(struct Pool *p, const char *s) {
    struct PoolEntry *e;
    e = pool_find(p, s);
    if (e != 0 && e->refcount > 0)
        e->refcount--;
}

int main(void) {
    char *a, *b, *c;
    a = pool_intern(&g_pool, "alpha");
    b = pool_intern(&g_pool, "beta");
    c = pool_intern(&g_pool, "alpha");
    pool_release(&g_pool, "beta");
    printf("%d %d %d same=%d\n", g_pool.used, g_pool.hits, g_pool.misses,
           a == c);
    if (b != 0)
        printf("%s\n", b);
    return 0;
}
