/* tagged_union: variant records implemented by casting between a generic
 * header struct and per-variant structs sharing the initial tag field —
 * the classic common-initial-sequence idiom. */

struct Value {
    int tag;
};

struct IntValue {
    int tag;
    int payload;
};

struct PairValue {
    int tag;
    struct Value *first;
    struct Value *second;
};

struct StrValue {
    int tag;
    char *text;
    int length;
};

struct Value *g_registry[16];
int g_count;

struct Value *mk_int(int v) {
    struct IntValue *iv;
    iv = (struct IntValue *)malloc(sizeof(struct IntValue));
    iv->tag = 1;
    iv->payload = v;
    return (struct Value *)iv;
}

struct Value *mk_pair(struct Value *a, struct Value *b) {
    struct PairValue *pv;
    pv = (struct PairValue *)malloc(sizeof(struct PairValue));
    pv->tag = 2;
    pv->first = a;
    pv->second = b;
    return (struct Value *)pv;
}

struct Value *mk_str(char *s, int n) {
    struct StrValue *sv;
    sv = (struct StrValue *)malloc(sizeof(struct StrValue));
    sv->tag = 3;
    sv->text = s;
    sv->length = n;
    return (struct Value *)sv;
}

int value_weight(struct Value *v) {
    struct IntValue *iv;
    struct PairValue *pv;
    struct StrValue *sv;
    if (v == 0)
        return 0;
    switch (v->tag) {
    case 1:
        iv = (struct IntValue *)v;
        return iv->payload;
    case 2:
        pv = (struct PairValue *)v;
        return value_weight(pv->first) + value_weight(pv->second);
    case 3:
        sv = (struct StrValue *)v;
        return sv->length;
    }
    return -1;
}

void register_value(struct Value *v) {
    if (g_count < 16) {
        g_registry[g_count] = v;
        g_count++;
    }
}

struct Value *deep_first(struct Value *v) {
    struct PairValue *pv;
    while (v != 0 && v->tag == 2) {
        pv = (struct PairValue *)v;
        v = pv->first;
    }
    return v;
}

int main(void) {
    struct Value *a, *b, *c, *p, *leaf;
    int total, i;
    a = mk_int(5);
    b = mk_str("hello", 5);
    c = mk_int(7);
    p = mk_pair(a, mk_pair(b, c));
    register_value(a);
    register_value(p);
    total = 0;
    for (i = 0; i < g_count; i++)
        total = total + value_weight(g_registry[i]);
    leaf = deep_first(p);
    printf("total=%d leaf_tag=%d\n", total, leaf != 0 ? leaf->tag : -1);
    return 0;
}
