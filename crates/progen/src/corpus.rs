//! The embedded 20-program benchmark corpus.
//!
//! The paper evaluated on 20 C programs (GNU utilities, SPEC benchmarks,
//! and the Landi/Austin suites), 8 of which used no structure casting and
//! 12 of which did. Those sources are not redistributable here, so this
//! corpus substitutes 20 hand-written mini-programs with the same split
//! and the same *character*: typed containers and numeric code on the
//! cast-free side; tagged unions, allocators, packet parsing, OOP-in-C,
//! intrusive lists, void*-callback registries, and serializers on the
//! cast-heavy side (see DESIGN.md §3 and EXPERIMENTS.md for the mapping).

/// One benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusProgram {
    /// Short name (used in experiment tables).
    pub name: &'static str,
    /// Complete C source.
    pub source: &'static str,
    /// Whether the program casts structures or struct pointers (the paper's
    /// 8/12 split in Figure 3).
    pub casty: bool,
}

impl CorpusProgram {
    /// Number of source lines (the paper's Figure 3 "lines" column).
    pub fn line_count(&self) -> usize {
        self.source.lines().count()
    }
}

macro_rules! corpus_entry {
    ($name:literal, $file:literal, $casty:expr) => {
        CorpusProgram {
            name: $name,
            source: include_str!(concat!("../corpus/", $file)),
            casty: $casty,
        }
    };
}

/// The full corpus: 8 cast-free programs first, then 12 cast-heavy ones,
/// mirroring the paper's Figure 3 ordering.
pub const CORPUS: [CorpusProgram; 20] = [
    corpus_entry!("list-utils", "01_list_utils.c", false),
    corpus_entry!("bst", "02_bst.c", false),
    corpus_entry!("matrix", "03_matrix.c", false),
    corpus_entry!("stack-calc", "04_stack_calc.c", false),
    corpus_entry!("string-pool", "05_string_pool.c", false),
    corpus_entry!("queue-sim", "06_queue_sim.c", false),
    corpus_entry!("graph-dfs", "07_graph_dfs.c", false),
    corpus_entry!("hashmap", "08_hashmap.c", false),
    corpus_entry!("tagged-union", "09_tagged_union.c", true),
    corpus_entry!("allocator", "10_allocator.c", true),
    corpus_entry!("packet-parse", "11_packet_parse.c", true),
    corpus_entry!("oop-shapes", "12_oop_shapes.c", true),
    corpus_entry!("intrusive-list", "13_intrusive_list.c", true),
    corpus_entry!("event-loop", "14_event_loop.c", true),
    corpus_entry!("serializer", "15_serializer.c", true),
    corpus_entry!("vm-interp", "16_vm_interp.c", true),
    corpus_entry!("arena", "17_arena.c", true),
    corpus_entry!("plugin-registry", "18_plugin_registry.c", true),
    corpus_entry!("btree-generic", "19_btree_generic.c", true),
    corpus_entry!("symtab", "20_symtab.c", true),
];

/// The corpus as a slice.
pub fn corpus() -> &'static [CorpusProgram] {
    &CORPUS
}

/// Only the cast-heavy programs (the 12 rows of Figures 4–6).
pub fn casty_corpus() -> Vec<&'static CorpusProgram> {
    CORPUS.iter().filter(|p| p.casty).collect()
}

/// Looks up a corpus program by name.
pub fn corpus_program(name: &str) -> Option<&'static CorpusProgram> {
    CORPUS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_paper_split() {
        assert_eq!(CORPUS.len(), 20);
        let casty = CORPUS.iter().filter(|p| p.casty).count();
        assert_eq!(casty, 12);
        assert_eq!(casty_corpus().len(), 12);
        // Cast-free programs come first, as in Figure 3.
        assert!(CORPUS[..8].iter().all(|p| !p.casty));
        assert!(CORPUS[8..].iter().all(|p| p.casty));
    }

    #[test]
    fn all_programs_nonempty_and_named() {
        let mut names = std::collections::HashSet::new();
        for p in corpus() {
            assert!(p.line_count() > 30, "{} too small", p.name);
            assert!(names.insert(p.name), "duplicate name {}", p.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(corpus_program("allocator").is_some());
        assert!(corpus_program("allocator").unwrap().casty);
        assert!(corpus_program("bst").is_some());
        assert!(!corpus_program("bst").unwrap().casty);
        assert!(corpus_program("nope").is_none());
    }
}
