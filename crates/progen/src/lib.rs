//! # structcast-progen
//!
//! Workloads for the structcast evaluation (Yong/Horwitz/Reps, PLDI 1999):
//!
//! * [`corpus`] — the embedded 20-program benchmark suite (8 cast-free, 12
//!   cast-heavy, mirroring the paper's Figure 3 split);
//! * [`generate`] — a seeded synthetic C program generator whose size and
//!   casting frequency are tunable, standing in for the paper's 650–29,000
//!   line benchmarks (see DESIGN.md §3).
//!
//! ```
//! use structcast_progen::{corpus, generate, GenConfig};
//!
//! assert_eq!(corpus().len(), 20);
//! let src = generate(&GenConfig::small(42));
//! assert!(src.contains("struct T0"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod corpus;
mod edits;
mod gen;

pub use corpus::{casty_corpus, corpus, corpus_program, CorpusProgram, CORPUS};
pub use edits::{edit_trace, EditKind, EditStep};
pub use gen::{generate, GenConfig};
