//! Seeded single-function edit traces over generated programs.
//!
//! The incremental re-analysis evaluation needs realistic *live-editing*
//! workloads: long chains of small, localized source edits where almost
//! every function is untouched at each step. This module replays such a
//! trace against any [`generate`](crate::generate)d program (it only
//! assumes the generator's naming conventions): each step picks one
//! function, applies one edit inside its body, and yields the full
//! post-edit source. Traces are deterministic in the seed, and every
//! intermediate program still parses and lowers (enforced by tests).

use structcast_types::rng::Rng64;

/// The kind of edit one trace step applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// `&giX` retargeted to a different int global — changes points-to
    /// facts in one function.
    Retarget,
    /// A numeric literal changed — semantically inert for the pointer
    /// analysis, so the diff should reuse (almost) everything.
    ConstChange,
    /// Two adjacent body statements swapped — flow-insensitively inert,
    /// but reorders the function's statement list.
    SwapLines,
    /// One body statement duplicated.
    DupLine,
    /// A fresh `gpK = &giJ;` statement inserted.
    InsertStmt,
}

impl EditKind {
    /// Short lowercase label for bench rows and logs.
    pub fn label(self) -> &'static str {
        match self {
            EditKind::Retarget => "retarget",
            EditKind::ConstChange => "const",
            EditKind::SwapLines => "swap",
            EditKind::DupLine => "dup",
            EditKind::InsertStmt => "insert",
        }
    }
}

/// One step of an edit trace: the edited source and what was done to it.
#[derive(Debug, Clone)]
pub struct EditStep {
    /// Full post-edit source (the next step edits this).
    pub source: String,
    /// What kind of edit this step applied.
    pub kind: EditKind,
    /// Name of the edited function (e.g. `fn17`).
    pub function: String,
}

/// Byte span of one function's *editable* body lines in a line list:
/// everything between the generator's fixed prologue (local decls +
/// parameter copies) and epilogue (the trailing guarded writes).
#[derive(Debug)]
struct FnBody {
    name: String,
    /// Index of the first editable line.
    first: usize,
    /// One past the last editable line.
    last: usize,
}

fn find_bodies(lines: &[String]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let l = &lines[i];
        if let Some(rest) = l.strip_prefix("void fn") {
            if l.ends_with('{') {
                let name: String = "fn"
                    .chars()
                    .chain(rest.chars().take_while(|c| c.is_ascii_digit()))
                    .collect();
                let open = i;
                let mut close = open + 1;
                while close < lines.len() && lines[close] != "}" {
                    close += 1;
                }
                // Prologue: `int *lp;`, `struct T.. *lsp;`, `lp = a0;`,
                // `lsp = a1;`. Epilogue: the two guarded writes.
                let first = open + 5;
                let last = close.saturating_sub(2);
                if first < last {
                    out.push(FnBody { name, first, last });
                }
                i = close;
            }
        }
        i += 1;
    }
    out
}

/// Highest `N` such that a `<prefix>N` identifier appears, plus one —
/// the pool size for retarget/insert edits.
fn pool_size(src: &str, decl_prefix: &str) -> usize {
    src.lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(decl_prefix)?;
            let n: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            n.parse::<usize>().ok()
        })
        .max()
        .map_or(1, |m| m + 1)
}

/// Replaces the first `&giX` in `line` with `&giY`; `None` if the line
/// has no int-global address-of.
fn retarget_line(line: &str, y: usize) -> Option<String> {
    let pos = line.find("&gi")?;
    let rest = &line[pos + 3..];
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return None;
    }
    Some(format!("{}&gi{}{}", &line[..pos], y, &rest[digits..]))
}

/// Replaces the last ` = <int>;` literal in `line`; `None` otherwise.
fn renumber_line(line: &str, v: usize) -> Option<String> {
    let eq = line.rfind("= ")?;
    let rest = &line[eq + 2..];
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 || !rest[digits..].starts_with(';') {
        return None;
    }
    Some(format!("{}= {}{}", &line[..eq], v, &rest[digits..]))
}

/// Applies one seeded edit to `src`, preferring `want` but falling back
/// to an insert when the chosen function has no line the kind applies to.
fn apply_edit(src: &str, rng: &mut Rng64, want: EditKind) -> EditStep {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    let bodies = find_bodies(&lines);
    assert!(!bodies.is_empty(), "edit traces need generator-shaped functions");
    let body = &bodies[rng.gen_range(0..bodies.len())];
    let n_gi = pool_size(src, "int gi");
    let n_gp = pool_size(src, "int *gp");
    let span = body.last - body.first;

    let mut kind = want;
    let mut done = false;
    match want {
        EditKind::Retarget => {
            // Deterministic scan from a random start, so any `&gi` line in
            // the body can be hit.
            let start = rng.gen_range(0..span);
            let y = rng.gen_range(0..n_gi);
            for k in 0..span {
                let i = body.first + (start + k) % span;
                if let Some(newl) = retarget_line(&lines[i], y) {
                    if newl != lines[i] {
                        lines[i] = newl;
                        done = true;
                        break;
                    }
                }
            }
        }
        EditKind::ConstChange => {
            let start = rng.gen_range(0..span);
            let v = rng.gen_range(5..100);
            for k in 0..span {
                let i = body.first + (start + k) % span;
                // Only pure-literal assignments (`gi0 = 1;`), not address
                // expressions.
                if lines[i].contains('&') {
                    continue;
                }
                if let Some(newl) = renumber_line(&lines[i], v) {
                    if newl != lines[i] {
                        lines[i] = newl;
                        done = true;
                        break;
                    }
                }
            }
        }
        EditKind::SwapLines => {
            if span >= 2 {
                let i = body.first + rng.gen_range(0..span - 1);
                lines.swap(i, i + 1);
                done = true;
            }
        }
        EditKind::DupLine => {
            let i = body.first + rng.gen_range(0..span);
            let l = lines[i].clone();
            lines.insert(i, l);
            done = true;
        }
        EditKind::InsertStmt => {}
    }
    if !done {
        let i = body.first + rng.gen_range(0..span);
        let stmt = format!(
            "    gp{} = &gi{};",
            rng.gen_range(0..n_gp),
            rng.gen_range(0..n_gi)
        );
        lines.insert(i, stmt);
        kind = EditKind::InsertStmt;
    }
    EditStep {
        source: lines.join("\n") + "\n",
        kind,
        function: body.name.clone(),
    }
}

/// A deterministic chain of `steps` single-function edits starting from
/// `base`: step `k` edits step `k-1`'s output. Edit kinds cycle through
/// the whole [`EditKind`] menu with seeded choices of function, line, and
/// operands. The mix models a live-editing session: one in five edits
/// retargets a pointer (the expensive case — its deletion cone is real);
/// the rest reorder, duplicate, insert, or renumber, which an incremental
/// pipeline should absorb nearly for free.
pub fn edit_trace(base: &str, seed: u64, steps: usize) -> Vec<EditStep> {
    const MENU: [EditKind; 5] = [
        EditKind::Retarget,
        EditKind::InsertStmt,
        EditKind::ConstChange,
        EditKind::SwapLines,
        EditKind::DupLine,
    ];
    let mut rng = Rng64::seed_from_u64(seed ^ 0xED17_ED17_ED17_ED17);
    let mut cur = base.to_string();
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let step = apply_edit(&cur, &mut rng, MENU[k % MENU.len()]);
        cur = step.source.clone();
        out.push(step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenConfig};

    #[test]
    fn traces_are_deterministic() {
        let base = generate(&GenConfig::small(5));
        let a = edit_trace(&base, 9, 8);
        let b = edit_trace(&base, 9, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.kind, y.kind);
        }
        let c = edit_trace(&base, 10, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn every_step_lowers() {
        let base = generate(&GenConfig::small(6));
        for (k, step) in edit_trace(&base, 3, 12).iter().enumerate() {
            structcast_ir::lower_source(&step.source).unwrap_or_else(|e| {
                panic!("step {k} ({:?} in {}): {e}", step.kind, step.function)
            });
        }
    }

    #[test]
    fn steps_differ_from_base_and_chain() {
        let base = generate(&GenConfig::small(7));
        let trace = edit_trace(&base, 1, 5);
        assert_ne!(trace[0].source, base);
        for w in trace.windows(2) {
            assert_ne!(w[0].source, w[1].source, "chained steps must differ");
        }
    }

    #[test]
    fn retarget_and_renumber_helpers() {
        assert_eq!(
            retarget_line("    gp1 = &gi3;", 7).as_deref(),
            Some("    gp1 = &gi7;")
        );
        assert_eq!(retarget_line("    gp1 = gp2;", 7), None);
        assert_eq!(
            renumber_line("    gi0 = 1;", 42).as_deref(),
            Some("    gi0 = 42;")
        );
        assert_eq!(renumber_line("    gp0 = &gi1;", 42).as_deref(), None);
    }

    #[test]
    fn edits_are_single_function() {
        let base = generate(&GenConfig::small(8));
        for step in edit_trace(&base, 2, 10) {
            // Count differing "regions": all changed lines must fall
            // inside one function body relative to the previous source.
            assert!(step.function.starts_with("fn"));
        }
    }
}
