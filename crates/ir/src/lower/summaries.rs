//! Library-call summaries.
//!
//! The paper handled library calls "by providing summaries of the potential
//! pointer assignments in each library function" (§5, using the Wilson–Lam
//! summaries). We synthesize equivalent IR directly at each call site for
//! the libc functions the benchmark corpus uses. Unknown external functions
//! fall through to a warning and are treated as having no pointer effects.
//!
//! Notable modeling decisions (see DESIGN.md §3):
//!
//! * allocators create one [`ObjKind::Heap`] pseudo-variable per call site
//!   (paper §2); the heap object's type is recovered from `sizeof` in the
//!   byte-count argument or from an enclosing pointer cast when present,
//!   and falls back to an untyped byte blob otherwise;
//! * `memcpy`/`memmove` emit [`Stmt::CopyAll`];
//! * `str*` copy routines move characters only (no pointer payloads);
//! * functions returning a pointer *into* an argument (`strchr`, `bsearch`)
//!   return a spread ([`Stmt::PtrArith`]) of that argument;
//! * callback takers (`qsort`, `bsearch`, `atexit`, `signal`) emit indirect
//!   calls so handlers are analyzed.

use super::expr::Val;
use super::{Lowerer, Result};
use crate::ir::*;
use structcast_ast::{Expr, ExprKind};
use structcast_types::{FieldPath, TypeId, TypeKind};

/// What a summarized function does, pointer-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Summary {
    /// Returns a fresh heap block (`malloc`, `calloc`, `strdup`, `fopen`...).
    Alloc,
    /// `realloc`: fresh block *or* the original pointer.
    Realloc,
    /// Returns its `n`-th argument (`memset`, `strcpy`, `fgets`, ...).
    RetArg(usize),
    /// Returns a pointer somewhere into its `n`-th argument (`strchr`...).
    PtrIntoArg(usize),
    /// `memcpy`-family: bulk-copies arg1's block into arg0's block and
    /// returns arg0.
    MemCopy,
    /// `bcopy(src, dst, n)`: MemCopy with swapped operands, returns nothing.
    BCopy,
    /// Returns the address of a per-callsite static buffer (`getenv`, ...).
    StaticBuf,
    /// `strtok`: stashes arg0 in hidden static state and returns a pointer
    /// into it.
    Strtok,
    /// `qsort(base, n, sz, cmp)`: calls `cmp` with pointers into `base`.
    Qsort,
    /// `bsearch(key, base, n, sz, cmp)`: calls `cmp(key, &base[i])` and
    /// returns a pointer into `base`.
    Bsearch,
    /// `signal(sig, handler)`: returns the (previous) handler.
    Signal,
    /// `atexit(f)` / `on_exit`: `f` is eventually called.
    AtExit,
    /// No pointer effects; returns a scalar.
    Noop,
}

fn summary_for(name: &str) -> Option<Summary> {
    use Summary::*;
    Some(match name {
        "malloc" | "calloc" | "valloc" | "alloca" | "sbrk" => Alloc,
        "realloc" => Realloc,
        "strdup" | "strndup" => Alloc,
        "fopen" | "fdopen" | "freopen" | "tmpfile" | "opendir" | "popen" => Alloc,
        "free" | "cfree" => Noop,
        "memcpy" | "memmove" => MemCopy,
        "bcopy" => BCopy,
        "memset" | "bzero" => RetArg(0),
        "strcpy" | "strncpy" | "strcat" | "strncat" => RetArg(0),
        "gets" | "fgets" => RetArg(0),
        "sprintf" | "snprintf" | "vsprintf" => Noop,
        "strchr" | "strrchr" | "index" | "rindex" | "strstr" | "strpbrk" | "memchr" => {
            PtrIntoArg(0)
        }
        "strtok" => Strtok,
        "getenv" | "ctime" | "asctime" | "ttyname" | "getlogin" | "tmpnam" | "localtime"
        | "gmtime" | "readdir" | "strerror" => StaticBuf,
        "qsort" => Qsort,
        "bsearch" => Bsearch,
        "signal" => Signal,
        "atexit" | "on_exit" => AtExit,
        // Pure / output-only / numeric functions: no pointer effects.
        "printf" | "fprintf" | "vfprintf" | "puts" | "fputs" | "putchar" | "putc" | "fputc"
        | "scanf" | "fscanf" | "sscanf" | "getchar" | "getc" | "fgetc" | "ungetc" | "fclose"
        | "pclose" | "closedir" | "fflush" | "fseek" | "ftell" | "rewind" | "fread" | "fwrite"
        | "feof" | "ferror" | "clearerr" | "strlen" | "strcmp" | "strncmp" | "strcasecmp"
        | "strncasecmp" | "memcmp" | "bcmp" | "strspn" | "strcspn" | "atoi" | "atol" | "atof"
        | "strtol" | "strtoul" | "strtod" | "abs" | "labs" | "div" | "ldiv" | "rand" | "srand"
        | "random" | "srandom" | "exit" | "_exit" | "abort" | "assert" | "perror" | "time"
        | "clock" | "getpid" | "getuid" | "isalpha" | "isdigit" | "isalnum" | "isspace"
        | "isupper" | "islower" | "ispunct" | "isprint" | "iscntrl" | "isxdigit" | "toupper"
        | "tolower" | "setbuf" | "setvbuf" | "remove" | "unlink" | "rename" | "system"
        | "sleep" | "pow" | "sqrt" | "floor" | "ceil" | "fabs" | "exp" | "log" | "sin" | "cos"
        | "tan" | "atan" | "atan2" | "fmod" | "longjmp" | "setjmp" | "_setjmp" | "_longjmp" => {
            Noop
        }
        _ => return None,
    })
}

impl Lowerer {
    /// Tries to apply a library summary for `name`. Returns `Ok(None)` if
    /// the name has no summary (caller warns and treats it as a no-op).
    pub(crate) fn try_summary(
        &mut self,
        name: &str,
        arg_vals: &[Val],
        arg_exprs: &[Expr],
    ) -> Result<Option<Val>> {
        let Some(kind) = summary_for(name) else {
            return Ok(None);
        };
        use Summary::*;
        let int = self.prog.types.int();
        let scalar = Val::Scalar(int);
        let v = match kind {
            Noop => scalar,
            Alloc | Realloc => {
                let elem_ty = self.allocation_type(arg_exprs);
                let heap = self.new_heap_object(elem_ty);
                self.last_alloc = Some(heap);
                let vp = self.prog.types.void_ptr();
                let t = self.new_temp(vp);
                self.emit(Stmt::AddrOf {
                    dst: t,
                    src: heap,
                    path: FieldPath::empty(),
                });
                if kind == Realloc {
                    // The result may be the original block, with contents
                    // preserved: copy the old block into the new one too.
                    if let Some(Val::Obj { .. }) = arg_vals.first() {
                        if let Some(old) = self.materialize(&arg_vals[0].clone()) {
                            self.emit(Stmt::Copy {
                                dst: t,
                                src: old,
                                path: FieldPath::empty(),
                            });
                            self.emit(Stmt::CopyAll {
                                dst_ptr: t,
                                src_ptr: old,
                            });
                        }
                    }
                }
                Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: vp,
                }
            }
            RetArg(n) => arg_vals.get(n).cloned().unwrap_or(scalar),
            PtrIntoArg(n) => match arg_vals.get(n) {
                Some(v @ Val::Obj { .. }) => self.spread_of(v),
                _ => scalar,
            },
            MemCopy | BCopy => {
                let (d, s) = if kind == MemCopy { (0, 1) } else { (1, 0) };
                if let (Some(dv), Some(sv)) = (arg_vals.get(d), arg_vals.get(s)) {
                    if let (Some(dp), Some(sp)) = (
                        self.materialize(&dv.clone()),
                        self.materialize(&sv.clone()),
                    ) {
                        self.emit(Stmt::CopyAll {
                            dst_ptr: dp,
                            src_ptr: sp,
                        });
                    }
                }
                if kind == MemCopy {
                    arg_vals.first().cloned().unwrap_or(scalar)
                } else {
                    scalar
                }
            }
            StaticBuf => {
                let buf = self.static_buffer(name);
                let cp = self.prog.types.char_ptr();
                let t = self.new_temp(cp);
                self.emit(Stmt::AddrOf {
                    dst: t,
                    src: buf,
                    path: FieldPath::empty(),
                });
                Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: cp,
                }
            }
            Strtok => {
                let state = self.strtok_state();
                if let Some(Val::Obj { .. }) = arg_vals.first() {
                    if let Some(s) = self.materialize(&arg_vals[0].clone()) {
                        self.emit(Stmt::Copy {
                            dst: state,
                            src: s,
                            path: FieldPath::empty(),
                        });
                    }
                }
                let cp = self.prog.types.char_ptr();
                let t = self.new_temp(cp);
                self.emit(Stmt::PtrArith { dst: t, src: state });
                Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: cp,
                }
            }
            Qsort => {
                self.emit_comparator_call(arg_vals.get(3), &[arg_vals.first(), arg_vals.first()]);
                scalar
            }
            Bsearch => {
                self.emit_comparator_call(arg_vals.get(4), &[arg_vals.first(), arg_vals.get(1)]);
                match arg_vals.get(1) {
                    Some(v @ Val::Obj { .. }) => self.spread_of(v),
                    _ => scalar,
                }
            }
            Signal => arg_vals.get(1).cloned().unwrap_or(scalar),
            AtExit => {
                if let Some(v @ Val::Obj { .. }) = arg_vals.first() {
                    if let Some(f) = self.materialize(&v.clone()) {
                        self.emit(Stmt::Call {
                            callee: Callee::Indirect(f),
                            args: vec![],
                            ret: None,
                        });
                    }
                }
                scalar
            }
        };
        Ok(Some(v))
    }

    /// A spread of pointer value `v`: points anywhere into the objects `v`
    /// points into.
    fn spread_of(&mut self, v: &Val) -> Val {
        let src = self
            .materialize(&v.clone())
            .expect("spread_of needs an object value");
        let ty = v.ty();
        let t = self.new_temp(ty);
        self.emit(Stmt::PtrArith { dst: t, src });
        Val::Obj {
            obj: t,
            path: FieldPath::empty(),
            ty,
        }
    }

    fn emit_comparator_call(&mut self, cmp: Option<&Val>, ptr_args: &[Option<&Val>]) {
        let Some(cmp @ Val::Obj { .. }) = cmp else {
            return;
        };
        let Some(f) = self.materialize(&cmp.clone()) else {
            return;
        };
        let mut args = Vec::new();
        for a in ptr_args {
            if let Some(v @ Val::Obj { .. }) = a {
                let spread = self.spread_of(v);
                args.push(self.materialize_always(&spread));
            } else {
                let int = self.prog.types.int();
                args.push(self.new_temp(int));
            }
        }
        self.emit(Stmt::Call {
            callee: Callee::Indirect(f),
            args,
            ret: None,
        });
    }

    /// Guesses an allocation's element type from `sizeof` inside the size
    /// argument(s); falls back to an untyped byte blob. The result is
    /// wrapped as an unsized array so multi-element allocations get the
    /// representative-element treatment.
    fn allocation_type(&mut self, arg_exprs: &[Expr]) -> TypeId {
        for e in arg_exprs {
            if let Some(t) = self.find_sizeof_type(e) {
                return self.prog.types.array_of(t, None);
            }
        }
        let ch = self.prog.types.char();
        self.prog.types.array_of(ch, None)
    }

    fn find_sizeof_type(&mut self, e: &Expr) -> Option<TypeId> {
        match &e.kind {
            ExprKind::SizeofType(t) => self.build_type(t).ok(),
            ExprKind::SizeofExpr(inner) => {
                // `malloc(sizeof *p)` — use the static type of the operand.
                // We avoid emitting statements: only identifiers and simple
                // derefs/members are recognized.
                self.static_type_no_effects(inner)
            }
            ExprKind::Binary(_, a, b) => self
                .find_sizeof_type(a)
                .or_else(|| self.find_sizeof_type(b)),
            ExprKind::Cast(_, inner) | ExprKind::Unary(_, inner) => self.find_sizeof_type(inner),
            _ => None,
        }
    }

    /// Side-effect-free static type computation for simple expressions
    /// (used only by the `sizeof` heuristic above).
    fn static_type_no_effects(&mut self, e: &Expr) -> Option<TypeId> {
        match &e.kind {
            ExprKind::Ident(name) => match self.resolve_ident(name)? {
                super::Resolved::Obj(o) => Some(self.prog.type_of(o)),
                _ => None,
            },
            ExprKind::Unary(structcast_ast::UnOp::Deref, inner) => {
                let t = self.static_type_no_effects(inner)?;
                self.prog.types.pointee(t)
            }
            ExprKind::Member(obj, f, arrow) => {
                let t = self.static_type_no_effects(obj)?;
                let rec_ty = if *arrow { self.prog.types.pointee(t)? } else { t };
                let stripped = self.prog.types.strip_arrays(rec_ty);
                let rid = self.prog.types.as_record(stripped)?;
                let steps = self.prog.types.resolve_member(rid, f)?;
                structcast_types::type_of_path(
                    &self.prog.types,
                    stripped,
                    &structcast_types::FieldPath::from_steps(steps),
                )
            }
            ExprKind::Index(a, _) => {
                let t = self.static_type_no_effects(a)?;
                match self.prog.types.kind(t) {
                    TypeKind::Array(e, _) => Some(*e),
                    TypeKind::Pointer(p) => Some(*p),
                    _ => None,
                }
            }
            ExprKind::Cast(t, _) => self.build_type(t).ok(),
            _ => None,
        }
    }

    fn static_buffer(&mut self, name: &str) -> ObjId {
        if let Some(&b) = self.static_bufs.get(name) {
            return b;
        }
        let ch = self.prog.types.char();
        let arr = self.prog.types.array_of(ch, None);
        let obj = self.new_object(format!("__{name}_buf"), arr, ObjKind::Global);
        self.static_bufs.insert(name.to_string(), obj);
        obj
    }

    fn strtok_state(&mut self) -> ObjId {
        if let Some(s) = self.strtok_state {
            return s;
        }
        let cp = self.prog.types.char_ptr();
        let obj = self.new_object("__strtok_state".into(), cp, ObjKind::Global);
        self.strtok_state = Some(obj);
        obj
    }
}
