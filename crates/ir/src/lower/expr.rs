//! Expression and lvalue lowering.
//!
//! Every assignment in the source decomposes into the paper's five forms by
//! introducing temporaries. For example `s.s1 = &x` becomes
//! `tmp1 = &s.s1; tmp2 = &x; *tmp1 = tmp2` — exactly the normalization shown
//! in the paper's §3 worked example.

use super::{LowerError, Lowerer, Resolved, Result};
use crate::ir::*;
use structcast_ast::{AssignOp, BinOp, Expr, ExprKind, UnOp};
use structcast_types::{FieldPath, TypeId, TypeKind};

/// The value of an expression, as far as pointer analysis cares.
#[derive(Debug, Clone)]
pub(crate) enum Val {
    /// The value stored in `obj.path`, of static type `ty`.
    Obj {
        /// Holding object.
        obj: ObjId,
        /// Field path within it.
        path: FieldPath,
        /// Static type of the value.
        ty: TypeId,
    },
    /// A value that cannot carry a pointer created by `&`/allocation
    /// (integer literals, comparison results, `sizeof`, ...).
    Scalar(TypeId),
}

impl Val {
    pub(crate) fn ty(&self) -> TypeId {
        match self {
            Val::Obj { ty, .. } => *ty,
            Val::Scalar(t) => *t,
        }
    }
}

/// A resolved lvalue.
#[derive(Debug, Clone)]
pub(crate) enum LValue {
    /// `base.path` — a direct variable access.
    Direct {
        base: ObjId,
        path: FieldPath,
        /// Type of the lvalue itself.
        ty: TypeId,
    },
    /// `(*ptr).path` — an access through a pointer.
    Indirect {
        ptr: ObjId,
        path: FieldPath,
        ty: TypeId,
    },
}

impl LValue {
    fn ty(&self) -> TypeId {
        match self {
            LValue::Direct { ty, .. } | LValue::Indirect { ty, .. } => *ty,
        }
    }
}

impl Lowerer {
    /// Lowers an expression for its value, emitting any needed statements.
    pub(crate) fn rvalue(&mut self, e: &Expr) -> Result<Val> {
        let v = self.rvalue_nodecay(e)?;
        Ok(self.decay(v))
    }

    /// Array-to-pointer decay (applied in all rvalue contexts; `&` and
    /// `sizeof` use [`Lowerer::lvalue`] directly and are unaffected).
    fn decay(&mut self, v: Val) -> Val {
        if let Val::Obj { obj, path, ty } = &v {
            if let TypeKind::Array(elem, _) = self.prog.types.kind(*ty) {
                let pt = self.prog.types.pointer_to(*elem);
                let t = self.new_temp(pt);
                self.emit(Stmt::AddrOf {
                    dst: t,
                    src: *obj,
                    path: path.clone(),
                });
                return Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: pt,
                };
            }
        }
        v
    }

    /// Materializes a value into a top-level object (for `Store` sources,
    /// call arguments, etc.). `Scalar` values yield `None`.
    pub(crate) fn materialize(&mut self, v: &Val) -> Option<ObjId> {
        match v {
            Val::Obj { obj, path, ty } => {
                if path.is_empty() {
                    Some(*obj)
                } else {
                    let t = self.new_temp(*ty);
                    self.emit(Stmt::Copy {
                        dst: t,
                        src: *obj,
                        path: path.clone(),
                    });
                    Some(t)
                }
            }
            Val::Scalar(_) => None,
        }
    }

    /// Like [`Lowerer::materialize`] but always produces an object (scalars
    /// get a fact-free temp), for contexts that need one (indirect-call
    /// argument lists).
    pub(crate) fn materialize_always(&mut self, v: &Val) -> ObjId {
        match self.materialize(v) {
            Some(o) => o,
            None => self.new_temp(v.ty()),
        }
    }

    fn rvalue_nodecay(&mut self, e: &Expr) -> Result<Val> {
        self.cur_span = e.span;
        let int = self.prog.types.int();
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) => Ok(Val::Scalar(int)),
            ExprKind::FloatLit(_) => {
                let d = self.prog.types.double();
                Ok(Val::Scalar(d))
            }
            ExprKind::StrLit(s) => {
                // A fresh string-literal object; its address is the value.
                let ch = self.prog.types.char();
                let arr = self.prog.types.array_of(ch, Some(s.len() as u64 + 1));
                let lit = self.new_object(
                    format!("\"{}\"", truncate(s, 16)),
                    arr,
                    ObjKind::StringLit,
                );
                let cp = self.prog.types.char_ptr();
                let t = self.new_temp(cp);
                self.emit(Stmt::AddrOf {
                    dst: t,
                    src: lit,
                    path: FieldPath::empty(),
                });
                Ok(Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: cp,
                })
            }
            ExprKind::Ident(name) => match self.resolve_ident(name) {
                Some(Resolved::Obj(obj)) => Ok(Val::Obj {
                    obj,
                    path: FieldPath::empty(),
                    ty: self.prog.type_of(obj),
                }),
                Some(Resolved::Func(fid)) => Ok(self.function_value(fid)),
                Some(Resolved::EnumConst(_)) => Ok(Val::Scalar(int)),
                None => Err(LowerError::new(
                    format!("use of undeclared identifier `{name}`"),
                    e.span,
                )),
            },
            ExprKind::Unary(UnOp::AddrOf, inner) => self.lower_addr_of(inner),
            ExprKind::Unary(UnOp::Deref, _) | ExprKind::Member(_, _, _) | ExprKind::Index(_, _) => {
                let lv = self.lvalue(e)?;
                self.read_lvalue(&lv)
            }
            ExprKind::Unary(UnOp::PreInc, inner) | ExprKind::Unary(UnOp::PreDec, inner) => {
                self.lower_incdec(inner)
            }
            ExprKind::PostIncDec(inner, _) => self.lower_incdec(inner),
            ExprKind::Unary(op, inner) => {
                // -e, +e, !e, ~e: arithmetic on a pointer spreads (§4.2.1);
                // on non-pointers there is no pointer value at all.
                let v = self.rvalue(inner)?;
                match (op, &v) {
                    (UnOp::Plus, _) => Ok(v),
                    (UnOp::Not, _) => Ok(Val::Scalar(int)),
                    (_, Val::Obj { ty, .. }) if self.prog.types.is_pointer(*ty) => {
                        Ok(self.ptr_arith_result(&v))
                    }
                    _ => Ok(Val::Scalar(v.ty())),
                }
            }
            ExprKind::Binary(op, a, b) => self.lower_binary(*op, a, b),
            ExprKind::Assign(op, lhs, rhs) => self.lower_assign(*op, lhs, rhs),
            ExprKind::Cond(c, t, f) => {
                let _ = self.rvalue(c)?;
                let vt = self.rvalue(t)?;
                let vf = self.rvalue(f)?;
                match (&vt, &vf) {
                    (Val::Scalar(_), Val::Scalar(_)) => Ok(Val::Scalar(vt.ty())),
                    _ => {
                        // Flow-insensitive join: a temp receiving both arms.
                        let ty = if matches!(vt, Val::Obj { .. }) {
                            vt.ty()
                        } else {
                            vf.ty()
                        };
                        let tmp = self.new_temp(ty);
                        for v in [&vt, &vf] {
                            if let Val::Obj { obj, path, .. } = v {
                                self.emit(Stmt::Copy {
                                    dst: tmp,
                                    src: *obj,
                                    path: path.clone(),
                                });
                            }
                        }
                        Ok(Val::Obj {
                            obj: tmp,
                            path: FieldPath::empty(),
                            ty,
                        })
                    }
                }
            }
            ExprKind::Cast(ast_ty, inner) => {
                let alloc_before = self.last_alloc;
                let v = self.rvalue(inner)?;
                let ty = self.build_type(ast_ty)?;
                // `(struct T *)malloc(...)`: refine the fresh heap block's
                // element type from the cast when `sizeof` didn't reveal it.
                if matches!(inner.kind, ExprKind::Call(_, _)) && self.last_alloc != alloc_before {
                    if let (Some(heap), Some(pointee)) =
                        (self.last_alloc, self.prog.types.pointee(ty))
                    {
                        if self.heap_type_is_fallback(heap) {
                            let refined = self.prog.types.array_of(pointee, None);
                            self.prog.objects[heap.0 as usize].ty = refined;
                        }
                    }
                }
                match v {
                    Val::Scalar(_) => Ok(Val::Scalar(ty)),
                    Val::Obj { ty: vty, .. } if vty == ty => Ok(v),
                    Val::Obj { obj, path, .. } => {
                        // The cast is captured by the temp's declared type;
                        // the copy it implies is sized by that type (rule 3).
                        let t = self.new_temp(ty);
                        self.emit(Stmt::Copy {
                            dst: t,
                            src: obj,
                            path,
                        });
                        Ok(Val::Obj {
                            obj: t,
                            path: FieldPath::empty(),
                            ty,
                        })
                    }
                }
            }
            ExprKind::Call(fexpr, args) => self.lower_call(fexpr, args, e.span),
            ExprKind::SizeofExpr(_) | ExprKind::SizeofType(_) => {
                let ul = self.prog.types.ulong();
                Ok(Val::Scalar(ul))
            }
            ExprKind::Comma(a, b) => {
                let _ = self.rvalue(a)?;
                self.rvalue(b)
            }
        }
    }

    /// `&f` / `f` used as a value: a temp holding the function's address.
    pub(crate) fn function_value(&mut self, fid: FuncId) -> Val {
        let f = &self.prog.functions[fid.0 as usize];
        let fobj = f.obj;
        let fnty = f.ty;
        let pt = self.prog.types.pointer_to(fnty);
        let t = self.new_temp(pt);
        self.emit(Stmt::AddrOf {
            dst: t,
            src: fobj,
            path: FieldPath::empty(),
        });
        Val::Obj {
            obj: t,
            path: FieldPath::empty(),
            ty: pt,
        }
    }

    fn lower_addr_of(&mut self, inner: &Expr) -> Result<Val> {
        // &f where f is a function: same as plain f.
        if let ExprKind::Ident(name) = &inner.kind {
            if let Some(Resolved::Func(fid)) = self.resolve_ident(name) {
                return Ok(self.function_value(fid));
            }
        }
        let lv = self.lvalue(inner)?;
        let lty = lv.ty();
        let pt = self.prog.types.pointer_to(lty);
        match lv {
            LValue::Direct { base, path, .. } => {
                let t = self.new_temp(pt);
                self.emit(Stmt::AddrOf {
                    dst: t,
                    src: base,
                    path,
                });
                Ok(Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: pt,
                })
            }
            LValue::Indirect { ptr, path, .. } => {
                if path.is_empty() {
                    // &*p ≡ p
                    Ok(Val::Obj {
                        obj: ptr,
                        path: FieldPath::empty(),
                        ty: self.prog.type_of(ptr),
                    })
                } else {
                    let t = self.new_temp(pt);
                    self.emit(Stmt::AddrField {
                        dst: t,
                        ptr,
                        path,
                    });
                    Ok(Val::Obj {
                        obj: t,
                        path: FieldPath::empty(),
                        ty: pt,
                    })
                }
            }
        }
    }

    fn ptr_arith_result(&mut self, v: &Val) -> Val {
        match v {
            Val::Obj { ty, .. } => {
                let src = self
                    .materialize(v)
                    .expect("pointer value always materializes");
                let t = self.new_temp(*ty);
                self.emit(Stmt::PtrArith { dst: t, src });
                Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: *ty,
                }
            }
            Val::Scalar(t) => Val::Scalar(*t),
        }
    }

    fn lower_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Val> {
        let va = self.rvalue(a)?;
        let vb = self.rvalue(b)?;
        let int = self.prog.types.int();
        if op.is_comparison() {
            return Ok(Val::Scalar(int));
        }
        let a_ptr = self.prog.types.is_pointer(va.ty());
        let b_ptr = self.prog.types.is_pointer(vb.ty());
        match (a_ptr, b_ptr) {
            // p - q: pointer difference is an integer.
            (true, true) if op == BinOp::Sub => Ok(Val::Scalar(int)),
            // Arithmetic moving a pointer: the result may point to any
            // normalized position of the outermost enclosing object
            // (Assumption 1 + §4.2.1).
            (true, _) => Ok(self.ptr_arith_result(&va)),
            (_, true) => Ok(self.ptr_arith_result(&vb)),
            _ => Ok(Val::Scalar(va.ty())),
        }
    }

    fn lower_incdec(&mut self, inner: &Expr) -> Result<Val> {
        let lv = self.lvalue(inner)?;
        let v = self.read_lvalue(&lv)?;
        if self.prog.types.is_pointer(v.ty()) {
            let moved = self.ptr_arith_result(&v);
            self.write_lvalue(&lv, &moved)?;
            Ok(moved)
        } else {
            Ok(Val::Scalar(v.ty()))
        }
    }

    fn lower_assign(&mut self, op: AssignOp, lhs: &Expr, rhs: &Expr) -> Result<Val> {
        let lv = self.lvalue(lhs)?;
        let v = self.rvalue(rhs)?;
        let v = match op {
            AssignOp::Simple => v,
            AssignOp::Add | AssignOp::Sub => {
                // p += i moves p; i += p (weird) also yields a spread value.
                let cur = self.read_lvalue(&lv)?;
                if self.prog.types.is_pointer(cur.ty()) {
                    self.ptr_arith_result(&cur)
                } else if self.prog.types.is_pointer(v.ty()) {
                    self.ptr_arith_result(&v)
                } else {
                    Val::Scalar(cur.ty())
                }
            }
            _ => {
                // Bitwise/shift compound assignments: if the current value is
                // a pointer, the result is arithmetic on it (spread).
                let cur = self.read_lvalue(&lv)?;
                if self.prog.types.is_pointer(cur.ty()) {
                    self.ptr_arith_result(&cur)
                } else {
                    Val::Scalar(cur.ty())
                }
            }
        };
        self.write_lvalue(&lv, &v)?;
        Ok(v)
    }

    // ----- lvalues -----

    pub(crate) fn lvalue(&mut self, e: &Expr) -> Result<LValue> {
        self.cur_span = e.span;
        match &e.kind {
            ExprKind::Ident(name) => match self.resolve_ident(name) {
                Some(Resolved::Obj(obj)) => Ok(LValue::Direct {
                    base: obj,
                    path: FieldPath::empty(),
                    ty: self.prog.type_of(obj),
                }),
                Some(Resolved::Func(fid)) => {
                    let f = &self.prog.functions[fid.0 as usize];
                    Ok(LValue::Direct {
                        base: f.obj,
                        path: FieldPath::empty(),
                        ty: f.ty,
                    })
                }
                Some(Resolved::EnumConst(_)) => Err(LowerError::new(
                    format!("enum constant `{name}` is not an lvalue"),
                    e.span,
                )),
                None => Err(LowerError::new(
                    format!("use of undeclared identifier `{name}`"),
                    e.span,
                )),
            },
            ExprKind::Member(obj_e, fname, arrow) => {
                if *arrow {
                    let v = self.rvalue(obj_e)?;
                    let ptr = self.materialize(&v).ok_or_else(|| {
                        LowerError::new("dereference of non-pointer value", e.span)
                    })?;
                    let pointee = match self.prog.types.kind(v.ty()) {
                        TypeKind::Pointer(p) => *p,
                        _ => {
                            return Err(LowerError::new(
                                format!(
                                    "`->` on non-pointer type {}",
                                    self.prog.types.display(v.ty())
                                ),
                                e.span,
                            ))
                        }
                    };
                    let (path, fty) = self.member_path(pointee, fname, e.span)?;
                    Ok(LValue::Indirect {
                        ptr,
                        path,
                        ty: fty,
                    })
                } else {
                    let lv = self.lvalue(obj_e)?;
                    let (mpath, fty) = self.member_path(lv.ty(), fname, e.span)?;
                    Ok(match lv {
                        LValue::Direct { base, path, .. } => LValue::Direct {
                            base,
                            path: path.concat(&mpath),
                            ty: fty,
                        },
                        LValue::Indirect { ptr, path, .. } => LValue::Indirect {
                            ptr,
                            path: path.concat(&mpath),
                            ty: fty,
                        },
                    })
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let v = self.rvalue(inner)?;
                let ptr = self
                    .materialize(&v)
                    .ok_or_else(|| LowerError::new("dereference of non-pointer value", e.span))?;
                let pointee = match self.prog.types.kind(v.ty()) {
                    TypeKind::Pointer(p) => *p,
                    _ => {
                        return Err(LowerError::new(
                            format!(
                                "dereference of non-pointer type {}",
                                self.prog.types.display(v.ty())
                            ),
                            e.span,
                        ))
                    }
                };
                Ok(LValue::Indirect {
                    ptr,
                    path: FieldPath::empty(),
                    ty: pointee,
                })
            }
            ExprKind::Index(arr, idx) => {
                // a[i] ≡ *(a + i); arrays are collapsed to one representative
                // element, so the index itself contributes nothing.
                let _ = self.rvalue(idx)?;
                let v = self.rvalue(arr)?; // arrays decay here
                let ptr = self
                    .materialize(&v)
                    .ok_or_else(|| LowerError::new("indexing a non-pointer value", e.span))?;
                let elem = match self.prog.types.kind(v.ty()) {
                    TypeKind::Pointer(p) => *p,
                    _ => {
                        return Err(LowerError::new(
                            format!(
                                "indexing non-array/pointer type {}",
                                self.prog.types.display(v.ty())
                            ),
                            e.span,
                        ))
                    }
                };
                Ok(LValue::Indirect {
                    ptr,
                    path: FieldPath::empty(),
                    ty: elem,
                })
            }
            ExprKind::Cast(_, _) => {
                // A cast is not an lvalue in C; `*(T*)&x` style accesses go
                // through Deref, which handles the cast in its rvalue.
                Err(LowerError::new("cast expressions are not lvalues", e.span))
            }
            _ => Err(LowerError::new("expression is not an lvalue", e.span)),
        }
    }

    /// Resolves a member name in (array-stripped) `ty`, descending into
    /// anonymous members; returns the field-index path and the member type.
    fn member_path(
        &self,
        ty: TypeId,
        fname: &str,
        span: structcast_ast::Span,
    ) -> Result<(FieldPath, TypeId)> {
        let stripped = self.prog.types.strip_arrays(ty);
        let rid = self.prog.types.as_record(stripped).ok_or_else(|| {
            LowerError::new(
                format!(
                    "member access `.{fname}` on non-struct type {}",
                    self.prog.types.display(ty)
                ),
                span,
            )
        })?;
        let steps = self.prog.types.resolve_member(rid, fname).ok_or_else(|| {
            LowerError::new(
                format!(
                    "no member `{fname}` in {}",
                    self.prog.types.display(stripped)
                ),
                span,
            )
        })?;
        let path = FieldPath::from_steps(steps);
        let fty = structcast_types::type_of_path(&self.prog.types, stripped, &path)
            .expect("resolve_member returned a valid path");
        Ok((path, fty))
    }

    /// Reads an lvalue, producing its value (introduces Load temporaries for
    /// indirect accesses, per forms 2+4).
    ///
    /// An *array-typed* indirect lvalue is never loaded: in C it decays to
    /// the address of its first element, which still lies inside the
    /// pointed-to object (`&p->arr` aliases `*p`, not a copy of it).
    pub(crate) fn read_lvalue(&mut self, lv: &LValue) -> Result<Val> {
        if let LValue::Indirect { ptr, path, ty } = lv {
            if let TypeKind::Array(elem, _) = self.prog.types.kind(*ty) {
                let pt = self.prog.types.pointer_to(*elem);
                if path.is_empty() {
                    // The decayed value is exactly the pointer's value.
                    return Ok(Val::Obj {
                        obj: *ptr,
                        path: FieldPath::empty(),
                        ty: pt,
                    });
                }
                let t = self.new_temp(pt);
                self.emit(Stmt::AddrField {
                    dst: t,
                    ptr: *ptr,
                    path: path.clone(),
                });
                return Ok(Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: pt,
                });
            }
        }
        match lv {
            LValue::Direct { base, path, ty } => Ok(Val::Obj {
                obj: *base,
                path: path.clone(),
                ty: *ty,
            }),
            LValue::Indirect { ptr, path, ty } => {
                let addr = if path.is_empty() {
                    *ptr
                } else {
                    let pt = self.prog.types.pointer_to(*ty);
                    let t = self.new_temp(pt);
                    self.emit(Stmt::AddrField {
                        dst: t,
                        ptr: *ptr,
                        path: path.clone(),
                    });
                    t
                };
                let t = self.new_temp(*ty);
                self.emit(Stmt::Load { dst: t, ptr: addr });
                Ok(Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty: *ty,
                })
            }
        }
    }

    /// Writes `v` into `lv`, emitting forms 1/2/3/5 as needed.
    pub(crate) fn write_lvalue(&mut self, lv: &LValue, v: &Val) -> Result<()> {
        // Scalars carry no pointers: nothing to record (Assumption 1).
        let (src_obj, src_path) = match v {
            Val::Scalar(_) => return Ok(()),
            Val::Obj { obj, path, .. } => (*obj, path.clone()),
        };
        match lv {
            LValue::Direct { base, path, ty } => {
                if path.is_empty() {
                    // Form 3: dst = src.path
                    self.emit(Stmt::Copy {
                        dst: *base,
                        src: src_obj,
                        path: src_path,
                    });
                } else {
                    // tmp = &base.path; *tmp = src  (forms 1 + 5)
                    let pt = self.prog.types.pointer_to(*ty);
                    let taddr = self.new_temp(pt);
                    self.emit(Stmt::AddrOf {
                        dst: taddr,
                        src: *base,
                        path: path.clone(),
                    });
                    let src = self.materialize_obj(src_obj, src_path, v.ty());
                    self.emit(Stmt::Store {
                        ptr: taddr,
                        src,
                    });
                }
            }
            LValue::Indirect { ptr, path, ty } => {
                let addr = if path.is_empty() {
                    *ptr
                } else {
                    let pt = self.prog.types.pointer_to(*ty);
                    let t = self.new_temp(pt);
                    self.emit(Stmt::AddrField {
                        dst: t,
                        ptr: *ptr,
                        path: path.clone(),
                    });
                    t
                };
                let src = self.materialize_obj(src_obj, src_path, v.ty());
                self.emit(Stmt::Store { ptr: addr, src });
            }
        }
        Ok(())
    }

    /// True if a heap object's type is still the untyped byte-blob fallback
    /// (so a surrounding cast may refine it).
    fn heap_type_is_fallback(&self, heap: ObjId) -> bool {
        let ty = self.prog.type_of(heap);
        match self.prog.types.kind(ty) {
            TypeKind::Array(elem, None) => {
                matches!(
                    self.prog.types.kind(*elem),
                    TypeKind::Int(structcast_types::IntKind::Char)
                )
            }
            _ => false,
        }
    }

    fn materialize_obj(&mut self, obj: ObjId, path: FieldPath, ty: TypeId) -> ObjId {
        if path.is_empty() {
            obj
        } else {
            let t = self.new_temp(ty);
            self.emit(Stmt::Copy {
                dst: t,
                src: obj,
                path,
            });
            t
        }
    }

    // ----- calls -----

    fn lower_call(
        &mut self,
        fexpr: &Expr,
        args: &[Expr],
        call_span: structcast_ast::Span,
    ) -> Result<Val> {
        // Evaluate arguments left to right.
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in args {
            let v = self.rvalue(a)?;
            arg_vals.push(v);
        }
        // Heap sites are identified by the span of the call expression.
        self.cur_span = call_span;

        // Unwrap (*f)(...) and parenthesization: calling through a
        // dereferenced function pointer is the same as calling the pointer.
        let mut target = fexpr;
        while let ExprKind::Unary(UnOp::Deref, inner) = &target.kind {
            target = inner;
        }

        if let ExprKind::Ident(name) = &target.kind {
            match self.resolve_ident(name) {
                Some(Resolved::Func(fid)) => {
                    let defined = self.prog.functions[fid.0 as usize].defined;
                    if !defined {
                        if let Some(v) = self.try_summary(name, &arg_vals, args)? {
                            return Ok(v);
                        }
                        self.warn_once(
                            name,
                            format!(
                                "call to external function `{name}` with no summary; \
                                 assumed to have no pointer effects"
                            ),
                        );
                    }
                    return self.lower_direct_call(fid, &arg_vals);
                }
                Some(Resolved::Obj(_)) => {
                    // Variable of function-pointer type: indirect call below.
                }
                Some(Resolved::EnumConst(_)) => {
                    return Err(LowerError::new(
                        format!("`{name}` is not callable"),
                        fexpr.span,
                    ))
                }
                None => {
                    // Implicitly-declared function: summary or no-op.
                    if let Some(v) = self.try_summary(name, &arg_vals, args)? {
                        return Ok(v);
                    }
                    self.warn_once(
                        name,
                        format!(
                            "call to unknown function `{name}`; \
                             assumed to have no pointer effects"
                        ),
                    );
                    let int = self.prog.types.int();
                    return Ok(Val::Scalar(int));
                }
            }
        }

        // Indirect call through a function-pointer value.
        let v = self.rvalue(target)?;
        let fp = self.materialize(&v).ok_or_else(|| {
            LowerError::new("call through a non-pointer value", fexpr.span)
        })?;
        let arg_objs: Vec<ObjId> = arg_vals
            .iter()
            .map(|v| self.materialize_always(v))
            .collect();
        // Determine the return type from the pointer's signature if any.
        let ret_ty = self
            .prog
            .types
            .pointee(v.ty())
            .and_then(|p| match self.prog.types.kind(p) {
                TypeKind::Function(sig) => Some(sig.ret),
                _ => None,
            });
        let ret = match ret_ty {
            Some(rt) if !matches!(self.prog.types.kind(rt), TypeKind::Void) => {
                Some(self.new_temp(rt))
            }
            _ => None,
        };
        self.emit(Stmt::Call {
            callee: Callee::Indirect(fp),
            args: arg_objs,
            ret,
        });
        Ok(match ret {
            Some(r) => Val::Obj {
                obj: r,
                path: FieldPath::empty(),
                ty: self.prog.type_of(r),
            },
            None => {
                let int = self.prog.types.int();
                Val::Scalar(int)
            }
        })
    }

    /// Direct call: parameter and return binding lowered to `Copy`s, since
    /// the callee is statically known (context-insensitive, paper §1).
    fn lower_direct_call(&mut self, fid: FuncId, arg_vals: &[Val]) -> Result<Val> {
        self.prog.direct_calls.push((self.current_fn, fid));
        let params = self.prog.functions[fid.0 as usize].params.clone();
        let variadic = self.prog.functions[fid.0 as usize].variadic;
        for (i, v) in arg_vals.iter().enumerate() {
            let src = match v {
                Val::Scalar(_) => continue,
                Val::Obj { obj, path, .. } => (*obj, path.clone()),
            };
            if let Some(&p) = params.get(i) {
                self.emit(Stmt::Copy {
                    dst: p,
                    src: src.0,
                    path: src.1,
                });
            } else if variadic || params.is_empty() {
                let va = self.varargs_obj(fid);
                self.emit(Stmt::Copy {
                    dst: va,
                    src: src.0,
                    path: src.1,
                });
            }
        }
        let ret_slot = self.prog.functions[fid.0 as usize].ret_slot;
        Ok(match ret_slot {
            Some(rs) => {
                let ty = self.prog.type_of(rs);
                let t = self.new_temp(ty);
                self.emit(Stmt::Copy {
                    dst: t,
                    src: rs,
                    path: FieldPath::empty(),
                });
                Val::Obj {
                    obj: t,
                    path: FieldPath::empty(),
                    ty,
                }
            }
            None => {
                let int = self.prog.types.int();
                Val::Scalar(int)
            }
        })
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}
