//! Statement and initializer lowering.
//!
//! The analysis is flow-insensitive (paper §1), so control flow is simply
//! walked: every assignment anywhere in the body contributes statements,
//! conditions are lowered for their side effects, and branch structure is
//! otherwise ignored.

use super::{Lowerer, Result};
use crate::ir::*;
use structcast_ast::{BlockItem, ExprKind, ForInit, Initializer, Stmt as AStmt};
use structcast_types::{FieldPath, TypeId, TypeKind};

impl Lowerer {
    pub(crate) fn lower_stmt(&mut self, s: &AStmt) -> Result<()> {
        match s {
            AStmt::Expr(None) => Ok(()),
            AStmt::Expr(Some(e)) => {
                let _ = self.rvalue(e)?;
                Ok(())
            }
            AStmt::Block(items) => {
                self.push_scope();
                for it in items {
                    match it {
                        BlockItem::Decl(d) => self.lower_local_declaration(d)?,
                        BlockItem::Stmt(s) => self.lower_stmt(s)?,
                    }
                }
                self.pop_scope();
                Ok(())
            }
            AStmt::If { cond, then, els } => {
                let _ = self.rvalue(cond)?;
                self.lower_stmt(then)?;
                if let Some(e) = els {
                    self.lower_stmt(e)?;
                }
                Ok(())
            }
            AStmt::While { cond, body } | AStmt::DoWhile { body, cond } => {
                let _ = self.rvalue(cond)?;
                self.lower_stmt(body)
            }
            AStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                match init {
                    Some(ForInit::Decl(d)) => self.lower_local_declaration(d)?,
                    Some(ForInit::Expr(e)) => {
                        let _ = self.rvalue(e)?;
                    }
                    None => {}
                }
                if let Some(c) = cond {
                    let _ = self.rvalue(c)?;
                }
                if let Some(st) = step {
                    let _ = self.rvalue(st)?;
                }
                self.lower_stmt(body)?;
                self.pop_scope();
                Ok(())
            }
            AStmt::Switch { cond, body } => {
                let _ = self.rvalue(cond)?;
                self.lower_stmt(body)
            }
            AStmt::Case(v, inner) => {
                // Case labels are constant expressions; evaluate for
                // diagnostics only.
                let _ = self.const_eval(v);
                self.lower_stmt(inner)
            }
            AStmt::Default(inner) | AStmt::Labeled(_, inner) => self.lower_stmt(inner),
            AStmt::Return(v) => {
                if let Some(e) = v {
                    let val = self.rvalue(e)?;
                    let fid = self.current_fn.expect("return outside function");
                    if let Some(rs) = self.prog.functions[fid.0 as usize].ret_slot {
                        if let super::Val::Obj { obj, path, .. } = &val {
                            self.emit(Stmt::Copy {
                                dst: rs,
                                src: *obj,
                                path: path.clone(),
                            });
                        }
                    }
                }
                Ok(())
            }
            AStmt::Break | AStmt::Continue | AStmt::Goto(_) => Ok(()),
        }
    }

    /// Lowers an initializer for `base.path` of type `ty`.
    ///
    /// Brace lists are matched against the type structure; array element
    /// initializers all land on the representative element; unions take
    /// every listed member conservatively (flow-insensitively they may all
    /// have been the active member at some point — and a brace list only
    /// ever names the first in C89 anyway).
    pub(crate) fn lower_initializer(
        &mut self,
        base: ObjId,
        path: FieldPath,
        ty: TypeId,
        init: &Initializer,
    ) -> Result<()> {
        match init {
            Initializer::Expr(e) => {
                // `char buf[] = "..."`: character data carries no pointers.
                if matches!(e.kind, ExprKind::StrLit(_)) {
                    if let TypeKind::Array(_, _) = self.prog.types.kind(ty) {
                        return Ok(());
                    }
                }
                let v = self.rvalue(e)?;
                let lv = super::LValue::Direct {
                    base,
                    path,
                    ty,
                };
                self.write_lvalue(&lv, &v)
            }
            Initializer::List(items) => {
                let stripped = self.prog.types.strip_arrays(ty);
                match self.prog.types.kind(stripped) {
                    TypeKind::Record(rid) => {
                        let rid = *rid;
                        let fields: Vec<TypeId> = self
                            .prog
                            .types
                            .record(rid)
                            .fields
                            .iter()
                            .map(|f| f.ty)
                            .collect();
                        let is_union = self.prog.types.record(rid).is_union;
                        if matches!(self.prog.types.kind(ty), TypeKind::Array(_, _)) {
                            // Array of aggregates: each item initializes one
                            // (collapsed) element.
                            for item in items {
                                self.lower_initializer(base, path.clone(), stripped, item)?;
                            }
                            return Ok(());
                        }
                        for (i, item) in items.iter().enumerate() {
                            let idx = if is_union { 0 } else { i };
                            if let Some(&fty) = fields.get(idx) {
                                self.lower_initializer(
                                    base,
                                    path.child(idx as u32),
                                    fty,
                                    item,
                                )?;
                            }
                            if is_union {
                                break;
                            }
                        }
                        Ok(())
                    }
                    _ => {
                        // Scalar or array-of-scalar target: every item folds
                        // onto the representative position.
                        for item in items {
                            self.lower_initializer(base, path.clone(), stripped, item)?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}
