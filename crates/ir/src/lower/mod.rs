//! AST → normalized IR lowering.
//!
//! Lowering runs in two passes over the translation unit:
//!
//! 1. **Registration** — all file-scope types, globals, and function
//!    signatures (including parameter objects) are created, so forward
//!    references and mutual recursion work.
//! 2. **Body lowering** — global initializers and function bodies are
//!    translated to the five normalized assignment forms, introducing
//!    temporaries exactly as the paper's §2/§3 examples do.

mod expr;
mod stmt;
mod summaries;

pub(crate) use expr::{LValue, Val};

use crate::ir::*;
use std::collections::HashMap;
use structcast_ast::{
    AstType, Declaration, EnumSpec, Expr, ExprKind, ExternalDecl, FieldDecl, FunctionDef,
    Initializer, RecordSpec, Span, Storage, TranslationUnit, TypeSpec, UnOp,
};
use structcast_types::{Field, FieldPath, FuncSig, Layout, RecordId, TypeId, TypeKind};

/// An error produced during lowering (undeclared names, bad member
/// accesses, malformed types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    message: String,
    span: Span,
}

impl LowerError {
    /// Creates an error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        LowerError {
            message: message.into(),
            span,
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where it happened.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for LowerError {}

/// Result alias for lowering.
pub type Result<T> = std::result::Result<T, LowerError>;

/// Lowers a parsed translation unit to a normalized [`Program`].
///
/// # Errors
///
/// Returns a [`LowerError`] for undeclared identifiers, unknown members,
/// or unresolvable types. Calls to *unknown external* functions are not
/// errors: they produce a [`Program::warnings`] entry and have no pointer
/// effect (known libc functions get real summaries; see `summaries`).
pub fn lower(tu: &TranslationUnit) -> Result<Program> {
    let mut lw = Lowerer::new();
    lw.run(tu)?;
    Ok(lw.prog)
}

/// Convenience: parse C source and lower it in one call.
///
/// # Errors
///
/// Returns the parse error (wrapped) or the lowering error.
pub fn lower_source(src: &str) -> Result<Program> {
    let tu = structcast_ast::parse(src)
        .map_err(|e| LowerError::new(format!("parse error: {}", e.message()), e.span()))?;
    lower(&tu)
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Resolved {
    Obj(ObjId),
    Func(FuncId),
    EnumConst(i64),
}

pub(crate) struct Lowerer {
    pub(crate) prog: Program,
    globals: HashMap<String, Resolved>,
    /// Local name scopes (innermost last); active while lowering a body.
    locals: Vec<HashMap<String, ObjId>>,
    typedefs: Vec<HashMap<String, TypeId>>,
    tags: Vec<HashMap<String, RecordId>>,
    enum_tags: Vec<HashMap<String, TypeId>>,
    pub(crate) current_fn: Option<FuncId>,
    temp_count: u32,
    heap_sites: u32,
    anon_count: u32,
    /// Layout used only for `sizeof` in constant expressions (array bounds,
    /// enum values). The analysis itself is run under layouts chosen later.
    consteval_layout: Layout,
    pub(crate) cur_span: Span,
    /// Deferred global initializers: (object, type, initializer).
    pending_inits: Vec<(ObjId, TypeId, Initializer)>,
    /// Names already warned about (one warning per unknown function).
    warned: std::collections::HashSet<String>,
    /// The most recent heap object created by an allocator summary; lets a
    /// surrounding pointer cast refine the allocation's element type.
    pub(crate) last_alloc: Option<ObjId>,
    /// Per-function static result buffers (`getenv`, `ctime`, ...).
    pub(crate) static_bufs: HashMap<String, ObjId>,
    /// Hidden state threading `strtok(NULL, ...)` calls together.
    pub(crate) strtok_state: Option<ObjId>,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            prog: Program::default(),
            globals: HashMap::new(),
            locals: Vec::new(),
            typedefs: vec![HashMap::new()],
            tags: vec![HashMap::new()],
            enum_tags: vec![HashMap::new()],
            current_fn: None,
            temp_count: 0,
            heap_sites: 0,
            anon_count: 0,
            consteval_layout: Layout::ilp32(),
            cur_span: Span::dummy(),
            pending_inits: Vec::new(),
            warned: std::collections::HashSet::new(),
            last_alloc: None,
            static_bufs: HashMap::new(),
            strtok_state: None,
        }
    }

    fn run(&mut self, tu: &TranslationUnit) -> Result<()> {
        // Pass 1: register all file-scope declarations.
        for d in &tu.decls {
            match d {
                ExternalDecl::Declaration(decl) => self.register_declaration(decl, true)?,
                ExternalDecl::Function(f) => {
                    self.register_function_def(f)?;
                }
            }
        }
        // Pass 2a: global initializers.
        let inits = std::mem::take(&mut self.pending_inits);
        for (obj, ty, init) in &inits {
            self.lower_initializer(*obj, FieldPath::empty(), *ty, init)?;
        }
        // Pass 2b: function bodies.
        for d in &tu.decls {
            if let ExternalDecl::Function(f) = d {
                self.lower_function_body(f)?;
            }
        }
        Ok(())
    }

    // ----- objects, temps, statements -----

    pub(crate) fn new_object(&mut self, name: String, ty: TypeId, kind: ObjKind) -> ObjId {
        let id = ObjId(self.prog.objects.len() as u32);
        self.prog.objects.push(Object { name, ty, kind });
        id
    }

    pub(crate) fn new_temp(&mut self, ty: TypeId) -> ObjId {
        self.temp_count += 1;
        let name = format!("t${}", self.temp_count);
        self.new_object(name, ty, ObjKind::Temp(self.current_fn))
    }

    pub(crate) fn new_heap_object(&mut self, pointee: TypeId) -> ObjId {
        self.heap_sites += 1;
        let site = self.heap_sites;
        let name = format!("malloc_{site}");
        let obj = self.new_object(name, pointee, ObjKind::Heap(site));
        self.prog.heap_spans.push((obj, self.cur_span));
        obj
    }

    pub(crate) fn emit(&mut self, s: Stmt) {
        self.prog.stmts.push(s);
        self.prog.spans.push(self.cur_span);
        self.prog.stmt_funcs.push(self.current_fn);
    }

    pub(crate) fn warn_once(&mut self, key: &str, msg: String) {
        if self.warned.insert(key.to_string()) {
            self.prog.warnings.push(msg);
        }
    }

    // ----- scopes -----

    pub(crate) fn push_scope(&mut self) {
        self.locals.push(HashMap::new());
        self.typedefs.push(HashMap::new());
        self.tags.push(HashMap::new());
        self.enum_tags.push(HashMap::new());
    }

    pub(crate) fn pop_scope(&mut self) {
        self.locals.pop();
        self.typedefs.pop();
        self.tags.pop();
        self.enum_tags.pop();
    }

    pub(crate) fn declare_local(&mut self, name: &str, obj: ObjId) {
        self.locals
            .last_mut()
            .expect("declare_local outside a function")
            .insert(name.to_string(), obj);
    }

    pub(crate) fn resolve_ident(&self, name: &str) -> Option<Resolved> {
        for scope in self.locals.iter().rev() {
            if let Some(&o) = scope.get(name) {
                return Some(Resolved::Obj(o));
            }
        }
        // Enum constants are stored in the globals map too (scoped enum
        // constants are folded into the nearest map during type building).
        self.globals.get(name).copied()
    }

    pub(crate) fn declare_enum_const(&mut self, name: &str, value: i64) {
        // Enum constants land in the global namespace; local shadowing of
        // enum constants by variables still works because locals win.
        self.globals
            .entry(name.to_string())
            .or_insert(Resolved::EnumConst(value));
    }

    fn lookup_typedef(&self, name: &str) -> Option<TypeId> {
        for scope in self.typedefs.iter().rev() {
            if let Some(&t) = scope.get(name) {
                return Some(t);
            }
        }
        None
    }

    fn lookup_tag(&self, name: &str) -> Option<RecordId> {
        for scope in self.tags.iter().rev() {
            if let Some(&r) = scope.get(name) {
                return Some(r);
            }
        }
        None
    }

    // ----- declarations -----

    /// Registers a declaration. In pass 1 (`file_scope = true`) initializers
    /// are deferred; locally they are lowered immediately by the caller.
    fn register_declaration(&mut self, decl: &Declaration, file_scope: bool) -> Result<()> {
        self.cur_span = decl.span;
        // Build the base type exactly once: declarators embed a clone of the
        // base spec, so rebuilding it per item would re-define records.
        let base_built = self.build_type(&decl.base)?;
        for item in &decl.items {
            self.cur_span = item.span;
            let ty = self.build_type_with_base(&item.ty, base_built)?;
            match decl.storage {
                Storage::Typedef => {
                    self.typedefs
                        .last_mut()
                        .expect("typedef scope")
                        .insert(item.name.clone(), ty);
                }
                _ => {
                    if matches!(self.prog.types.kind(ty), TypeKind::Function(_)) {
                        self.register_function_sig(&item.name, ty, &item.ty, false)?;
                    } else if file_scope {
                        let obj = self.declare_global_var(&item.name, ty);
                        if let Some(init) = &item.init {
                            self.pending_inits.push((obj, ty, init.clone()));
                        }
                    } else {
                        unreachable!("register_declaration called locally")
                    }
                }
            }
        }
        Ok(())
    }

    fn declare_global_var(&mut self, name: &str, ty: TypeId) -> ObjId {
        if let Some(Resolved::Obj(existing)) = self.globals.get(name).copied() {
            // Redeclaration (e.g. extern then definition): prefer the more
            // complete type.
            let old = self.prog.type_of(existing);
            if old != ty && self.is_more_complete(ty, old) {
                self.prog.objects[existing.0 as usize].ty = ty;
            }
            return existing;
        }
        let obj = self.new_object(name.to_string(), ty, ObjKind::Global);
        self.globals.insert(name.to_string(), Resolved::Obj(obj));
        obj
    }

    fn is_more_complete(&self, newer: TypeId, older: TypeId) -> bool {
        matches!(
            (self.prog.types.kind(newer), self.prog.types.kind(older)),
            (TypeKind::Array(_, Some(_)), TypeKind::Array(_, None))
        )
    }

    /// Registers (or updates) a function from a declarator. `defining` marks
    /// a definition (body present).
    fn register_function_sig(
        &mut self,
        name: &str,
        fnty: TypeId,
        ast_ty: &AstType,
        defining: bool,
    ) -> Result<FuncId> {
        let param_names: Vec<Option<String>> = match ast_ty {
            AstType::Function { params, .. } => params.iter().map(|p| p.name.clone()).collect(),
            _ => vec![],
        };
        let (sig_params, sig_ret, variadic) = match self.prog.types.kind(fnty) {
            TypeKind::Function(sig) => (sig.params.clone(), sig.ret, sig.variadic),
            _ => unreachable!("register_function_sig on non-function type"),
        };

        if let Some(Resolved::Func(fid)) = self.globals.get(name).copied() {
            // Update an earlier prototype.
            let need_params = sig_params.len();
            let have = self.prog.functions[fid.0 as usize].params.len();
            if need_params > have {
                for (i, &pty) in sig_params.iter().enumerate().skip(have) {
                    let pname = param_names
                        .get(i)
                        .cloned()
                        .flatten()
                        .unwrap_or_else(|| format!("{name}::p{i}"));
                    let p = self.new_object(
                        format!("{name}::{pname}"),
                        pty,
                        ObjKind::Param(fid, i as u32),
                    );
                    self.prog.functions[fid.0 as usize].params.push(p);
                }
            }
            if defining {
                self.prog.functions[fid.0 as usize].defined = true;
                self.prog.functions[fid.0 as usize].ty = fnty;
                // Refresh param types from the definition.
                for (i, &pt) in sig_params.iter().enumerate() {
                    let pobj = self.prog.functions[fid.0 as usize].params[i];
                    self.prog.objects[pobj.0 as usize].ty = pt;
                }
            }
            return Ok(fid);
        }

        let fid = FuncId(self.prog.functions.len() as u32);
        let obj = self.new_object(name.to_string(), fnty, ObjKind::Function(fid));
        let params: Vec<ObjId> = sig_params
            .iter()
            .enumerate()
            .map(|(i, &pt)| {
                let pname = param_names
                    .get(i)
                    .cloned()
                    .flatten()
                    .unwrap_or_else(|| format!("p{i}"));
                self.new_object(format!("{name}::{pname}"), pt, ObjKind::Param(fid, i as u32))
            })
            .collect();
        let ret_slot = if matches!(self.prog.types.kind(sig_ret), TypeKind::Void) {
            None
        } else {
            Some(self.new_object(format!("{name}::$ret"), sig_ret, ObjKind::Ret(fid)))
        };
        self.prog.functions.push(Function {
            name: name.to_string(),
            id: fid,
            obj,
            params,
            ret_slot,
            ty: fnty,
            defined: defining,
            variadic,
            varargs: None,
        });
        self.globals.insert(name.to_string(), Resolved::Func(fid));
        Ok(fid)
    }

    fn register_function_def(&mut self, f: &FunctionDef) -> Result<FuncId> {
        self.cur_span = f.span;
        let fnty = self.build_type(&f.ty)?;
        self.register_function_sig(&f.name, fnty, &f.ty, true)
    }

    pub(crate) fn varargs_obj(&mut self, fid: FuncId) -> ObjId {
        if let Some(v) = self.prog.functions[fid.0 as usize].varargs {
            return v;
        }
        let vp = self.prog.types.void_ptr();
        let name = format!("{}::$varargs", self.prog.functions[fid.0 as usize].name);
        let obj = self.new_object(name, vp, ObjKind::VarArgs(fid));
        self.prog.functions[fid.0 as usize].varargs = Some(obj);
        obj
    }

    fn lower_function_body(&mut self, f: &FunctionDef) -> Result<()> {
        let fid = match self.globals.get(&f.name) {
            Some(Resolved::Func(fid)) => *fid,
            _ => unreachable!("function body without registration"),
        };
        self.current_fn = Some(fid);
        self.push_scope();
        // Bind parameter names to the (stable) parameter objects.
        let params = self.prog.functions[fid.0 as usize].params.clone();
        if let AstType::Function { params: decls, .. } = &f.ty {
            for (i, pd) in decls.iter().enumerate() {
                if let (Some(name), Some(&pobj)) = (&pd.name, params.get(i)) {
                    self.declare_local(name, pobj);
                }
            }
        }
        self.lower_stmt(&f.body)?;
        self.pop_scope();
        self.current_fn = None;
        Ok(())
    }

    // ----- type building -----

    pub(crate) fn build_type(&mut self, ty: &AstType) -> Result<TypeId> {
        Ok(match ty {
            AstType::Base(spec) => self.build_spec(spec)?,
            AstType::Pointer(inner) => {
                let i = self.build_type(inner)?;
                self.prog.types.pointer_to(i)
            }
            AstType::Array(inner, n) => {
                let i = self.build_type(inner)?;
                let len = match n {
                    Some(e) => self.const_eval(e).map(|v| v.max(0) as u64),
                    None => None,
                };
                self.prog.types.array_of(i, len)
            }
            AstType::Function {
                ret,
                params,
                variadic,
            } => {
                let r = self.build_type(ret)?;
                let ps: Result<Vec<TypeId>> =
                    params.iter().map(|p| self.build_type(&p.ty)).collect();
                self.prog.types.function(FuncSig {
                    ret: r,
                    params: ps?,
                    variadic: *variadic,
                })
            }
        })
    }

    /// Builds a declarator's type around an already-built base type,
    /// avoiding re-evaluation of the (side-effecting) base specifier.
    pub(crate) fn build_type_with_base(&mut self, ty: &AstType, base: TypeId) -> Result<TypeId> {
        Ok(match ty {
            AstType::Base(_) => base,
            AstType::Pointer(inner) => {
                let i = self.build_type_with_base(inner, base)?;
                self.prog.types.pointer_to(i)
            }
            AstType::Array(inner, n) => {
                let i = self.build_type_with_base(inner, base)?;
                let len = match n {
                    Some(e) => self.const_eval(e).map(|v| v.max(0) as u64),
                    None => None,
                };
                self.prog.types.array_of(i, len)
            }
            AstType::Function {
                ret,
                params,
                variadic,
            } => {
                let r = self.build_type_with_base(ret, base)?;
                let ps: Result<Vec<TypeId>> =
                    params.iter().map(|p| self.build_type(&p.ty)).collect();
                self.prog.types.function(FuncSig {
                    ret: r,
                    params: ps?,
                    variadic: *variadic,
                })
            }
        })
    }

    fn build_spec(&mut self, spec: &TypeSpec) -> Result<TypeId> {
        use structcast_types::{FloatKind, IntKind};
        let t = &mut self.prog.types;
        Ok(match spec {
            TypeSpec::Void => t.void(),
            TypeSpec::Char => t.intern(TypeKind::Int(IntKind::Char)),
            TypeSpec::SChar => t.intern(TypeKind::Int(IntKind::SChar)),
            TypeSpec::UChar => t.intern(TypeKind::Int(IntKind::UChar)),
            TypeSpec::Short => t.intern(TypeKind::Int(IntKind::Short)),
            TypeSpec::UShort => t.intern(TypeKind::Int(IntKind::UShort)),
            TypeSpec::Int => t.int(),
            TypeSpec::UInt => t.uint(),
            TypeSpec::Long => t.long(),
            TypeSpec::ULong => t.ulong(),
            TypeSpec::LongLong => t.intern(TypeKind::Int(IntKind::LongLong)),
            TypeSpec::ULongLong => t.intern(TypeKind::Int(IntKind::ULongLong)),
            TypeSpec::Float => t.float(),
            TypeSpec::Double => t.double(),
            TypeSpec::LongDouble => t.intern(TypeKind::Float(FloatKind::LongDouble)),
            TypeSpec::Typedef(name) => self.lookup_typedef(name).ok_or_else(|| {
                LowerError::new(format!("unknown typedef name `{name}`"), self.cur_span)
            })?,
            TypeSpec::Struct(rs) => self.build_record(rs, false)?,
            TypeSpec::Union(rs) => self.build_record(rs, true)?,
            TypeSpec::Enum(es) => self.build_enum(es)?,
        })
    }

    fn build_record(&mut self, rs: &RecordSpec, is_union: bool) -> Result<TypeId> {
        let rid = match (&rs.tag, &rs.fields) {
            (Some(tag), Some(_)) => {
                // Definition: reuse an incomplete record declared in the
                // *current* scope, otherwise create a fresh one here.
                let cur = self.tags.last().expect("tag scope");
                match cur.get(tag) {
                    Some(&r) if !self.prog.types.record(r).complete => r,
                    // An already-complete record with the same tag in this
                    // scope: treat the rebuild as the same definition (field
                    // declarators clone their base spec, so this happens for
                    // legal code; true same-scope redefinitions are UB in C
                    // and accepted silently here).
                    Some(&r) => {
                        return Ok(self.prog.types.intern(TypeKind::Record(r)));
                    }
                    _ => {
                        let (r, _) = self.prog.types.new_record(Some(tag.clone()), is_union);
                        self.tags
                            .last_mut()
                            .expect("tag scope")
                            .insert(tag.clone(), r);
                        r
                    }
                }
            }
            (Some(tag), None) => {
                // Reference: find in any scope, else declare incomplete at
                // file scope so cross-function uses unify.
                match self.lookup_tag(tag) {
                    Some(r) => r,
                    None => {
                        let (r, _) = self.prog.types.new_record(Some(tag.clone()), is_union);
                        self.tags[0].insert(tag.clone(), r);
                        r
                    }
                }
            }
            (None, Some(_)) => {
                let (r, _) = self.prog.types.new_record(None, is_union);
                r
            }
            (None, None) => {
                return Err(LowerError::new(
                    "struct/union without tag or body",
                    rs.span,
                ))
            }
        };

        if let Some(field_decls) = &rs.fields {
            let fields = self.build_fields(field_decls)?;
            self.prog.types.complete_record(rid, fields);
        }
        Ok(self.prog.types.intern(TypeKind::Record(rid)))
    }

    fn build_fields(&mut self, decls: &[FieldDecl]) -> Result<Vec<Field>> {
        let mut out = Vec::new();
        for fd in decls {
            self.cur_span = fd.span;
            let ty = self.build_type(&fd.ty)?;
            match &fd.name {
                Some(name) => out.push(Field {
                    name: name.clone(),
                    ty,
                    anonymous: false,
                }),
                None => {
                    if self.prog.types.is_record_like(ty) {
                        // Anonymous struct/union member.
                        self.anon_count += 1;
                        out.push(Field {
                            name: format!("__anon{}", self.anon_count),
                            ty,
                            anonymous: true,
                        });
                    }
                    // Unnamed bit-field padding: no storage we care about.
                }
            }
        }
        Ok(out)
    }

    fn build_enum(&mut self, es: &EnumSpec) -> Result<TypeId> {
        if let Some(items) = &es.items {
            let mut next: i64 = 0;
            for (name, val) in items {
                if let Some(e) = val {
                    if let Some(v) = self.const_eval(e) {
                        next = v;
                    }
                }
                self.declare_enum_const(name, next);
                next += 1;
            }
            let ty = self.prog.types.intern(TypeKind::Enum(es.tag.clone()));
            if let Some(tag) = &es.tag {
                self.enum_tags
                    .last_mut()
                    .expect("enum scope")
                    .insert(tag.clone(), ty);
            }
            Ok(ty)
        } else {
            let tag = es.tag.clone().ok_or_else(|| {
                LowerError::new("enum without tag or body", es.span)
            })?;
            for scope in self.enum_tags.iter().rev() {
                if let Some(&t) = scope.get(&tag) {
                    return Ok(t);
                }
            }
            // Reference before definition: intern by tag.
            Ok(self.prog.types.intern(TypeKind::Enum(Some(tag))))
        }
    }

    // ----- constant expressions -----

    /// Best-effort constant evaluation for array bounds and enum values.
    ///
    /// `sizeof` is evaluated under the ILP32 layout (see DESIGN.md §3);
    /// non-constant expressions yield `None`.
    pub(crate) fn const_eval(&mut self, e: &Expr) -> Option<i64> {
        use structcast_ast::BinOp::*;
        match &e.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Some(*v),
            ExprKind::Ident(name) => match self.resolve_ident(name) {
                Some(Resolved::EnumConst(v)) => Some(v),
                _ => None,
            },
            ExprKind::Unary(UnOp::Neg, inner) => self.const_eval(inner).map(|v| -v),
            ExprKind::Unary(UnOp::Plus, inner) => self.const_eval(inner),
            ExprKind::Unary(UnOp::BitNot, inner) => self.const_eval(inner).map(|v| !v),
            ExprKind::Unary(UnOp::Not, inner) => {
                self.const_eval(inner).map(|v| i64::from(v == 0))
            }
            ExprKind::Binary(op, a, b) => {
                let x = self.const_eval(a)?;
                let y = self.const_eval(b)?;
                Some(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return None;
                        }
                        x / y
                    }
                    Rem => {
                        if y == 0 {
                            return None;
                        }
                        x % y
                    }
                    Shl => x.wrapping_shl(y as u32),
                    Shr => x.wrapping_shr(y as u32),
                    BitAnd => x & y,
                    BitOr => x | y,
                    BitXor => x ^ y,
                    Lt => i64::from(x < y),
                    Gt => i64::from(x > y),
                    Le => i64::from(x <= y),
                    Ge => i64::from(x >= y),
                    Eq => i64::from(x == y),
                    Ne => i64::from(x != y),
                    LogAnd => i64::from(x != 0 && y != 0),
                    LogOr => i64::from(x != 0 || y != 0),
                })
            }
            ExprKind::Cond(c, t, f) => {
                let c = self.const_eval(c)?;
                if c != 0 {
                    self.const_eval(t)
                } else {
                    self.const_eval(f)
                }
            }
            ExprKind::Cast(_, inner) => self.const_eval(inner),
            ExprKind::SizeofType(ty) => {
                let t = self.build_type(ty).ok()?;
                Some(self.consteval_layout.size_of(&self.prog.types, t) as i64)
            }
            _ => None,
        }
    }

    /// Exposed for statement lowering: registers a local declaration.
    pub(crate) fn lower_local_declaration(&mut self, decl: &Declaration) -> Result<()> {
        self.cur_span = decl.span;
        let base_built = self.build_type(&decl.base)?;
        for item in &decl.items {
            self.cur_span = item.span;
            let ty = self.build_type_with_base(&item.ty, base_built)?;
            match decl.storage {
                Storage::Typedef => {
                    self.typedefs
                        .last_mut()
                        .expect("typedef scope")
                        .insert(item.name.clone(), ty);
                }
                _ => {
                    if matches!(self.prog.types.kind(ty), TypeKind::Function(_)) {
                        // Local function declaration.
                        self.register_function_sig(&item.name, ty, &item.ty, false)?;
                        continue;
                    }
                    let fid = self.current_fn.expect("local declaration outside function");
                    let obj = self.new_object(
                        format!(
                            "{}::{}",
                            self.prog.functions[fid.0 as usize].name, item.name
                        ),
                        ty,
                        ObjKind::Local(fid),
                    );
                    self.declare_local(&item.name, obj);
                    if let Some(init) = &item.init {
                        self.lower_initializer(obj, FieldPath::empty(), ty, init)?;
                    }
                }
            }
        }
        Ok(())
    }
}
