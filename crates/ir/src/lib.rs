//! # structcast-ir
//!
//! Lowering of C programs to the five normalized assignment forms of
//! *"Pointer Analysis for Programs with Structures and Casting"*
//! (Yong/Horwitz/Reps, PLDI 1999, §2):
//!
//! ```text
//! 1.  s = (τ)&t.β        4.  s = (τ)*q
//! 2.  s = (τ)&(*p).α     5.  *p = (τ_p)t
//! 3.  s = (τ)t.β
//! ```
//!
//! plus three safe extensions (pointer arithmetic, `memcpy`-style bulk
//! copies, and indirect calls resolved during solving). Casts never appear
//! explicitly: each compiler temporary carries the type it was cast to, so
//! the analysis phase only consults declared object types.
//!
//! ## Quickstart
//!
//! ```
//! use structcast_ir::lower_source;
//!
//! // The paper's §3 worked example.
//! let prog = lower_source(r#"
//!     struct S { int *s1; int *s2; } s;
//!     int x, y, *p;
//!     void main(void) {
//!         s.s1 = &x;
//!         s.s2 = &y;
//!         p = s.s1;
//!     }
//! "#)?;
//! assert!(prog.assignment_count() >= 7); // temporaries introduced
//! assert!(prog.object_by_name("x").is_some());
//! # Ok::<(), structcast_ir::LowerError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ir;
mod lower;

pub use ir::{Callee, FuncId, Function, ObjId, ObjKind, Object, Program, Stmt, StmtId};
pub use lower::{lower, lower_source, LowerError, Result};

#[cfg(test)]
mod tests;
