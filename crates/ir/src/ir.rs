//! The normalized intermediate representation.
//!
//! Every C assignment is lowered (with compiler-introduced temporaries) to
//! one of the paper's five forms (§2), plus three safe extensions:
//!
//! | form | statement | paper |
//! |------|-----------|-------|
//! | 1 | `s = (τ)&t.β` | [`Stmt::AddrOf`] |
//! | 2 | `s = (τ)&(*p).α` | [`Stmt::AddrField`] |
//! | 3 | `s = (τ)t.β` | [`Stmt::Copy`] |
//! | 4 | `s = (τ)*q` | [`Stmt::Load`] |
//! | 5 | `*p = (τ_p)t` | [`Stmt::Store`] |
//! | — | pointer arithmetic (§4.2.1) | [`Stmt::PtrArith`] |
//! | — | `memcpy`-style whole-object copy | [`Stmt::CopyAll`] |
//! | — | indirect call (resolved during solving) | [`Stmt::Call`] |
//!
//! Casts are *implicit*: each temporary carries the type it was cast to, so
//! the analysis only ever consults the declared types of `dst`/`ptr`.

use std::fmt;
use structcast_ast::Span;
use structcast_types::{FieldPath, FuncSig, TypeId, TypeKind, TypeTable};

/// Handle of an abstract object (variable, temp, heap site, function, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Handle of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Handle of a statement (index into [`Program::stmts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// What kind of abstract object this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A file-scope variable.
    Global,
    /// A function-local variable.
    Local(FuncId),
    /// The `idx`-th parameter of a function.
    Param(FuncId, u32),
    /// A compiler-introduced temporary (`None` for global-initializer temps).
    Temp(Option<FuncId>),
    /// The allocation-site pseudo-variable for heap block `site` (paper §2:
    /// `malloc_1`-style variables).
    Heap(u32),
    /// The function itself, as an addressable object (for `&f` / `p = f`).
    Function(FuncId),
    /// The return slot of a function (`return e` writes it, callers read it).
    Ret(FuncId),
    /// A string literal object.
    StringLit,
    /// Catch-all object receiving arguments passed through `...`.
    VarArgs(FuncId),
}

impl ObjKind {
    /// True for objects a programmer named (not temps/slots).
    pub fn is_named_variable(&self) -> bool {
        matches!(
            self,
            ObjKind::Global | ObjKind::Local(_) | ObjKind::Param(_, _)
        )
    }
}

/// An abstract object.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Display name (unique-ish; temps are `t$N`).
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Kind.
    pub kind: ObjKind,
}

/// The callee of a [`Stmt::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A known function (kept as a `Call` only when it is variadic-external
    /// or otherwise deferred; ordinary direct calls are lowered to copies).
    Direct(FuncId),
    /// A call through the pointer value stored in this object.
    Indirect(ObjId),
}

/// One normalized statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Form 1: `dst = (τ)&src.path` (`path` may be empty: `dst = &src`).
    AddrOf {
        /// Destination (top-level object; its type carries any cast).
        dst: ObjId,
        /// The object whose address (or field address) is taken.
        src: ObjId,
        /// Field path within `src` (indices into its declared type).
        path: FieldPath,
    },
    /// Form 2: `dst = (τ)&(*ptr).path` (`path` is non-empty).
    AddrField {
        /// Destination.
        dst: ObjId,
        /// The dereferenced pointer.
        ptr: ObjId,
        /// Field path relative to `ptr`'s declared pointee type.
        path: FieldPath,
    },
    /// Form 3: `dst = (τ)src.path` (`path` may be empty: plain copy).
    Copy {
        /// Destination (top-level).
        dst: ObjId,
        /// Source object.
        src: ObjId,
        /// Field path within `src`.
        path: FieldPath,
    },
    /// Form 4: `dst = (τ)*ptr`.
    Load {
        /// Destination.
        dst: ObjId,
        /// The dereferenced pointer.
        ptr: ObjId,
    },
    /// Form 5: `*ptr = (τ_p)src`.
    Store {
        /// The dereferenced pointer; its declared pointee type sizes the copy
        /// (Complication 4).
        ptr: ObjId,
        /// Source (top-level).
        src: ObjId,
    },
    /// `dst = src ± n` — pointer arithmetic. Under Assumption 1 the result
    /// may point to any normalized position of the *outermost* object each
    /// target lies in (§4.2.1).
    PtrArith {
        /// Destination.
        dst: ObjId,
        /// The pointer operand.
        src: ObjId,
    },
    /// `memcpy(dst_ptr, src_ptr, n)`-style bulk copy of unknown length.
    CopyAll {
        /// Pointer to the destination block.
        dst_ptr: ObjId,
        /// Pointer to the source block.
        src_ptr: ObjId,
    },
    /// A function call that could not be lowered to copies statically
    /// (indirect, or direct via [`Callee::Direct`] when deferred). The
    /// solver binds `args` to parameters and `ret` from the return slot as
    /// callees are discovered.
    Call {
        /// Who is called.
        callee: Callee,
        /// Evaluated argument objects, in order.
        args: Vec<ObjId>,
        /// Where the return value goes, if used.
        ret: Option<ObjId>,
    },
}

impl Stmt {
    /// The pointer dereferenced by this statement, if it is one of the
    /// dereferencing forms (2, 4, 5; `CopyAll` dereferences both).
    pub fn deref_ptrs(&self) -> Vec<ObjId> {
        match self {
            Stmt::AddrField { ptr, .. } | Stmt::Load { ptr, .. } | Stmt::Store { ptr, .. } => {
                vec![*ptr]
            }
            Stmt::CopyAll { dst_ptr, src_ptr } => vec![*dst_ptr, *src_ptr],
            Stmt::Call {
                callee: Callee::Indirect(p),
                ..
            } => vec![*p],
            _ => vec![],
        }
    }

    /// True for the five paper forms (excludes the extensions).
    pub fn is_paper_form(&self) -> bool {
        matches!(
            self,
            Stmt::AddrOf { .. }
                | Stmt::AddrField { .. }
                | Stmt::Copy { .. }
                | Stmt::Load { .. }
                | Stmt::Store { .. }
        )
    }
}

/// A function: signature, parameter/return objects, definedness.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Its id.
    pub id: FuncId,
    /// The function object (target of `&f`).
    pub obj: ObjId,
    /// Parameter objects, in order.
    pub params: Vec<ObjId>,
    /// Return slot (`None` for `void`).
    pub ret_slot: Option<ObjId>,
    /// The function *type* (a `TypeKind::Function`).
    pub ty: TypeId,
    /// Whether a body was lowered.
    pub defined: bool,
    /// Whether the signature is variadic.
    pub variadic: bool,
    /// Catch-all object for `...` arguments (created lazily).
    pub varargs: Option<ObjId>,
}

/// A lowered program: types, objects, functions, and the flow-insensitive
/// statement soup the analysis consumes.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The type table.
    pub types: TypeTable,
    /// All abstract objects.
    pub objects: Vec<Object>,
    /// All functions.
    pub functions: Vec<Function>,
    /// All normalized statements.
    pub stmts: Vec<Stmt>,
    /// Source span for each statement (parallel to `stmts`).
    pub spans: Vec<Span>,
    /// Non-fatal diagnostics produced during lowering (e.g. calls to unknown
    /// external functions, which are treated as having no pointer effects).
    pub warnings: Vec<String>,
    /// Source span of each heap allocation site, parallel to the site
    /// numbers in [`ObjKind::Heap`] (used by the concrete-interpreter
    /// soundness oracle to match dynamic allocations to abstract ones).
    pub heap_spans: Vec<(ObjId, Span)>,
    /// The function each statement was lowered from (parallel to `stmts`;
    /// `None` for global-initializer statements). Drives per-function
    /// client analyses such as MOD/REF.
    pub stmt_funcs: Vec<Option<FuncId>>,
    /// Statically-known direct call edges `(caller, callee)`; `None` caller
    /// means a call from a global initializer. Indirect edges come from the
    /// solver as they are resolved.
    pub direct_calls: Vec<(Option<FuncId>, FuncId)>,
}

impl Program {
    /// The object behind `id`.
    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.0 as usize]
    }

    /// The declared type of `id`.
    pub fn type_of(&self, id: ObjId) -> TypeId {
        self.objects[id.0 as usize].ty
    }

    /// The function behind `id`.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up an object by display name (first match). Falls back to
    /// matching function-local names by their suffix, so `"p"` finds
    /// `"main::p"` when no global `p` exists.
    pub fn object_by_name(&self, name: &str) -> Option<ObjId> {
        if let Some(i) = self.objects.iter().position(|o| o.name == name) {
            return Some(ObjId(i as u32));
        }
        let suffix = format!("::{name}");
        self.objects
            .iter()
            .position(|o| o.name.ends_with(&suffix) && o.kind.is_named_variable())
            .map(|i| ObjId(i as u32))
    }

    /// For a pointer-typed object, its declared pointee type (`None` if the
    /// object is not declared as a pointer).
    pub fn pointee_of(&self, id: ObjId) -> Option<TypeId> {
        match self.types.kind(self.type_of(id)) {
            TypeKind::Pointer(p) => Some(*p),
            _ => None,
        }
    }

    /// If `obj` is a function object, the function it denotes.
    pub fn as_function(&self, obj: ObjId) -> Option<FuncId> {
        match self.object(obj).kind {
            ObjKind::Function(f) => Some(f),
            _ => None,
        }
    }

    /// All statements that dereference a pointer, with the pointer: the
    /// *static dereference sites* whose points-to sets Figure 4 averages.
    pub fn deref_sites(&self) -> Vec<(StmtId, ObjId)> {
        let mut out = Vec::new();
        for (i, s) in self.stmts.iter().enumerate() {
            for p in s.deref_ptrs() {
                out.push((StmtId(i as u32), p));
            }
        }
        out
    }

    /// Number of normalized assignment statements (Figure 3, column 4).
    pub fn assignment_count(&self) -> usize {
        self.stmts.iter().filter(|s| s.is_paper_form()).count()
    }

    /// Renders a statement for diagnostics.
    pub fn display_stmt(&self, s: &Stmt) -> String {
        let name = |o: &ObjId| self.object(*o).name.clone();
        match s {
            Stmt::AddrOf { dst, src, path } => {
                format!("{} = &{}{}", name(dst), name(src), path_str(path))
            }
            Stmt::AddrField { dst, ptr, path } => {
                format!("{} = &(*{}){}", name(dst), name(ptr), path_str(path))
            }
            Stmt::Copy { dst, src, path } => {
                format!("{} = {}{}", name(dst), name(src), path_str(path))
            }
            Stmt::Load { dst, ptr } => format!("{} = *{}", name(dst), name(ptr)),
            Stmt::Store { ptr, src } => format!("*{} = {}", name(ptr), name(src)),
            Stmt::PtrArith { dst, src } => format!("{} = {} ± n", name(dst), name(src)),
            Stmt::CopyAll { dst_ptr, src_ptr } => {
                format!("memcpy(*{}, *{})", name(dst_ptr), name(src_ptr))
            }
            Stmt::Call { callee, args, ret } => {
                let callee = match callee {
                    Callee::Direct(f) => self.function(*f).name.clone(),
                    Callee::Indirect(p) => format!("(*{})", name(p)),
                };
                let args: Vec<_> = args.iter().map(&name).collect();
                match ret {
                    Some(r) => format!("{} = {callee}({})", name(r), args.join(", ")),
                    None => format!("{callee}({})", args.join(", ")),
                }
            }
        }
    }

    /// Renders the whole program (objects + statements) for debugging.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; {} objects, {} stmts", self.objects.len(), self.stmts.len());
        for (i, o) in self.objects.iter().enumerate() {
            let _ = writeln!(
                out,
                "obj {i}: {} : {} ({:?})",
                o.name,
                self.types.display(o.ty),
                o.kind
            );
        }
        for s in &self.stmts {
            let _ = writeln!(out, "  {}", self.display_stmt(s));
        }
        out
    }

    /// The heap pseudo-variable created at the allocation call whose span
    /// starts at `span_start`, if any (soundness-oracle hook).
    pub fn heap_object_at(&self, span_start: u32) -> Option<ObjId> {
        self.heap_spans
            .iter()
            .find(|(_, sp)| sp.start == span_start)
            .map(|(o, _)| *o)
    }

    /// The signature of a function type id, if it is one.
    pub fn signature(&self, ty: TypeId) -> Option<&FuncSig> {
        match self.types.kind(ty) {
            TypeKind::Function(sig) => Some(sig),
            _ => None,
        }
    }
}

fn path_str(p: &FieldPath) -> String {
    if p.is_empty() {
        String::new()
    } else {
        format!("{p}")
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_ptr_extraction() {
        let p = ObjId(0);
        let q = ObjId(1);
        assert_eq!(
            Stmt::Load { dst: q, ptr: p }.deref_ptrs(),
            vec![p]
        );
        assert_eq!(
            Stmt::Store { ptr: p, src: q }.deref_ptrs(),
            vec![p]
        );
        assert_eq!(
            Stmt::CopyAll {
                dst_ptr: p,
                src_ptr: q
            }
            .deref_ptrs(),
            vec![p, q]
        );
        assert!(Stmt::Copy {
            dst: p,
            src: q,
            path: FieldPath::empty()
        }
        .deref_ptrs()
        .is_empty());
    }

    #[test]
    fn paper_form_classification() {
        let p = ObjId(0);
        let q = ObjId(1);
        assert!(Stmt::Load { dst: p, ptr: q }.is_paper_form());
        assert!(!Stmt::PtrArith { dst: p, src: q }.is_paper_form());
        assert!(!Stmt::CopyAll {
            dst_ptr: p,
            src_ptr: q
        }
        .is_paper_form());
    }

    #[test]
    fn named_variable_classification() {
        assert!(ObjKind::Global.is_named_variable());
        assert!(ObjKind::Param(FuncId(0), 1).is_named_variable());
        assert!(!ObjKind::Temp(None).is_named_variable());
        assert!(!ObjKind::Heap(3).is_named_variable());
    }
}
