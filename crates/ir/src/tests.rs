//! Lowering tests: the paper's worked examples and the lowering invariants
//! the analysis relies on.

use crate::ir::*;
use crate::lower::lower_source;
use structcast_types::TypeKind;

fn stmts_of(prog: &Program) -> Vec<String> {
    prog.stmts.iter().map(|s| prog.display_stmt(s)).collect()
}

/// The §3 example: `s.s1 = &x` must normalize to
/// `tmp1 = &s.s1; tmp2 = &x; *tmp1 = tmp2`.
#[test]
fn paper_section3_normalization() {
    let prog = lower_source(
        "struct S { int *s1; int *s2; } s; int x, *p;\n\
         void f(void) { s.s1 = &x; p = s.s1; }",
    )
    .unwrap();
    let ss = stmts_of(&prog);
    // tmp = &s.s1 (AddrOf with path .0)
    assert!(
        ss.iter().any(|s| s.contains("= &s.0")),
        "expected AddrOf of s.s1, got:\n{}",
        ss.join("\n")
    );
    // tmp2 = &x
    assert!(ss.iter().any(|s| s.contains("= &x")));
    // *tmp = tmp2
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Store { .. })));
    // p = s.s1 is a direct Copy (form 3), no deref needed.
    let p = prog.object_by_name("p").unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { dst, path, .. } if *dst == p && !path.is_empty())));
}

#[test]
fn load_through_pointer_field() {
    // x = p->f lowers to taddr = &(*p).f; x = *taddr
    let prog = lower_source(
        "struct S { int f; int *g; } *p; int *x;\n\
         void f(void) { x = p->g; }",
    )
    .unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::AddrField { .. })));
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Load { .. })));
}

#[test]
fn deref_sites_counted() {
    let prog = lower_source(
        "int *p, *q, x;\n\
         void f(void) { *p = 0; x = *q; }",
    )
    .unwrap();
    // *p = 0 stores a scalar: no Store emitted (no pointer payload), but
    // x = *q is a Load. Deref sites counted from emitted statements.
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Load { .. })));
    assert_eq!(prog.deref_sites().len(), 1);
}

#[test]
fn scalar_stores_have_no_pointer_effect() {
    let prog = lower_source("int *p; void f(void) { *p = 42; }").unwrap();
    assert!(!prog.stmts.iter().any(|s| matches!(s, Stmt::Store { .. })));
}

#[test]
fn address_of_field_through_pointer() {
    // q = &p->f is form 2 (AddrField), not a Load.
    let prog = lower_source(
        "struct S { int a; int b; } *p; int *q;\n\
         void f(void) { q = &p->b; }",
    )
    .unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::AddrField { .. })));
    assert!(!prog.stmts.iter().any(|s| matches!(s, Stmt::Load { .. })));
}

#[test]
fn casts_become_typed_temporaries() {
    let prog = lower_source(
        "struct A { int *a1; } a; struct B { int *b1; } *pb;\n\
         void f(void) { pb = (struct B *)&a; }",
    )
    .unwrap();
    // Find the temp holding &a and check some temp has type struct B *.
    let has_bp_temp = prog.objects.iter().any(|o| {
        matches!(o.kind, ObjKind::Temp(_))
            && prog.types.display(o.ty) == "struct B *"
    });
    assert!(has_bp_temp, "{}", prog.dump());
}

#[test]
fn malloc_creates_heap_object_with_sizeof_type() {
    let prog = lower_source(
        "struct T { int *f; } *p;\n\
         void f(void) { p = malloc(sizeof(struct T)); }",
    )
    .unwrap();
    let heap = prog
        .objects
        .iter()
        .find(|o| matches!(o.kind, ObjKind::Heap(_)))
        .expect("heap object");
    // Typed as struct T[] via the sizeof heuristic.
    match prog.types.kind(heap.ty) {
        TypeKind::Array(elem, None) => {
            assert_eq!(prog.types.display(*elem), "struct T");
        }
        other => panic!("heap type should be unsized array, got {other:?}"),
    }
}

#[test]
fn malloc_cast_refines_type() {
    let prog = lower_source(
        "struct T { int *f; } *p;\n\
         void f(void) { p = (struct T *)malloc(64); }",
    )
    .unwrap();
    let heap = prog
        .objects
        .iter()
        .find(|o| matches!(o.kind, ObjKind::Heap(_)))
        .unwrap();
    match prog.types.kind(heap.ty) {
        TypeKind::Array(elem, None) => assert_eq!(prog.types.display(*elem), "struct T"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn malloc_without_hints_is_byte_blob() {
    let prog = lower_source("void *v; void f(void) { v = malloc(10); }").unwrap();
    let heap = prog
        .objects
        .iter()
        .find(|o| matches!(o.kind, ObjKind::Heap(_)))
        .unwrap();
    assert_eq!(prog.types.display(heap.ty), "char[]");
}

#[test]
fn each_malloc_site_is_distinct() {
    let prog = lower_source(
        "int *a, *b; void f(void) { a = malloc(4); b = malloc(4); }",
    )
    .unwrap();
    let heaps: Vec<_> = prog
        .objects
        .iter()
        .filter(|o| matches!(o.kind, ObjKind::Heap(_)))
        .collect();
    assert_eq!(heaps.len(), 2);
    assert_ne!(heaps[0].name, heaps[1].name);
}

#[test]
fn direct_calls_bind_params_and_return() {
    let prog = lower_source(
        "int x; int *id(int *q) { return q; } \n\
         void f(void) { int *r; r = id(&x); }",
    )
    .unwrap();
    let f = prog.function_by_name("id").unwrap();
    let param = f.params[0];
    let ret = f.ret_slot.unwrap();
    // Argument bound to parameter.
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { dst, .. } if *dst == param)));
    // Return value read from the slot.
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { src, .. } if *src == ret)));
}

#[test]
fn function_pointers_and_indirect_calls() {
    let prog = lower_source(
        "int g(int a) { return a; } int (*fp)(int);\n\
         void f(void) { fp = g; fp(3); (*fp)(4); }",
    )
    .unwrap();
    // fp = g creates AddrOf of the function object.
    let g = prog.function_by_name("g").unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::AddrOf { src, .. } if *src == g.obj)));
    // Both calls are indirect through fp.
    let calls: Vec<_> = prog
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::Call { callee: Callee::Indirect(_), .. }))
        .collect();
    assert_eq!(calls.len(), 2);
}

#[test]
fn unknown_extern_warns_but_lowers() {
    let prog = lower_source("void f(void) { frobnicate(1); frobnicate(2); }").unwrap();
    assert_eq!(prog.warnings.len(), 1, "{:?}", prog.warnings);
    assert!(prog.warnings[0].contains("frobnicate"));
}

#[test]
fn memcpy_summary_emits_copyall() {
    let prog = lower_source(
        "struct S { int *p; } a, b;\n\
         void f(void) { memcpy(&a, &b, sizeof(struct S)); }",
    )
    .unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::CopyAll { .. })));
}

#[test]
fn qsort_summary_calls_comparator() {
    let prog = lower_source(
        "int cmp(const void *a, const void *b) { return 0; }\n\
         int arr[10];\n\
         void f(void) { qsort(arr, 10, sizeof(int), cmp); }",
    )
    .unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Call { callee: Callee::Indirect(_), .. })));
}

#[test]
fn pointer_arithmetic_becomes_ptrarith() {
    let prog = lower_source("int a[10], *p; void f(void) { p = p + 3; p++; --p; }").unwrap();
    let n = prog
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::PtrArith { .. }))
        .count();
    assert_eq!(n, 3);
}

#[test]
fn array_indexing_is_not_arithmetic() {
    // a[i] uses the representative element: Load/Store through the decayed
    // pointer, no PtrArith spread.
    let prog = lower_source(
        "int *a[10]; int *x; void f(int i) { x = a[i]; a[i] = x; }",
    )
    .unwrap();
    assert!(!prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::PtrArith { .. })));
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Load { .. })));
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Store { .. })));
}

#[test]
fn string_literals_are_objects() {
    let prog = lower_source("char *s; void f(void) { s = \"hello\"; }").unwrap();
    assert!(prog
        .objects
        .iter()
        .any(|o| matches!(o.kind, ObjKind::StringLit)));
}

#[test]
fn global_initializers_lowered() {
    let prog = lower_source("int x; int *p = &x; struct S { int *a; int *b; } s = { &x, 0 };")
        .unwrap();
    // p = &x plus tmp = &x; for s.a (via AddrOf+Store).
    let addr_ofs = prog
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::AddrOf { .. }))
        .count();
    assert!(addr_ofs >= 2, "{}", prog.dump());
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Store { .. })));
}

#[test]
fn local_initializers_and_shadowing() {
    let prog = lower_source(
        "int x; void f(void) { int *p = &x; { int x; int *q = &x; } }",
    )
    .unwrap();
    // Two distinct AddrOf sources: global x and local x.
    let mut srcs = std::collections::HashSet::new();
    for s in &prog.stmts {
        if let Stmt::AddrOf { src, .. } = s {
            srcs.insert(*src);
        }
    }
    assert_eq!(srcs.len(), 2);
}

#[test]
fn conditional_joins_both_arms() {
    let prog = lower_source(
        "int x, y, *p; void f(int c) { p = c ? &x : &y; }",
    )
    .unwrap();
    // The join temp receives copies from both arm temps.
    let copies = prog
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::Copy { .. }))
        .count();
    assert!(copies >= 2, "{}", prog.dump());
}

#[test]
fn return_flows_to_ret_slot() {
    let prog = lower_source("int x; int *f(void) { return &x; }").unwrap();
    let f = prog.function_by_name("f").unwrap();
    let rs = f.ret_slot.unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { dst, .. } if *dst == rs)));
}

#[test]
fn variadic_extra_args_flow_to_varargs_object() {
    let prog = lower_source(
        "int x; void log2(int n, ...); void log2(int n, ...) { }\n\
         void f(void) { log2(1, &x); }",
    )
    .unwrap();
    let va = prog
        .objects
        .iter()
        .position(|o| matches!(o.kind, ObjKind::VarArgs(_)))
        .map(|i| ObjId(i as u32))
        .expect("varargs object");
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { dst, .. } if *dst == va)));
}

#[test]
fn prototype_then_definition_share_params() {
    let prog = lower_source(
        "void g(int *p); int x;\n\
         void f(void) { g(&x); }\n\
         void g(int *q) { int *r; r = q; }",
    )
    .unwrap();
    let g = prog.function_by_name("g").unwrap();
    assert_eq!(g.params.len(), 1);
    let param = g.params[0];
    // Caller binds into the same object the body reads from.
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { dst, .. } if *dst == param)));
    assert!(prog
        .stmts
        .iter()
        .any(|s| matches!(s, Stmt::Copy { src, .. } if *src == param)));
}

#[test]
fn struct_copy_is_single_copy_stmt() {
    let prog = lower_source(
        "struct S { int *a; int *b; } s, t; void f(void) { s = t; }",
    )
    .unwrap();
    let s = prog.object_by_name("s").unwrap();
    let t = prog.object_by_name("t").unwrap();
    assert!(prog
        .stmts
        .iter()
        .any(|st| matches!(st, Stmt::Copy { dst, src, path } if *dst == s && *src == t && path.is_empty())));
}

#[test]
fn anonymous_struct_member_access() {
    let prog = lower_source(
        "struct O { struct { int *inner; }; int *outer; } o; int x;\n\
         void f(void) { o.inner = &x; }",
    )
    .unwrap();
    // The write goes through path .0.0 (anon member, then inner).
    let ss = stmts_of(&prog);
    assert!(
        ss.iter().any(|s| s.contains("&o.0.0")),
        "{}",
        ss.join("\n")
    );
}

#[test]
fn enum_constants_fold() {
    let prog = lower_source(
        "enum E { A = 2, B, C = B + 5 }; int arr[C]; void f(void) { }",
    )
    .unwrap();
    let arr = prog.object_by_name("arr").unwrap();
    match prog.types.kind(prog.type_of(arr)) {
        TypeKind::Array(_, Some(n)) => assert_eq!(*n, 8),
        other => panic!("{other:?}"),
    }
}

#[test]
fn recursive_struct_types() {
    let prog = lower_source(
        "struct Node { struct Node *next; int v; };\n\
         struct Node a, b; void f(void) { a.next = &b; b.next = a.next; }",
    )
    .unwrap();
    assert!(prog.stmts.len() >= 4);
}

#[test]
fn undeclared_identifier_is_error() {
    let err = lower_source("void f(void) { x = 3; }").unwrap_err();
    assert!(err.message().contains("undeclared"), "{err}");
}

#[test]
fn bad_member_is_error() {
    let err = lower_source(
        "struct S { int a; } s; void f(void) { s.b = 1; }",
    )
    .unwrap_err();
    assert!(err.message().contains("no member"), "{err}");
}

#[test]
fn typedef_resolution() {
    let prog = lower_source(
        "typedef struct S { int *f; } S, *SP; SP p; S s; int x;\n\
         void f(void) { p = &s; p->f = &x; }",
    )
    .unwrap();
    assert!(prog.stmts.iter().any(|s| matches!(s, Stmt::Store { .. })));
}

#[test]
fn assignment_count_matches_paper_forms() {
    let prog = lower_source(
        "int x, *p, *q; void f(void) { p = &x; q = p; p = q + 1; }",
    )
    .unwrap();
    // p = &x (AddrOf), q = p (Copy), plus PtrArith (not a paper form) and
    // the copy of its result.
    assert!(prog.assignment_count() >= 2);
    assert!(prog.assignment_count() < prog.stmts.len());
}
