//! # structcast-bench
//!
//! Benchmarks for the structcast reproduction. One bench target per paper
//! figure plus the ablations:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_program_stats` | Figure 3 (front-end + instrumented portable runs) |
//! | `fig4_deref_sets` | Figure 4 (per-model solve; prints the table once) |
//! | `fig5_times` | Figure 5 (per-program × per-model solve times) |
//! | `fig6_edges` | Figure 6 (edge production throughput; prints counts) |
//! | `ablation_steensgaard` | inclusion vs unification |
//! | `ablation_layout` | Offsets under ilp32/lp64/packed32 |
//! | `scaling_progen` | generated-program size/cast-ratio sweep + `BENCH_solver.json` |
//! | `bench_demand` | demand-vs-exhaustive query cost + `BENCH_demand.json` |
//!
//! Run with `cargo bench --workspace`; the human-readable tables are also
//! available via `scast-experiments all`. The timing harness is the small
//! self-contained [`BenchGroup`] below (the workspace builds hermetically,
//! with no registry access, so it cannot pull in an external framework).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use structcast::{analyze, AnalysisConfig, AnalysisSession, ModelKind, Program};

/// Lowers a corpus program, panicking with its name on failure (benches
/// want loud, early errors).
pub fn lower_named(name: &str, source: &str) -> Program {
    structcast::lower_source(source).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Runs one instance over a program (the unit of work most benches time).
pub fn solve(prog: &Program, kind: ModelKind) -> usize {
    analyze(prog, &AnalysisConfig::new(kind)).edge_count()
}

/// Runs one instance and reports `(edges, solver iterations, wall-clock)`.
pub fn solve_full(prog: &Program, kind: ModelKind) -> (usize, u64, Duration) {
    let start = Instant::now();
    let res = analyze(prog, &AnalysisConfig::new(kind));
    (res.edge_count(), res.iterations, start.elapsed())
}

/// Stage 1 alone: compiles the session and reports `(session, wall-clock)`
/// so benches can split the one-time constraint compilation from the
/// per-model solve cost.
pub fn compile_session(prog: &Program) -> (AnalysisSession<'_>, Duration) {
    let start = Instant::now();
    let session = AnalysisSession::compile(prog);
    (session, start.elapsed())
}

/// Stages 2+3 alone: specializes + solves one instance against an
/// already-compiled session (the per-model unit of work).
pub fn session_solve(session: &AnalysisSession<'_>, kind: ModelKind) -> usize {
    session.solve(&AnalysisConfig::new(kind)).edge_count()
}

/// The multi-model unit of work: all four default instances solved over
/// one compiled session, fanned out `threads`-wide (`threads == 1` is the
/// plain sequential loop). Returns the summed edge count so the solves
/// cannot be optimized away.
pub fn session_solve_all(session: &AnalysisSession<'_>, threads: usize) -> usize {
    let configs = AnalysisConfig::default().for_all_kinds();
    session
        .solve_all(&configs, threads)
        .iter()
        .map(|r| r.edge_count())
        .sum()
}

/// Summary statistics for one benchmark id.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
}

/// A named group of measurements printed as a compact table, modeled on
/// the criterion group API the benches were originally written against.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("\n== bench group: {name} ==");
        println!("{:<44} {:>12} {:>12} {:>12}", "id", "min", "median", "mean");
        BenchGroup {
            name: name.to_string(),
            samples: 10,
        }
    }

    /// Sets the per-id sample count (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` `samples` times after one untimed warm-up call, prints a
    /// row, and returns the stats. The closure's result is passed through
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> BenchStats {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let total: Duration = times.iter().sum();
        let stats = BenchStats {
            samples: times.len(),
            min: times[0],
            median: times[times.len() / 2],
            mean: total / times.len() as u32,
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            format!("{}/{id}", self.name),
            format_duration(stats.min),
            format_duration(stats.median),
            format_duration(stats.mean),
        );
        stats
    }
}

/// Renders a duration with an SI unit chosen by magnitude (`12.3µs`,
/// `4.56ms`, `1.23s`).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}\u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let p = structcast_progen::corpus_program("bst").unwrap();
        let prog = lower_named(p.name, p.source);
        assert!(solve(&prog, ModelKind::CommonInitialSeq) > 0);
        let (edges, iters, wall) = solve_full(&prog, ModelKind::CommonInitialSeq);
        assert!(edges > 0 && iters > 0 && wall > Duration::ZERO);
    }

    #[test]
    fn session_helpers_split_compile_from_solve() {
        let p = structcast_progen::corpus_program("bst").unwrap();
        let prog = lower_named(p.name, p.source);
        let (session, compile_wall) = compile_session(&prog);
        assert!(compile_wall > Duration::ZERO);
        // The split must not change the answer.
        assert_eq!(
            session_solve(&session, ModelKind::CommonInitialSeq),
            solve(&prog, ModelKind::CommonInitialSeq)
        );
    }

    #[test]
    fn multi_model_unit_of_work_is_thread_count_invariant() {
        let p = structcast_progen::corpus_program("bst").unwrap();
        let prog = lower_named(p.name, p.source);
        let (session, _) = compile_session(&prog);
        let seq = session_solve_all(&session, 1);
        assert!(seq > 0);
        assert_eq!(seq, session_solve_all(&session, 4));
    }

    #[test]
    fn bench_group_reports_sane_stats() {
        let mut g = BenchGroup::new("selftest");
        let stats = g.sample_size(5).bench("noop", || 1 + 1);
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.mean * 2);
    }

    #[test]
    fn durations_format_with_unit_scaling() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("\u{b5}s"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
