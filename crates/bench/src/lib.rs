//! # structcast-bench
//!
//! Criterion benchmarks for the structcast reproduction. One bench target
//! per paper figure plus the ablations:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_program_stats` | Figure 3 (front-end + instrumented portable runs) |
//! | `fig4_deref_sets` | Figure 4 (per-model solve; prints the table once) |
//! | `fig5_times` | Figure 5 (per-program × per-model solve times) |
//! | `fig6_edges` | Figure 6 (edge production throughput; prints counts) |
//! | `ablation_steensgaard` | inclusion vs unification |
//! | `ablation_layout` | Offsets under ilp32/lp64/packed32 |
//! | `scaling_progen` | generated-program size/cast-ratio sweep |
//!
//! Run with `cargo bench --workspace`; the human-readable tables are also
//! available without Criterion via `scast-experiments all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use structcast::{analyze, AnalysisConfig, ModelKind, Program};

/// Lowers a corpus program, panicking with its name on failure (benches
/// want loud, early errors).
pub fn lower_named(name: &str, source: &str) -> Program {
    structcast::lower_source(source).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Runs one instance over a program (the unit of work most benches time).
pub fn solve(prog: &Program, kind: ModelKind) -> usize {
    analyze(prog, &AnalysisConfig::new(kind)).edge_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let p = structcast_progen::corpus_program("bst").unwrap();
        let prog = lower_named(p.name, p.source);
        assert!(solve(&prog, ModelKind::CommonInitialSeq) > 0);
    }
}
