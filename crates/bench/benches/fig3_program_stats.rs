//! Figure 3: program characteristics and lookup/resolve call classification.
//!
//! The table itself is static per program; this bench times the pipeline
//! stages that produce it (parse+lower front end, and the two instrumented
//! portable analyses), and prints the full Figure 3 table once.

use structcast::ModelKind;
use structcast_bench::{lower_named, solve, BenchGroup};
use structcast_driver::{experiments, report};

fn main() {
    println!("{}", report::render_fig3(&experiments::run_fig3(2)));

    let mut g = BenchGroup::new("fig3_frontend");
    g.sample_size(20);
    for p in structcast_progen::corpus() {
        g.bench(p.name, || {
            structcast::lower_source(p.source).unwrap().assignment_count()
        });
    }

    let mut g = BenchGroup::new("fig3_instrumented");
    g.sample_size(20);
    for p in structcast_progen::corpus().iter().take(4) {
        let prog = lower_named(p.name, p.source);
        for kind in [ModelKind::CollapseOnCast, ModelKind::CommonInitialSeq] {
            g.bench(&format!("{kind:?}/{}", p.name), || solve(&prog, kind));
        }
    }
}
