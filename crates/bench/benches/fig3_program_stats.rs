//! Figure 3: program characteristics and lookup/resolve call classification.
//!
//! The table itself is static per program; this bench times the pipeline
//! stages that produce it (parse+lower front end, and the two instrumented
//! portable analyses), and prints the full Figure 3 table once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use structcast::ModelKind;
use structcast_bench::{lower_named, solve};
use structcast_driver::{experiments, report};

fn bench(c: &mut Criterion) {
    println!("{}", report::render_fig3(&experiments::run_fig3()));

    let mut g = c.benchmark_group("fig3_frontend");
    g.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::corpus() {
        g.bench_with_input(
            BenchmarkId::from_parameter(p.name),
            &p.source,
            |b, src| b.iter(|| structcast::lower_source(src).unwrap().assignment_count()),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig3_instrumented");
    g.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::corpus().iter().take(4) {
        let prog = lower_named(p.name, p.source);
        for kind in [ModelKind::CollapseOnCast, ModelKind::CommonInitialSeq] {
            g.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), p.name),
                &prog,
                |b, prog| b.iter(|| solve(prog, kind)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
