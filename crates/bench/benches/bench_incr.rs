//! Incremental re-analysis vs cold re-solving over a live-editing trace.
//!
//! Replays a seeded chain of single-function edits (see
//! `structcast_progen::edit_trace`) against a progen program. Each step
//! diffs the edited source against the *previous* step — one edit per
//! measured update, exactly as the server's `update` op sees them — and
//! times both paths:
//!
//! * `full_s`: cold compile-independent re-solve of the edited program;
//! * `resolve_s`: `diff_programs` + `compile_incremental` +
//!   `resolve_incremental` seeded from the previous result.
//!
//! Every step asserts byte-identical edge sets between the two paths, and
//! the run asserts the headline locality claim: the mean re-run region
//! across the trace stays under 20% of the statements. Results land in
//! `BENCH_incr.json` at the repo root, one record per edit with the
//! retraction accounting (`dirty_fns`, `reused_fns`, `region_statements`,
//! `retracted_edges`, ...).
//!
//! Honesty caveat: wall-clocks depend on the host (`host_cpus` is recorded
//! in each row); compare ratios (`speedup`, `region_ratio`) across
//! machines, not absolute seconds.
//!
//! Env knobs: `SCAST_BENCH_SMOKE=1` shrinks to the small preset with 6
//! edits and a single sample (the CI smoke path).

use structcast::incr::resolve_incremental;
use structcast::{compile_incremental, diff_programs, AnalysisConfig, ConstraintSet};
use structcast_bench::BenchGroup;
use structcast_progen::{edit_trace, generate, GenConfig};

const TRACE_SEED: u64 = 0xED17;

struct Record {
    step: usize,
    kind: &'static str,
    function: String,
    dirty_fns: usize,
    reused_fns: usize,
    dirty_statements: usize,
    region_statements: usize,
    total_statements: usize,
    retracted_edges: usize,
    kept_edges: usize,
    full_s: f64,
    resolve_s: f64,
}

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    let (preset, gen, steps, samples) = if smoke {
        ("small", GenConfig::small(0x10CA1), 6, 1)
    } else {
        ("medium", GenConfig::medium(0x10CA1), 50, 3)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base = generate(&gen);
    let lines = base.lines().count();
    let cfg = AnalysisConfig::default();

    let mut g = BenchGroup::new("incr");
    g.sample_size(samples);

    let mut prog = structcast::lower_source(&base).expect("generated code lowers");
    let mut set = ConstraintSet::compile(&prog);
    let mut res = structcast::solve_compiled(&prog, &set, &cfg);

    let mut records: Vec<Record> = Vec::new();
    for (k, step) in edit_trace(&base, TRACE_SEED, steps).iter().enumerate() {
        let new_prog = structcast::lower_source(&step.source).expect("edited code lowers");
        let label = format!("step{k:02}/{}", step.kind.label());

        // Cold path: what a from-scratch re-solve of the edit costs.
        let full = g.bench(&format!("{label}/full"), || {
            let cold_set = ConstraintSet::compile(&new_prog);
            structcast::solve_compiled(&new_prog, &cold_set, &cfg).edge_count()
        });

        // Incremental path: diff, reuse, retract, re-run the region.
        let inc_t = g.bench(&format!("{label}/incr"), || {
            let diff = diff_programs(&prog, &new_prog);
            let (new_set, _) = compile_incremental(&prog, &set, &new_prog, &diff);
            resolve_incremental(&prog, &set, &res, &new_prog, &new_set, &diff, &cfg)
                .expect("incremental solve")
                .result
                .edge_count()
        });

        let diff = diff_programs(&prog, &new_prog);
        let (new_set, _) = compile_incremental(&prog, &set, &new_prog, &diff);
        let inc =
            resolve_incremental(&prog, &set, &res, &new_prog, &new_set, &diff, &cfg).unwrap();
        let cold_set = ConstraintSet::compile(&new_prog);
        let cold = structcast::solve_compiled(&new_prog, &cold_set, &cfg);
        assert_eq!(
            inc.result.edge_displays(&new_prog),
            cold.edge_displays(&new_prog),
            "{label}: incremental diverged from cold"
        );
        assert!(inc.stats.fallback.is_none(), "{label}: unexpected fallback");

        records.push(Record {
            step: k,
            kind: step.kind.label(),
            function: step.function.clone(),
            dirty_fns: inc.stats.dirty_fns,
            reused_fns: inc.stats.reused_fns,
            dirty_statements: inc.stats.dirty_statements,
            region_statements: inc.stats.region_statements,
            total_statements: inc.stats.total_statements,
            retracted_edges: inc.stats.retracted_edges,
            kept_edges: inc.stats.kept_edges,
            full_s: full.median.as_secs_f64(),
            resolve_s: inc_t.median.as_secs_f64(),
        });

        // Chain: the incremental result is the next step's baseline.
        (prog, set, res) = (new_prog, new_set, inc.result);
    }

    // Write the data before asserting the headline claim, so a failing
    // run still leaves the per-step evidence on disk.
    let json = render_json(preset, lines, host_cpus, &records);
    let path = repo_root_file("BENCH_incr.json");
    std::fs::write(&path, json).expect("write BENCH_incr.json");
    println!("wrote {}", path.display());

    let mean_ratio = records
        .iter()
        .map(|r| r.region_statements as f64 / r.total_statements.max(1) as f64)
        .sum::<f64>()
        / records.len().max(1) as f64;
    assert!(
        mean_ratio < 0.20,
        "mean re-run region must stay under 20% of statements, got {mean_ratio:.3}"
    );
    println!("\nmean region ratio over {} edits: {mean_ratio:.4}", records.len());
}

/// `BENCH_incr.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}

fn render_json(preset: &str, lines: usize, host_cpus: usize, records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"preset\": \"{preset}\", \"lines\": {lines}, \"step\": {}, \
             \"edit\": \"{}\", \"function\": \"{}\", \"dirty_fns\": {}, \
             \"reused_fns\": {}, \"dirty_statements\": {}, \
             \"region_statements\": {}, \"total_statements\": {}, \
             \"region_ratio\": {:.4}, \"retracted_edges\": {}, \
             \"kept_edges\": {}, \"full_s\": {:.6}, \"resolve_s\": {:.6}, \
             \"speedup\": {:.3}, \"host_cpus\": {host_cpus}}}{}\n",
            r.step,
            r.kind,
            r.function,
            r.dirty_fns,
            r.reused_fns,
            r.dirty_statements,
            r.region_statements,
            r.total_statements,
            r.region_statements as f64 / r.total_statements.max(1) as f64,
            r.retracted_edges,
            r.kept_edges,
            r.full_s,
            r.resolve_s,
            r.full_s / r.resolve_s.max(1e-9),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
