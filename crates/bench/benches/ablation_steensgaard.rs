//! Ablation A: inclusion-based framework instances vs the Steensgaard-style
//! unification baseline — speed vs precision trade-off (paper §6 relates
//! the CIS instance to Steensgaard's algorithm).

use structcast::steensgaard::steensgaard;
use structcast::ModelKind;
use structcast_bench::{lower_named, solve, BenchGroup};
use structcast_driver::{experiments, report};

fn main() {
    println!(
        "{}",
        report::render_steensgaard(&experiments::run_ablation_steensgaard())
    );

    let mut g = BenchGroup::new("ablation_steensgaard");
    g.sample_size(20);
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        g.bench(&format!("steensgaard/{}", p.name), || {
            steensgaard(&prog).class_count()
        });
        g.bench(&format!("cis_inclusion/{}", p.name), || {
            solve(&prog, ModelKind::CommonInitialSeq)
        });
    }
}
