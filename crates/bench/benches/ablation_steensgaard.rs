//! Ablation A: inclusion-based framework instances vs the Steensgaard-style
//! unification baseline — speed vs precision trade-off (paper §6 relates
//! the CIS instance to Steensgaard's algorithm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use structcast::steensgaard::steensgaard;
use structcast::ModelKind;
use structcast_bench::{lower_named, solve};
use structcast_driver::{experiments, report};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        report::render_steensgaard(&experiments::run_ablation_steensgaard())
    );

    let mut g = c.benchmark_group("ablation_steensgaard");
    g.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        g.bench_with_input(
            BenchmarkId::new("steensgaard", p.name),
            &prog,
            |b, prog| b.iter(|| steensgaard(prog).class_count()),
        );
        g.bench_with_input(
            BenchmarkId::new("cis_inclusion", p.name),
            &prog,
            |b, prog| b.iter(|| solve(prog, ModelKind::CommonInitialSeq)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
