//! Query throughput of the structcast-server on a warm cache: 4 client
//! threads over real TCP connections, each firing a mix of `points_to`
//! and `alias` requests against programs the server has already compiled
//! and solved — so every request is a pure cache lookup and the number
//! measures the service overhead (framing, dispatch, lock traffic), not
//! the solver.
//!
//! Writes `BENCH_server.json` at the repo root: queries/sec per scenario
//! plus the miss counters proving the measured section ran fully warm.
//!
//! Env knobs: `SCAST_BENCH_SMOKE=1` shrinks the per-thread query count to
//! the CI smoke size.

use std::time::Instant;
use structcast_server::json::Json;
use structcast_server::{serve, Client, Metrics, ServerConfig};

const CLIENT_THREADS: usize = 4;

/// (program, var to query) — all embedded corpus programs, so the server
/// auto-loads them on first touch.
const TARGETS: [(&str, &str); 3] = [
    ("bst", "g_tree"),
    ("tagged-union", "g_registry"),
    ("list-utils", "g_head"),
];

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    let per_thread: usize = if smoke { 50 } else { 2000 };

    let handle = serve(&ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr();
    let metrics = handle.metrics();

    // Warm every (program, default-options) entry the measured section
    // will touch, from a single connection.
    let mut warm = Client::connect(addr).expect("connect");
    for (prog, var) in TARGETS {
        let resp = warm
            .request_line(&format!(
                r#"{{"op":"points_to","program":"{prog}","var":"{var}"}}"#
            ))
            .expect("warm query");
        assert!(resp.contains("\"ok\": true"), "{resp}");
    }
    // Close the warming connection: graceful shutdown waits for open
    // connections to drain, so a client held across `handle.wait()` would
    // deadlock the bench.
    drop(warm);
    let misses_before = metrics.total_misses();

    let mut records = Vec::new();
    for (scenario, alias_every) in [("points_to", usize::MAX), ("mixed", 3)] {
        let start = Instant::now();
        let threads: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..per_thread {
                        let (prog, var) = TARGETS[(t + i) % TARGETS.len()];
                        let req = if alias_every != usize::MAX && i % alias_every == 0 {
                            format!(
                                r#"{{"op":"alias","program":"{prog}","a":"{var}","b":"{var}"}}"#
                            )
                        } else {
                            format!(r#"{{"op":"points_to","program":"{prog}","var":"{var}"}}"#)
                        };
                        let resp = c.request_line(&req).expect("query");
                        assert!(resp.contains("\"ok\": true"), "{resp}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let total = (CLIENT_THREADS * per_thread) as f64;
        let qps = total / elapsed;
        println!(
            "{scenario:>10}: {CLIENT_THREADS} threads x {per_thread} queries \
             in {elapsed:.3}s = {qps:.0} queries/sec"
        );
        records.push(record(scenario, per_thread, elapsed, qps, &metrics));
    }

    // Warm means warm: the measured sections must not have compiled or
    // solved anything.
    assert_eq!(
        metrics.total_misses(),
        misses_before,
        "measured queries must all be cache hits"
    );

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown_server().expect("shutdown");
    handle.wait();

    let json = format!("{}\n", Json::Arr(records));
    let path = repo_root_file("BENCH_server.json");
    std::fs::write(&path, json).expect("write BENCH_server.json");
    println!("\nwrote {}", path.display());
}

fn record(scenario: &str, per_thread: usize, elapsed: f64, qps: f64, metrics: &Metrics) -> Json {
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("client_threads", Json::count(CLIENT_THREADS as u64)),
        ("queries_per_thread", Json::count(per_thread as u64)),
        ("elapsed_s", Json::num(elapsed)),
        ("queries_per_sec", Json::num(qps)),
        ("program_misses", Json::count(metrics_field(metrics, "program_misses"))),
        ("solve_misses", Json::count(metrics_field(metrics, "solve_misses"))),
    ])
}

fn metrics_field(metrics: &Metrics, key: &str) -> u64 {
    metrics
        .snapshot()
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// `BENCH_server.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}
