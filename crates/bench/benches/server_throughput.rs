//! Query throughput of the structcast-server on a warm cache: 4 client
//! threads over real TCP connections, each firing a mix of `points_to`
//! and `alias` requests against programs the server has already compiled
//! and solved — so every request is a pure cache lookup and the number
//! measures the service overhead (framing, dispatch, lock traffic), not
//! the solver.
//!
//! Scenarios cover both codecs (NDJSON lines and the length-prefixed
//! binary protocol) on a single server, plus the replica fleet behind the
//! consistent-hash router at 1 and 2 replicas, plus the live-editing
//! `update` path with and without the write-ahead journal (the
//! `wal_fsync` column prices the fsync-per-edit durability guarantee
//! against `--no-wal`). Rows the host cannot measure honestly — replica
//! parallelism on a single-CPU box, a fleet without a built `scastd` —
//! are emitted with `wall_clock_s: null` and a `skipped_reason` instead
//! of a misleading number.
//!
//! Writes `BENCH_server.json` at the repo root: queries/sec per scenario
//! plus `host_cpus`, the `protocol`, and the miss counters proving the
//! measured section ran fully warm.
//!
//! Env knobs: `SCAST_BENCH_SMOKE=1` shrinks the per-thread query count to
//! the CI smoke size.

use std::path::PathBuf;
use std::time::Instant;
use structcast_server::json::Json;
use structcast_server::{
    fleet, serve, BinaryClient, Client, FleetConfig, Metrics, ServerConfig,
};

const CLIENT_THREADS: usize = 4;

/// (program, var to query) — all embedded corpus programs, so the server
/// auto-loads them on first touch.
const TARGETS: [(&str, &str); 3] = [
    ("bst", "g_tree"),
    ("tagged-union", "g_registry"),
    ("list-utils", "g_head"),
];

fn host_cpus() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

fn points_to_req(prog: &str, var: &str) -> String {
    format!(r#"{{"op":"points_to","program":"{prog}","var":"{var}"}}"#)
}

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    let per_thread: usize = if smoke { 50 } else { 2000 };

    let handle = serve(&ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr();
    let metrics = handle.metrics();

    // Warm every (program, default-options) entry the measured section
    // will touch, from a single connection.
    let mut warm = Client::connect(addr).expect("connect");
    for (prog, var) in TARGETS {
        let resp = warm.request_line(&points_to_req(prog, var)).expect("warm query");
        assert!(resp.contains("\"ok\": true"), "{resp}");
    }
    // Close the warming connection: graceful shutdown waits for open
    // connections to drain, so a client held across `handle.wait()` would
    // deadlock the bench.
    drop(warm);
    let misses_before = metrics.total_misses();

    let mut records = Vec::new();
    for (scenario, alias_every) in [("points_to", usize::MAX), ("mixed", 3)] {
        let start = Instant::now();
        let threads: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..per_thread {
                        let (prog, var) = TARGETS[(t + i) % TARGETS.len()];
                        let req = if alias_every != usize::MAX && i % alias_every == 0 {
                            format!(
                                r#"{{"op":"alias","program":"{prog}","a":"{var}","b":"{var}"}}"#
                            )
                        } else {
                            points_to_req(prog, var)
                        };
                        let resp = c.request_line(&req).expect("query");
                        assert!(resp.contains("\"ok\": true"), "{resp}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let elapsed = start.elapsed().as_secs_f64();
        records.push(record(scenario, "ndjson", 1, per_thread, elapsed, &metrics));
    }

    // The binary codec over the same warm server: identical queries, one
    // length-prefixed frame per request instead of one line.
    {
        let start = Instant::now();
        let threads: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = BinaryClient::connect(addr).expect("connect");
                    for i in 0..per_thread {
                        let (prog, var) = TARGETS[(t + i) % TARGETS.len()];
                        let req = Json::parse(&points_to_req(prog, var)).unwrap();
                        let resp = c.request(&req).expect("query");
                        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let elapsed = start.elapsed().as_secs_f64();
        records.push(record("points_to", "binary", 1, per_thread, elapsed, &metrics));
    }

    // Warm means warm: the measured sections must not have compiled or
    // solved anything.
    assert_eq!(
        metrics.total_misses(),
        misses_before,
        "measured queries must all be cache hits"
    );

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown_server().expect("shutdown");
    handle.wait();

    // Update rows: the live-editing path, journaled (every edit fsync'd
    // to the WAL before the reply) vs `--no-wal`. The delta between the
    // two rows is the price of durability.
    let edits = per_thread.min(500);
    for wal_fsync in [true, false] {
        records.push(update_record(wal_fsync, edits));
    }

    // Fleet rows: the same warm points_to storm through the router. A
    // replica count the host cannot exercise in parallel is reported as
    // skipped, not faked.
    for replicas in [1usize, 2] {
        records.push(fleet_record(replicas, per_thread));
    }

    for r in &records {
        match r.get("queries_per_sec") {
            Some(Json::Num(qps)) => {
                let scenario = r.get("scenario").and_then(Json::as_str).unwrap();
                let protocol = r.get("protocol").and_then(Json::as_str).unwrap();
                let repl = r.get("replicas").and_then(Json::as_u64).unwrap();
                let threads = r.get("client_threads").and_then(Json::as_u64).unwrap();
                let per = r.get("queries_per_thread").and_then(Json::as_u64).unwrap();
                let wal = match r.get("wal_fsync").and_then(Json::as_bool) {
                    Some(true) => " (wal fsync)",
                    Some(false) => " (no wal)",
                    None => "",
                };
                println!(
                    "{scenario:>10}/{protocol} x{repl}: {threads} threads x \
                     {per} queries = {qps:.0} queries/sec{wal}"
                );
            }
            _ => {
                let reason = r.get("skipped_reason").and_then(Json::as_str).unwrap();
                println!("   skipped: {reason}");
            }
        }
    }

    let json = format!("{}\n", Json::Arr(records));
    let path = repo_root_file("BENCH_server.json");
    std::fs::write(&path, json).expect("write BENCH_server.json");
    println!("\nwrote {}", path.display());
}

fn record(
    scenario: &str,
    protocol: &str,
    replicas: usize,
    per_thread: usize,
    elapsed: f64,
    metrics: &Metrics,
) -> Json {
    let total = (CLIENT_THREADS * per_thread) as f64;
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("protocol", Json::str(protocol)),
        ("replicas", Json::count(replicas as u64)),
        ("host_cpus", Json::count(host_cpus())),
        ("client_threads", Json::count(CLIENT_THREADS as u64)),
        ("queries_per_thread", Json::count(per_thread as u64)),
        ("wall_clock_s", Json::num(elapsed)),
        ("queries_per_sec", Json::num(total / elapsed)),
        ("program_misses", Json::count(metrics_field(metrics, "program_misses"))),
        ("solve_misses", Json::count(metrics_field(metrics, "solve_misses"))),
    ])
}

/// One `update` scenario: a single editing client pushing alternating
/// one-function edits against a cached session, with the write-ahead
/// journal on (`wal_fsync: true` — every accepted edit is fsync'd before
/// the reply) or off (the `--no-wal` trade).
fn update_record(wal_fsync: bool, edits: usize) -> Json {
    let dir = std::env::temp_dir().join(format!(
        "scast-bench-wal-{}-{}",
        wal_fsync,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench snapshot dir");
    let cfg = ServerConfig {
        snapshot_dir: Some(dir.clone()),
        wal: wal_fsync,
        ..ServerConfig::default()
    };
    let handle = serve(&cfg).expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let src = |i: usize| {
        let tgt = if i.is_multiple_of(2) { "x" } else { "y" };
        format!("int x, y, *p; void f(void) {{ p = &{tgt}; }}")
    };
    let load = Json::obj([
        ("op", Json::str("load")),
        ("name", Json::str("live")),
        ("source", Json::str(src(0))),
    ]);
    let resp = c.request(&load).expect("load");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

    let start = Instant::now();
    for i in 1..=edits {
        let req = Json::obj([
            ("op", Json::str("update")),
            ("program", Json::str("live")),
            ("source", Json::str(src(i))),
        ]);
        let resp = c.request(&req).expect("update");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        assert_eq!(
            resp.get("durable").and_then(Json::as_bool),
            if wal_fsync { Some(true) } else { None },
            "durability claim must match the journal mode: {resp}"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();

    c.shutdown_server().expect("shutdown");
    drop(c);
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);

    Json::obj([
        ("scenario", Json::str("update")),
        ("protocol", Json::str("ndjson")),
        ("replicas", Json::count(1)),
        ("host_cpus", Json::count(host_cpus())),
        ("client_threads", Json::count(1)),
        ("queries_per_thread", Json::count(edits as u64)),
        ("wal_fsync", Json::Bool(wal_fsync)),
        ("wall_clock_s", Json::num(elapsed)),
        ("queries_per_sec", Json::num(edits as f64 / elapsed)),
    ])
}

/// A row honestly declining a measurement the host cannot support.
fn skipped_record(replicas: usize, per_thread: usize, reason: &str) -> Json {
    Json::obj([
        ("scenario", Json::str("fleet_points_to")),
        ("protocol", Json::str("ndjson")),
        ("replicas", Json::count(replicas as u64)),
        ("host_cpus", Json::count(host_cpus())),
        ("client_threads", Json::count(CLIENT_THREADS as u64)),
        ("queries_per_thread", Json::count(per_thread as u64)),
        ("wall_clock_s", Json::Null),
        ("queries_per_sec", Json::Null),
        ("skipped_reason", Json::str(reason)),
    ])
}

/// One fleet scenario: `replicas` scastd processes behind the router,
/// warmed, then the points_to storm. Sums the replica miss counters via
/// `fleet_stats` to prove the measured section was pure routing + lookup.
fn fleet_record(replicas: usize, per_thread: usize) -> Json {
    let cpus = host_cpus();
    if replicas > 1 && cpus < 2 {
        return skipped_record(
            replicas,
            per_thread,
            &format!("host has {cpus} cpu(s); {replicas}-replica parallelism is unmeasurable"),
        );
    }
    let Some(program) = scastd_path() else {
        return skipped_record(
            replicas,
            per_thread,
            "scastd binary not found next to this bench (build -p structcast-server first)",
        );
    };
    let cfg = FleetConfig {
        replicas,
        program,
        ..FleetConfig::default()
    };
    let fleet_h = fleet(&cfg).expect("spawn fleet");
    let addr = fleet_h.addr();

    let mut warm = Client::connect(addr).expect("connect router");
    for (prog, var) in TARGETS {
        let resp = warm.request_line(&points_to_req(prog, var)).expect("warm query");
        assert!(resp.contains("\"ok\": true"), "{resp}");
    }
    let misses_before = fleet_misses(&mut warm);

    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect router");
                for i in 0..per_thread {
                    let (prog, var) = TARGETS[(t + i) % TARGETS.len()];
                    let resp = c.request_line(&points_to_req(prog, var)).expect("query");
                    assert!(resp.contains("\"ok\": true"), "{resp}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (prog_misses, solve_misses) = fleet_misses(&mut warm);
    assert_eq!(
        (prog_misses, solve_misses),
        misses_before,
        "fleet measured section must be all hits"
    );

    let resp = warm
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("fleet shutdown");
    assert!(resp.contains("\"shutdown\": true"), "{resp}");
    drop(warm);
    fleet_h.wait();

    let total = (CLIENT_THREADS * per_thread) as f64;
    Json::obj([
        ("scenario", Json::str("fleet_points_to")),
        ("protocol", Json::str("ndjson")),
        ("replicas", Json::count(replicas as u64)),
        ("host_cpus", Json::count(host_cpus())),
        ("client_threads", Json::count(CLIENT_THREADS as u64)),
        ("queries_per_thread", Json::count(per_thread as u64)),
        ("wall_clock_s", Json::num(elapsed)),
        ("queries_per_sec", Json::num(total / elapsed)),
        ("program_misses", Json::count(prog_misses)),
        ("solve_misses", Json::count(solve_misses)),
    ])
}

/// Sums `(program_misses, solve_misses)` over every live replica from a
/// `fleet_stats` reply.
fn fleet_misses(c: &mut Client) -> (u64, u64) {
    let fs = c
        .request(&Json::obj([("op", Json::str("fleet_stats"))]))
        .expect("fleet_stats");
    let rows = fs
        .get("replicas")
        .and_then(Json::as_arr)
        .expect("replica rows");
    let mut prog = 0;
    let mut solve = 0;
    for row in rows {
        let stats = row.get("stats").expect("stats field");
        prog += stats.get("program_misses").and_then(Json::as_u64).unwrap_or(0);
        solve += stats.get("solve_misses").and_then(Json::as_u64).unwrap_or(0);
    }
    (prog, solve)
}

/// The `scastd` binary compiled into the same target directory as this
/// bench executable (`target/<profile>/deps/<bench>` → `target/<profile>/scastd`).
fn scastd_path() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join("scastd"))
        .find(|cand| cand.is_file())
}

fn metrics_field(metrics: &Metrics, key: &str) -> u64 {
    metrics
        .snapshot()
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// `BENCH_server.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}
