//! Ablation B: the non-portable Offsets instance under three layout
//! strategies (ilp32 / lp64 / packed32) — quantifies how layout choice
//! shifts its results, the paper's core argument for portable instances.

use structcast::{analyze, AnalysisConfig, Layout, ModelKind};
use structcast_bench::{lower_named, BenchGroup};
use structcast_driver::{experiments, report};

fn main() {
    println!("{}", report::render_layout(&experiments::run_ablation_layout(3)));

    let layouts = [Layout::ilp32(), Layout::lp64(), Layout::packed32()];
    let mut g = BenchGroup::new("ablation_layout");
    g.sample_size(20);
    for p in structcast_progen::casty_corpus().iter().take(6) {
        let prog = lower_named(p.name, p.source);
        for l in &layouts {
            let cfg = AnalysisConfig::new(ModelKind::Offsets).with_layout(l.clone());
            g.bench(&format!("{}/{}", l.name, p.name), || {
                analyze(&prog, &cfg).edge_count()
            });
        }
    }
}
