//! Ablation B: the non-portable Offsets instance under three layout
//! strategies (ilp32 / lp64 / packed32) — quantifies how layout choice
//! shifts its results, the paper's core argument for portable instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use structcast::{analyze, AnalysisConfig, Layout, ModelKind};
use structcast_bench::lower_named;
use structcast_driver::{experiments, report};

fn bench(c: &mut Criterion) {
    println!("{}", report::render_layout(&experiments::run_ablation_layout()));

    let layouts = [Layout::ilp32(), Layout::lp64(), Layout::packed32()];
    let mut g = c.benchmark_group("ablation_layout");
    g.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::casty_corpus().iter().take(6) {
        let prog = lower_named(p.name, p.source);
        for l in &layouts {
            let cfg = AnalysisConfig::new(ModelKind::Offsets).with_layout(l.clone());
            g.bench_with_input(
                BenchmarkId::new(l.name, p.name),
                &(&prog, cfg),
                |b, (prog, cfg)| b.iter(|| analyze(prog, cfg).edge_count()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
