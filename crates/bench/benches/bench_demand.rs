//! Demand-driven vs exhaustive solving: what does a single-pointer query
//! cost when only the slice it can see is solved?
//!
//! For each progen preset (small, medium, and large) the bench compiles
//! one session, measures the exhaustive specialize+solve wall-clock, then
//! measures the *cold* demand path (slice + solve, no caching) for the two
//! query shapes the server actually serves — `points_to` on the named
//! pointers with the smallest nonempty backward slices (the focused
//! queries demand mode exists for) and `alias` on pairs of them — and
//! writes `BENCH_demand.json` at the repo root: one record per (preset,
//! model, query, subject) carrying `slice_statements` /
//! `total_statements` and both wall-clocks, so the demand mode's two
//! claims stay tracked across PRs:
//!
//! * the slice is a strict subset on non-toy programs
//!   (`slice_statements < total_statements` on medium/large), and
//! * a cold single-pointer demand query is cheaper than the exhaustive
//!   fixpoint (`demand_s < exhaustive_s`).
//!
//! Env knobs: `SCAST_BENCH_SMOKE=1` shrinks the run to the small preset
//! with a single sample (the CI smoke path).

use structcast::{AnalysisConfig, ConstraintSlicer, DemandQuery, ModelKind, ObjId};
use structcast_bench::{compile_session, session_solve, BenchGroup};
use structcast_progen::{generate, GenConfig};

/// Pointers queried per (preset, model): enough to see variance between
/// slices, few enough to keep the bench quick.
const QUERIES_PER_CASE: usize = 3;

struct Record {
    preset: &'static str,
    lines: usize,
    model: String,
    query: &'static str,
    var: String,
    slice_statements: usize,
    total_statements: usize,
    exhaustive_s: f64,
    demand_s: f64,
}

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    let mut cases = vec![("small", GenConfig::small(97))];
    if !smoke {
        cases.push(("medium", GenConfig::medium(97)));
        cases.push(("large", GenConfig::large(97)));
    }

    let mut records: Vec<Record> = Vec::new();
    let mut g = BenchGroup::new("demand");
    for (label, base) in &cases {
        // Fewer samples on the large preset: its exhaustive baseline
        // dominates the run and the medians are stable well before 10.
        g.sample_size(if smoke {
            1
        } else if *label == "large" {
            3
        } else {
            10
        });
        let cfg = base.clone().with_cast_ratio(0.5);
        let src = generate(&cfg);
        let lines = src.lines().count();
        let prog = structcast::lower_source(&src).expect("generated code lowers");
        let (session, _) = compile_session(&prog);
        let total = session.constraints().len();
        for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
            let config = AnalysisConfig::new(kind);
            let full = session.solve(&config);
            // The exhaustive baseline every query would otherwise pay.
            let exhaustive =
                g.bench(&format!("{label}/{kind:?}/exhaustive"), || session_solve(&session, kind));
            // Query the named pointers whose backward slices are smallest
            // (ties broken by name, so the pick is deterministic) among
            // those with nonempty sets — nonemptiness keeps the queries
            // honest (an empty slice would flatter the demand numbers),
            // and small slices are demand mode's target workload: a
            // focused query about one pointer. Pointers reached through
            // loads drag in the whole address-taken closure and degrade
            // to the exhaustive solve plus slicing overhead; that worst
            // case is bounded by the exhaustive rows published alongside.
            let slicer = ConstraintSlicer::new(&prog, session.constraints());
            let mut candidates: Vec<(usize, String, ObjId)> = (0..prog.objects.len() as u32)
                .map(ObjId)
                .filter(|&o| {
                    prog.object(o).kind.is_named_variable()
                        && !full.points_to(&prog, o).is_empty()
                })
                .map(|o| {
                    let n = slicer.slice(&[o]).stats.slice_statements;
                    (n, prog.object(o).name.clone(), o)
                })
                .collect();
            candidates.sort();
            let pointers: Vec<(ObjId, String)> = candidates
                .into_iter()
                .take(QUERIES_PER_CASE)
                .map(|(_, name, o)| (o, name))
                .collect();
            for (obj, var) in &pointers {
                let obj = *obj;
                let query = DemandQuery::PointsTo { obj };
                let d = session.solve_demand(&query, &config);
                assert_eq!(
                    d.result.points_to(&prog, obj),
                    full.points_to(&prog, obj),
                    "{label}/{kind:?}/{var}: demand must match exhaustive"
                );
                let stats = g.bench(&format!("{label}/{kind:?}/demand:{var}"), || {
                    session.solve_demand(&query, &config).stats.slice_statements
                });
                records.push(Record {
                    preset: label,
                    lines,
                    model: format!("{kind:?}"),
                    query: "points_to",
                    var: var.clone(),
                    slice_statements: d.stats.slice_statements,
                    total_statements: total,
                    exhaustive_s: exhaustive.median.as_secs_f64(),
                    demand_s: stats.median.as_secs_f64(),
                });
            }
            // Alias queries — the other shape the server serves in demand
            // mode — on pairs of the same focused pointers. An alias slice
            // is rooted at both variables, so it measures the cost of a
            // two-root slice against the one-root rows above.
            let mut pairs: Vec<(&(ObjId, String), &(ObjId, String))> = Vec::new();
            for i in 0..pointers.len() {
                for j in i + 1..pointers.len() {
                    pairs.push((&pointers[i], &pointers[j]));
                }
            }
            pairs.truncate(QUERIES_PER_CASE);
            for ((a, an), (b, bn)) in pairs {
                let (a, b) = (*a, *b);
                let query = DemandQuery::Alias { a, b };
                let d = session.solve_demand(&query, &config);
                assert_eq!(
                    d.result.may_alias(&prog, a, b),
                    full.may_alias(&prog, a, b),
                    "{label}/{kind:?}/alias {an}/{bn}: demand must match exhaustive"
                );
                let stats = g.bench(&format!("{label}/{kind:?}/alias:{an}/{bn}"), || {
                    session.solve_demand(&query, &config).stats.slice_statements
                });
                records.push(Record {
                    preset: label,
                    lines,
                    model: format!("{kind:?}"),
                    query: "alias",
                    var: format!("{an}/{bn}"),
                    slice_statements: d.stats.slice_statements,
                    total_statements: total,
                    exhaustive_s: exhaustive.median.as_secs_f64(),
                    demand_s: stats.median.as_secs_f64(),
                });
            }
        }
    }

    let json = render_json(&records);
    let path = repo_root_file("BENCH_demand.json");
    std::fs::write(&path, json).expect("write BENCH_demand.json");
    println!("\nwrote {}", path.display());
}

/// `BENCH_demand.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"preset\": \"{}\", \"lines\": {}, \"model\": \"{}\", \
             \"query\": \"{}\", \"var\": \"{}\", \"slice_statements\": {}, \
             \"total_statements\": {}, \"slice_ratio\": {:.4}, \
             \"exhaustive_s\": {:.6}, \"demand_s\": {:.6}, \
             \"speedup\": {:.3}}}{}\n",
            r.preset,
            r.lines,
            r.model,
            r.query,
            r.var,
            r.slice_statements,
            r.total_statements,
            r.slice_statements as f64 / r.total_statements.max(1) as f64,
            r.exhaustive_s,
            r.demand_s,
            r.exhaustive_s / r.demand_s.max(1e-9),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
