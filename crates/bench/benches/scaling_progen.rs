//! Scaling: solver cost vs generated-program size and cast frequency,
//! spanning the paper's 650–29,000-line benchmark size range with the
//! synthetic generator.
//!
//! Besides the timing table, this bench writes `BENCH_solver.json` at the
//! repo root — one record per (program, model) with edges, solver
//! iterations, and median wall-clock — so the solver's perf trajectory is
//! tracked across PRs. Set `SCAST_BENCH_LARGE=1` to include the `large`
//! preset (tens of thousands of lines).

use structcast::ModelKind;
use structcast_bench::{solve, solve_full, BenchGroup};
use structcast_driver::{experiments, report};
use structcast_progen::{generate, GenConfig};

struct Record {
    preset: &'static str,
    cast_ratio: f64,
    lines: usize,
    assignments: usize,
    model: ModelKind,
    edges: usize,
    iterations: u64,
    wall_clock_s: f64,
}

fn main() {
    println!("{}", report::render_scaling(&experiments::run_scaling(false)));

    let mut cases = vec![
        ("small", GenConfig::small(97)),
        ("medium", GenConfig::medium(97)),
    ];
    if std::env::var_os("SCAST_BENCH_LARGE").is_some() {
        cases.push(("large", GenConfig::large(97)));
    }
    let ratios = [0.0, 0.5, 1.0];

    let mut records: Vec<Record> = Vec::new();
    let mut g = BenchGroup::new("scaling");
    g.sample_size(10);
    for (label, base) in &cases {
        for r in ratios {
            let cfg = base.clone().with_cast_ratio(r);
            let src = generate(&cfg);
            let lines = src.lines().count();
            let prog = structcast::lower_source(&src).expect("generated code lowers");
            for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
                let (edges, iterations, _) = solve_full(&prog, kind);
                let stats = g.bench(&format!("{label}/{kind:?}/r{r}"), || solve(&prog, kind));
                records.push(Record {
                    preset: label,
                    cast_ratio: r,
                    lines,
                    assignments: prog.assignment_count(),
                    model: kind,
                    edges,
                    iterations,
                    wall_clock_s: stats.median.as_secs_f64(),
                });
            }
        }
    }

    let json = render_json(&records);
    let path = repo_root_file("BENCH_solver.json");
    std::fs::write(&path, json).expect("write BENCH_solver.json");
    println!("\nwrote {}", path.display());
}

/// `BENCH_solver.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"preset\": \"{}\", \"cast_ratio\": {}, \"lines\": {}, \
             \"assignments\": {}, \"model\": \"{:?}\", \"edges\": {}, \
             \"iterations\": {}, \"wall_clock_s\": {:.6}}}{}\n",
            r.preset,
            r.cast_ratio,
            r.lines,
            r.assignments,
            r.model,
            r.edges,
            r.iterations,
            r.wall_clock_s,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
