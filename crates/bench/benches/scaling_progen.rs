//! Scaling: solver cost vs generated-program size and cast frequency,
//! spanning the paper's 650–29,000-line benchmark size range with the
//! synthetic generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use structcast::ModelKind;
use structcast_bench::solve;
use structcast_driver::{experiments, report};
use structcast_progen::{generate, GenConfig};

fn bench(c: &mut Criterion) {
    println!("{}", report::render_scaling(&experiments::run_scaling(false)));

    let cases = [
        ("small", GenConfig::small(97)),
        ("medium", GenConfig::medium(97)),
    ];
    let ratios = [0.0, 0.5, 1.0];

    let mut g = c.benchmark_group("scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    for (label, base) in cases {
        for r in ratios {
            let cfg = base.clone().with_cast_ratio(r);
            let src = generate(&cfg);
            let prog = structcast::lower_source(&src).expect("generated code lowers");
            g.throughput(Throughput::Elements(prog.assignment_count() as u64));
            for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{label}/{kind:?}"), format!("r{r}")),
                    &prog,
                    |b, prog| b.iter(|| solve(prog, kind)),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
