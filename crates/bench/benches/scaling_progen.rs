//! Scaling: solver cost vs generated-program size and cast frequency,
//! spanning the paper's 650–29,000-line benchmark size range with the
//! synthetic generator.
//!
//! Besides the timing table, this bench writes `BENCH_solver.json` at the
//! repo root — one record per (program, model) with edges, solver
//! iterations, the one-time constraint-compilation time (`compile_s`,
//! stage 1, shared by every model of that program), and the median
//! per-model specialize+solve wall-clock (`wall_clock_s`) — so both the
//! solver's perf trajectory and the compile-once-vs-per-model split are
//! tracked across PRs.
//!
//! Env knobs: `SCAST_BENCH_LARGE=1` adds the `large` preset (tens of
//! thousands of lines); `SCAST_BENCH_SMOKE=1` shrinks the run to one
//! small case with a single sample (the CI smoke path).

use structcast::ModelKind;
use structcast_bench::{compile_session, session_solve, BenchGroup};
use structcast_driver::{experiments, report};
use structcast_progen::{generate, GenConfig};

struct Record {
    preset: &'static str,
    cast_ratio: f64,
    lines: usize,
    assignments: usize,
    model: ModelKind,
    edges: usize,
    iterations: u64,
    compile_s: f64,
    wall_clock_s: f64,
}

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    if !smoke {
        println!("{}", report::render_scaling(&experiments::run_scaling(false)));
    }

    let mut cases = vec![("small", GenConfig::small(97))];
    if !smoke {
        cases.push(("medium", GenConfig::medium(97)));
        if std::env::var_os("SCAST_BENCH_LARGE").is_some() {
            cases.push(("large", GenConfig::large(97)));
        }
    }
    let ratios: &[f64] = if smoke { &[0.5] } else { &[0.0, 0.5, 1.0] };

    let mut records: Vec<Record> = Vec::new();
    let mut g = BenchGroup::new("scaling");
    g.sample_size(if smoke { 1 } else { 10 });
    for (label, base) in &cases {
        for &r in ratios {
            let cfg = base.clone().with_cast_ratio(r);
            let src = generate(&cfg);
            let lines = src.lines().count();
            let prog = structcast::lower_source(&src).expect("generated code lowers");
            // Stage 1 once per program; every model below reuses it.
            let (session, compile_wall) = compile_session(&prog);
            let compile_s = compile_wall.as_secs_f64();
            for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
                let res = session.solve(&structcast::AnalysisConfig::new(kind));
                let stats =
                    g.bench(&format!("{label}/{kind:?}/r{r}"), || session_solve(&session, kind));
                records.push(Record {
                    preset: label,
                    cast_ratio: r,
                    lines,
                    assignments: prog.assignment_count(),
                    model: kind,
                    edges: res.edge_count(),
                    iterations: res.iterations,
                    compile_s,
                    wall_clock_s: stats.median.as_secs_f64(),
                });
            }
        }
    }

    let json = render_json(&records);
    let path = repo_root_file("BENCH_solver.json");
    std::fs::write(&path, json).expect("write BENCH_solver.json");
    println!("\nwrote {}", path.display());
}

/// `BENCH_solver.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"preset\": \"{}\", \"cast_ratio\": {}, \"lines\": {}, \
             \"assignments\": {}, \"model\": \"{:?}\", \"edges\": {}, \
             \"iterations\": {}, \"compile_s\": {:.6}, \"wall_clock_s\": {:.6}}}{}\n",
            r.preset,
            r.cast_ratio,
            r.lines,
            r.assignments,
            r.model,
            r.edges,
            r.iterations,
            r.compile_s,
            r.wall_clock_s,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
