//! Scaling: solver cost vs generated-program size and cast frequency,
//! spanning the paper's 650–29,000-line benchmark size range with the
//! synthetic generator.
//!
//! Besides the timing table, this bench writes `BENCH_solver.json` at the
//! repo root — one record per (program, model) with edges, solver
//! iterations, the one-time constraint-compilation time (`compile_s`,
//! stage 1, shared by every model of that program), and the median
//! per-model specialize+solve wall-clock (`wall_clock_s`) — so both the
//! solver's perf trajectory and the compile-once-vs-per-model split are
//! tracked across PRs. Each record also carries `threads`: the per-model
//! rows are sequential (`threads: 1`), and every program additionally gets
//! two `AllModels` rows timing the four default instances solved
//! back-to-back (`threads: 1`) vs fanned out via `solve_all`
//! (`threads: 4`), so the multi-model speedup is tracked across PRs too.
//! Every record carries `host_cpus` (the parallelism actually available
//! when the numbers were taken): the t4/t1 ratio is only meaningful up to
//! that bound. On a single-CPU host the parallel rows would measure pure
//! scheduling overhead, not speedup, so they are published with
//! `"wall_clock_s": null` and a `"skipped_reason"` instead of a
//! misleading number — the row (and its schema) stays, the fake
//! measurement goes.
//!
//! Env knobs: `SCAST_BENCH_LARGE=1` adds the `large` preset (tens of
//! thousands of lines); `SCAST_BENCH_SMOKE=1` shrinks the run to one
//! small case with a single sample (the CI smoke path).

use structcast::ModelKind;
use structcast_bench::{compile_session, session_solve, session_solve_all, BenchGroup};
use structcast_driver::{experiments, report};
use structcast_progen::{generate, GenConfig};

/// Fan-out width for the parallel `AllModels` rows: one worker per model.
const PAR_THREADS: usize = 4;

struct Record {
    preset: &'static str,
    cast_ratio: f64,
    lines: usize,
    assignments: usize,
    model: String,
    threads: usize,
    host_cpus: usize,
    edges: usize,
    iterations: u64,
    compile_s: f64,
    /// `None` when the row was skipped rather than measured.
    wall_clock_s: Option<f64>,
    skipped_reason: Option<&'static str>,
}

fn main() {
    let smoke = std::env::var_os("SCAST_BENCH_SMOKE").is_some();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cpus < PAR_THREADS {
        println!(
            "note: only {host_cpus} CPU(s) available — the AllModels/t{PAR_THREADS} \
             rows cannot show real speedup on this host"
        );
    }
    if !smoke {
        println!(
            "{}",
            report::render_scaling(&experiments::run_scaling(false, PAR_THREADS))
        );
    }

    let mut cases = vec![("small", GenConfig::small(97))];
    if !smoke {
        cases.push(("medium", GenConfig::medium(97)));
        if std::env::var_os("SCAST_BENCH_LARGE").is_some() {
            cases.push(("large", GenConfig::large(97)));
        }
    }
    let ratios: &[f64] = if smoke { &[0.5] } else { &[0.0, 0.5, 1.0] };

    let mut records: Vec<Record> = Vec::new();
    let mut g = BenchGroup::new("scaling");
    g.sample_size(if smoke { 1 } else { 10 });
    for (label, base) in &cases {
        for &r in ratios {
            let cfg = base.clone().with_cast_ratio(r);
            let src = generate(&cfg);
            let lines = src.lines().count();
            let prog = structcast::lower_source(&src).expect("generated code lowers");
            // Stage 1 once per program; every model below reuses it.
            let (session, compile_wall) = compile_session(&prog);
            let compile_s = compile_wall.as_secs_f64();
            for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
                let res = session.solve(&structcast::AnalysisConfig::new(kind));
                let stats =
                    g.bench(&format!("{label}/{kind:?}/r{r}"), || session_solve(&session, kind));
                records.push(Record {
                    preset: label,
                    cast_ratio: r,
                    lines,
                    assignments: prog.assignment_count(),
                    model: format!("{kind:?}"),
                    threads: 1,
                    host_cpus,
                    edges: res.edge_count(),
                    iterations: res.iterations,
                    compile_s,
                    wall_clock_s: Some(stats.median.as_secs_f64()),
                    skipped_reason: None,
                });
            }
            // Multi-model rows: the four default instances as one batch,
            // sequential vs `solve_all` at PAR_THREADS workers. Identical
            // answers by construction; only wall-clock differs.
            let configs = structcast::AnalysisConfig::default().for_all_kinds();
            let all = session.solve_all(&configs, 1);
            let (all_edges, all_iters) = all
                .iter()
                .fold((0usize, 0u64), |(e, i), r| (e + r.edge_count(), i + r.iterations));
            for threads in [1usize, PAR_THREADS] {
                // A parallel row on a single-CPU host would publish pure
                // scheduling overhead as a "speedup" baseline. Keep the
                // row (schema and CI greps depend on it) but replace the
                // measurement with a skip marker.
                let (wall_clock_s, skipped_reason) = if threads > 1 && host_cpus < 2 {
                    (None, Some("host_cpus < 2: parallel row would measure overhead, not speedup"))
                } else {
                    let stats = g.bench(&format!("{label}/AllModels/t{threads}/r{r}"), || {
                        session_solve_all(&session, threads)
                    });
                    (Some(stats.median.as_secs_f64()), None)
                };
                records.push(Record {
                    preset: label,
                    cast_ratio: r,
                    lines,
                    assignments: prog.assignment_count(),
                    model: "AllModels".to_string(),
                    threads,
                    host_cpus,
                    edges: all_edges,
                    iterations: all_iters,
                    compile_s,
                    wall_clock_s,
                    skipped_reason,
                });
            }
        }
    }

    let json = render_json(&records);
    let path = repo_root_file("BENCH_solver.json");
    std::fs::write(&path, json).expect("write BENCH_solver.json");
    println!("\nwrote {}", path.display());
}

/// `BENCH_solver.json` lives at the repo root, two levels above this
/// crate's manifest.
fn repo_root_file(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join(name)
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let wall = match r.wall_clock_s {
            Some(w) => format!("{w:.6}"),
            None => "null".to_string(),
        };
        let skipped = match r.skipped_reason {
            Some(reason) => format!(", \"skipped_reason\": \"{reason}\""),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {{\"preset\": \"{}\", \"cast_ratio\": {}, \"lines\": {}, \
             \"assignments\": {}, \"model\": \"{}\", \"threads\": {}, \
             \"host_cpus\": {}, \"edges\": {}, \
             \"iterations\": {}, \"compile_s\": {:.6}, \"wall_clock_s\": {}{}}}{}\n",
            r.preset,
            r.cast_ratio,
            r.lines,
            r.assignments,
            r.model,
            r.threads,
            r.host_cpus,
            r.edges,
            r.iterations,
            r.compile_s,
            wall,
            skipped,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
