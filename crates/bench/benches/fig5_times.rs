//! Figure 5: analysis-time ratios normalized to the Offsets instance.
//!
//! The measurements *are* the figure's data: compare the per-model rows
//! for each program. The normalized table is also printed once.

use structcast::ModelKind;
use structcast_bench::{lower_named, solve, BenchGroup};
use structcast_driver::{experiments, report};

fn main() {
    println!("{}", report::render_fig5(&experiments::run_fig5(3)));

    let mut g = BenchGroup::new("fig5");
    g.sample_size(30);
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        for kind in ModelKind::ALL {
            g.bench(&format!("{}/{kind:?}", p.name), || solve(&prog, kind));
        }
    }
}
