//! Figure 5: analysis-time ratios normalized to the Offsets instance.
//!
//! The Criterion measurements *are* the figure's data: compare the per-model
//! groups for each program. The normalized table is also printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use structcast::ModelKind;
use structcast_bench::{lower_named, solve};
use structcast_driver::{experiments, report};

fn bench(c: &mut Criterion) {
    println!("{}", report::render_fig5(&experiments::run_fig5(3)));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(30).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        for kind in ModelKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(p.name, format!("{kind:?}")),
                &prog,
                |b, prog| b.iter(|| solve(prog, kind)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
