//! Figure 4: average points-to set size per static dereference.
//!
//! Benches the full solve per (cast-heavy program, instance) and prints the
//! Figure 4 table once at startup so the run regenerates the paper's data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use structcast::ModelKind;
use structcast_bench::{lower_named, solve};
use structcast_driver::{experiments, report};

fn bench(c: &mut Criterion) {
    // Regenerate and print the table (the actual figure).
    println!("{}", report::render_fig4(&experiments::run_fig4()));

    let mut g = c.benchmark_group("fig4");
    g.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(250));
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        for kind in ModelKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), p.name),
                &prog,
                |b, prog| b.iter(|| solve(prog, kind)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
