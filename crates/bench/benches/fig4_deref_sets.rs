//! Figure 4: average points-to set size per static dereference.
//!
//! Benches the full solve per (cast-heavy program, instance) and prints the
//! Figure 4 table once at startup so the run regenerates the paper's data.

use structcast::ModelKind;
use structcast_bench::{lower_named, solve, BenchGroup};
use structcast_driver::{experiments, report};

fn main() {
    // Regenerate and print the table (the actual figure).
    println!("{}", report::render_fig4(&experiments::run_fig4(4)));

    let mut g = BenchGroup::new("fig4");
    g.sample_size(20);
    for p in structcast_progen::casty_corpus() {
        let prog = lower_named(p.name, p.source);
        for kind in ModelKind::ALL {
            g.bench(&format!("{kind:?}/{}", p.name), || solve(&prog, kind));
        }
    }
}
