//! Equivalence suite: the delta-propagating interned solver must compute
//! *byte-identical* sorted edge sets to the original statement-set
//! semantics for every model, over the progen corpus and the hand-written
//! casty corpus.
//!
//! The reference implementation below is a deliberately naive chaotic
//! iteration: it sweeps **every** statement applying the seed solver's
//! rule bodies verbatim (full `points_to_vec` snapshots, no cursors, no
//! interning in the driver loop) until a whole sweep adds nothing. Both
//! solvers compute the least fixpoint of the same monotone rule system,
//! so any bookkeeping bug in the delta engine — a missed subscription, a
//! cursor advanced too far, a stale compiled operand — shows up as an
//! edge-set diff here.

use structcast::models::make_model;
use structcast::{
    lower_source, ArithMode, CompatMode, FactStore, FieldModel, FieldPath, Layout, Loc, ModelKind,
    ModelStats, Program, Solver, Stmt,
};
use structcast_ir::{Callee, FuncId, ObjId};
use structcast_progen::{casty_corpus, generate, GenConfig};
use std::collections::{BTreeSet, HashSet};

/// The seed solver's semantics, restated as chaotic iteration over the
/// statement set (plus call bindings synthesized into it).
struct Reference<'p> {
    prog: &'p Program,
    model: Box<dyn FieldModel>,
    facts: FactStore,
    stats: ModelStats,
    stmts: Vec<Stmt>,
    bound_calls: HashSet<(usize, FuncId)>,
    arith_mode: ArithMode,
    unknown: BTreeSet<Loc>,
}

impl<'p> Reference<'p> {
    fn new(prog: &'p Program, model: Box<dyn FieldModel>, arith_mode: ArithMode) -> Self {
        Reference {
            prog,
            model,
            facts: FactStore::new(),
            stats: ModelStats::default(),
            stmts: prog.stmts.clone(),
            bound_calls: HashSet::new(),
            arith_mode,
            unknown: BTreeSet::new(),
        }
    }

    fn norm(&self, obj: ObjId, path: &FieldPath) -> Loc {
        self.model.normalize(self.prog, obj, path)
    }

    fn norm_top(&self, obj: ObjId) -> Loc {
        self.norm(obj, &FieldPath::empty())
    }

    /// Declared pointee with the seed's per-call `char` scan fallback.
    fn pointee(&self, ptr: ObjId) -> structcast::TypeId {
        self.prog.pointee_of(ptr).unwrap_or_else(|| {
            let k = structcast_types::TypeKind::Int(structcast_types::IntKind::Char);
            (0..self.prog.types.len() as u32)
                .map(structcast::TypeId)
                .find(|t| self.prog.types.kind(*t) == &k)
                .unwrap_or_else(|| self.prog.type_of(ptr))
        })
    }

    fn copy_facts(&mut self, dst: &Loc, src: &Loc) {
        for t in self.facts.points_to_vec(src) {
            self.facts.insert(dst.clone(), t);
        }
        if self.unknown.contains(src) {
            self.unknown.insert(dst.clone());
        }
    }

    fn process(&mut self, idx: usize) {
        let stmt = self.stmts[idx].clone();
        match stmt {
            Stmt::AddrOf { dst, src, path } => {
                let d = self.norm_top(dst);
                let t = self.norm(src, &path);
                self.facts.insert(d, t);
            }
            Stmt::AddrField { dst, ptr, path } => {
                let p = self.norm_top(ptr);
                let tau_p = self.pointee(ptr);
                let d = self.norm_top(dst);
                for tgt in self.facts.points_to_vec(&p) {
                    let results = self
                        .model
                        .lookup(self.prog, tau_p, &path, &tgt, &mut self.stats);
                    for r in results {
                        self.facts.insert(d.clone(), r);
                    }
                }
            }
            Stmt::Copy { dst, src, path } => {
                let d = self.norm_top(dst);
                let s = self.norm(src, &path);
                let tau = self.prog.type_of(dst);
                let pairs = self
                    .model
                    .resolve(self.prog, &d, &s, tau, &self.facts, &mut self.stats);
                for (dl, sl) in pairs {
                    self.copy_facts(&dl, &sl);
                }
            }
            Stmt::Load { dst, ptr } => {
                let p = self.norm_top(ptr);
                let d = self.norm_top(dst);
                let tau = self.prog.type_of(dst);
                for tgt in self.facts.points_to_vec(&p) {
                    let pairs = self
                        .model
                        .resolve(self.prog, &d, &tgt, tau, &self.facts, &mut self.stats);
                    for (dl, sl) in pairs {
                        self.copy_facts(&dl, &sl);
                    }
                }
            }
            Stmt::Store { ptr, src } => {
                let p = self.norm_top(ptr);
                let s = self.norm_top(src);
                let tau_p = self.pointee(ptr);
                for tgt in self.facts.points_to_vec(&p) {
                    let pairs = self
                        .model
                        .resolve(self.prog, &tgt, &s, tau_p, &self.facts, &mut self.stats);
                    for (dl, sl) in pairs {
                        self.copy_facts(&dl, &sl);
                    }
                }
            }
            Stmt::PtrArith { dst, src } => {
                let s = self.norm_top(src);
                let d = self.norm_top(dst);
                match self.arith_mode {
                    ArithMode::Spread => {
                        let pointee = self.prog.pointee_of(src);
                        for tgt in self.facts.points_to_vec(&s) {
                            for l in self.model.spread(self.prog, &tgt, pointee) {
                                self.facts.insert(d.clone(), l);
                            }
                        }
                    }
                    ArithMode::FlagUnknown => {
                        self.unknown.insert(d);
                    }
                }
            }
            Stmt::CopyAll { dst_ptr, src_ptr } => {
                let dp = self.norm_top(dst_ptr);
                let sp = self.norm_top(src_ptr);
                for dt in self.facts.points_to_vec(&dp) {
                    for st in self.facts.points_to_vec(&sp) {
                        let pairs = self
                            .model
                            .resolve_all(self.prog, &dt, &st, &self.facts, &mut self.stats);
                        for (dl, sl) in pairs {
                            self.copy_facts(&dl, &sl);
                        }
                    }
                }
            }
            Stmt::Call { callee, args, ret } => match callee {
                Callee::Direct(fid) => self.bind_call(idx, fid, &args, ret),
                Callee::Indirect(fp) => {
                    let p = self.norm_top(fp);
                    for tgt in self.facts.points_to_vec(&p) {
                        if let Some(fid) = self.prog.as_function(tgt.obj) {
                            self.bind_call(idx, fid, &args, ret);
                        }
                    }
                }
            },
        }
    }

    fn bind_call(&mut self, idx: usize, fid: FuncId, args: &[ObjId], ret: Option<ObjId>) {
        if !self.bound_calls.insert((idx, fid)) {
            return;
        }
        let f = self.prog.function(fid);
        for (i, &arg) in args.iter().enumerate() {
            if let Some(&param) = f.params.get(i) {
                self.stmts.push(Stmt::Copy {
                    dst: param,
                    src: arg,
                    path: FieldPath::empty(),
                });
            } else if let Some(va) = f.varargs {
                self.stmts.push(Stmt::Copy {
                    dst: va,
                    src: arg,
                    path: FieldPath::empty(),
                });
            }
        }
        if let (Some(r), Some(rs)) = (ret, f.ret_slot) {
            self.stmts.push(Stmt::Copy {
                dst: r,
                src: rs,
                path: FieldPath::empty(),
            });
        }
    }

    /// Chaotic iteration: sweep everything until a sweep changes nothing.
    fn run(mut self) -> (FactStore, BTreeSet<Loc>, HashSet<(usize, FuncId)>) {
        loop {
            let before = (
                self.facts.len(),
                self.unknown.len(),
                self.bound_calls.len(),
                self.stmts.len(),
            );
            let mut i = 0;
            while i < self.stmts.len() {
                self.process(i);
                i += 1;
            }
            let after = (
                self.facts.len(),
                self.unknown.len(),
                self.bound_calls.len(),
                self.stmts.len(),
            );
            if before == after {
                return (self.facts, self.unknown, self.bound_calls);
            }
        }
    }
}

/// All edges of a store as a sorted `(src, tgt)` list — the canonical form
/// both solvers must agree on byte-for-byte.
fn sorted_edges(facts: &FactStore) -> Vec<(Loc, Loc)> {
    let mut v: Vec<(Loc, Loc)> = facts.iter().map(|(s, t)| (s.clone(), t.clone())).collect();
    v.sort();
    v
}

fn assert_equivalent(prog: &Program, kind: ModelKind, mode: ArithMode, what: &str) {
    let mk = || make_model(kind, Layout::ilp32(), CompatMode::Structural);
    let out = Solver::new(prog, mk()).with_arith_mode(mode).run();
    let (ref_facts, ref_unknown, ref_bound) =
        Reference::new(prog, mk(), mode).run();

    let got = sorted_edges(&out.facts);
    let want = sorted_edges(&ref_facts);
    assert_eq!(
        got.len(),
        want.len(),
        "{what}/{kind}: edge count {} vs reference {}",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g, w, "{what}/{kind}: first differing edge");
    }
    assert_eq!(out.unknown, ref_unknown, "{what}/{kind}: unknown set");
    assert_eq!(
        out.resolved_indirect_calls,
        ref_bound.len(),
        "{what}/{kind}: bound (site, callee) pairs"
    );
}

#[test]
fn casty_corpus_matches_reference_for_all_models() {
    for p in casty_corpus() {
        let prog = lower_source(p.source).expect("corpus program lowers");
        for kind in ModelKind::ALL {
            assert_equivalent(&prog, kind, ArithMode::Spread, p.name);
        }
    }
}

#[test]
fn progen_programs_match_reference_for_all_models() {
    for seed in [7u64, 97, 2026] {
        for ratio in [0.0, 0.5, 1.0] {
            let cfg = GenConfig::small(seed).with_cast_ratio(ratio);
            let src = generate(&cfg);
            let prog = lower_source(&src).expect("generated program lowers");
            let what = format!("progen(seed={seed}, r={ratio})");
            for kind in ModelKind::ALL {
                assert_equivalent(&prog, kind, ArithMode::Spread, &what);
            }
        }
    }
}

/// A store's sorted edge list rendered to bytes, for literal byte-identity
/// comparisons across solve paths.
fn edge_bytes(facts: &FactStore) -> Vec<u8> {
    let mut s = String::new();
    for (src, tgt) in sorted_edges(facts) {
        s.push_str(&format!("{src}->{tgt}\n"));
    }
    s.into_bytes()
}

/// The compile-once, solve-many session must (a) perform the IR→constraint
/// compilation exactly once for a 4-model run, and (b) produce edge sets
/// byte-identical to four independent `analyze` calls — over both corpus
/// and generated programs.
#[test]
fn session_compile_once_matches_independent_analyze() {
    use structcast::{analyze, AnalysisConfig, AnalysisSession};

    let corpus: Vec<(String, String)> = casty_corpus()
        .iter()
        .take(3)
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    let generated = (
        "progen(seed=11, r=0.5)".to_string(),
        generate(&GenConfig::small(11).with_cast_ratio(0.5)),
    );
    for (name, src) in corpus.into_iter().chain([generated]) {
        let prog = lower_source(&src).expect("program lowers");

        // Compile-once: the counter is thread-local, so only this test's
        // own compilations are visible here.
        let before = structcast::constraints::compiles_on_thread();
        let session = AnalysisSession::compile(&prog);
        let shared: Vec<_> = ModelKind::ALL
            .iter()
            .map(|kind| session.solve(&AnalysisConfig::new(*kind)))
            .collect();
        assert_eq!(
            structcast::constraints::compiles_on_thread() - before,
            1,
            "{name}: a 4-model session run must compile constraints exactly once"
        );

        for (kind, from_session) in ModelKind::ALL.iter().zip(&shared) {
            let independent = analyze(&prog, &AnalysisConfig::new(*kind));
            assert_eq!(
                edge_bytes(&from_session.facts),
                edge_bytes(&independent.facts),
                "{name}/{kind}: session vs independent analyze edge sets"
            );
            assert_eq!(
                from_session.iterations, independent.iterations,
                "{name}/{kind}: iteration counts"
            );
            assert_eq!(
                from_session.resolved_indirect_calls, independent.resolved_indirect_calls,
                "{name}/{kind}: indirect-call bindings"
            );
        }
    }
}

/// `AnalysisSession::solve` must honor every `ModelOptions` knob, not just
/// the defaults: for each non-default (layout, compat, stride) combination
/// the session path must produce edge sets byte-identical to a direct
/// `Solver::new(prog, make_model_with(...))` run. A specialization bug that
/// drops an option (e.g. always building the ilp32 model) shows up here as
/// a byte diff on the layout-sensitive Offsets model or the
/// compat-sensitive CIS/cast models.
#[test]
fn session_solve_honors_non_default_model_options() {
    use structcast::models::{make_model_with, ModelOptions};
    use structcast::{AnalysisConfig, AnalysisSession};

    let option_grid = [
        ("lp64", Layout::lp64(), CompatMode::Structural, false),
        ("packed32", Layout::packed32(), CompatMode::Structural, false),
        ("tag-based", Layout::ilp32(), CompatMode::TagBased, false),
        ("stride", Layout::ilp32(), CompatMode::Structural, true),
        ("lp64+tag+stride", Layout::lp64(), CompatMode::TagBased, true),
    ];
    let programs: Vec<(String, String)> = casty_corpus()
        .iter()
        .take(2)
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .chain([(
            "progen(seed=23, r=0.7)".to_string(),
            generate(&GenConfig::small(23).with_cast_ratio(0.7)),
        )])
        .collect();
    for (name, src) in &programs {
        let prog = lower_source(src).expect("program lowers");
        let session = AnalysisSession::compile(&prog);
        for (what, layout, compat, stride) in &option_grid {
            for kind in ModelKind::ALL {
                let cfg = AnalysisConfig::new(kind)
                    .with_layout(layout.clone())
                    .with_compat(*compat)
                    .with_stride(*stride);
                let from_session = session.solve(&cfg);
                let opts = ModelOptions {
                    layout: layout.clone(),
                    compat: *compat,
                    arith_stride: *stride,
                };
                // Honor the suite-wide thread matrix: the session reads
                // SCAST_SOLVER_THREADS through its config default, so the
                // direct run must shard identically for the iteration
                // counts to be comparable.
                let direct = Solver::new(&prog, make_model_with(kind, &opts))
                    .run_with_threads(structcast::env_solver_threads());
                assert_eq!(
                    edge_bytes(&from_session.facts),
                    edge_bytes(&direct.facts),
                    "{name}/{kind}/{what}: session vs direct solver edge sets"
                );
                assert_eq!(
                    from_session.iterations, direct.iterations,
                    "{name}/{kind}/{what}: iteration counts"
                );
            }
        }
    }
}

/// The deterministic sharded solver must be **byte-identical** to the
/// sequential reference path at every thread count: same sorted edge
/// dump, same unknown set, same (site, callee) bindings — for all four
/// models, over the full casty corpus plus generated programs, in both
/// arithmetic modes. One thread must take the sequential path itself
/// (identical `iterations` is the observable evidence: the sharded driver
/// counts rounds differently).
#[test]
fn sharded_solver_matches_sequential_at_1_2_8_threads() {
    let mut programs: Vec<(String, String)> = casty_corpus()
        .iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    for (seed, ratio) in [(7u64, 0.5), (97, 1.0), (2026, 0.0)] {
        programs.push((
            format!("progen(seed={seed}, r={ratio})"),
            generate(&GenConfig::small(seed).with_cast_ratio(ratio)),
        ));
    }
    for (name, src) in &programs {
        let prog = lower_source(src).expect("program lowers");
        for kind in ModelKind::ALL {
            for mode in [ArithMode::Spread, ArithMode::FlagUnknown] {
                let mk = || make_model(kind, Layout::ilp32(), CompatMode::Structural);
                let seq = Solver::new(&prog, mk()).with_arith_mode(mode).run();
                let seq_bytes = edge_bytes(&seq.facts);
                for threads in [1usize, 2, 8] {
                    let par = Solver::new(&prog, mk())
                        .with_arith_mode(mode)
                        .run_with_threads(threads);
                    assert_eq!(
                        edge_bytes(&par.facts),
                        seq_bytes,
                        "{name}/{kind}/{mode:?}: edge dump at {threads} threads \
                         differs from sequential"
                    );
                    assert_eq!(
                        par.unknown, seq.unknown,
                        "{name}/{kind}/{mode:?}: unknown set at {threads} threads"
                    );
                    assert_eq!(
                        par.resolved_indirect_calls, seq.resolved_indirect_calls,
                        "{name}/{kind}/{mode:?}: bindings at {threads} threads"
                    );
                    assert_eq!(
                        par.call_edges, seq.call_edges,
                        "{name}/{kind}/{mode:?}: call edges at {threads} threads"
                    );
                    if threads == 1 {
                        assert_eq!(
                            par.iterations, seq.iterations,
                            "{name}/{kind}/{mode:?}: one thread must take the \
                             sequential path"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn flag_unknown_mode_matches_reference() {
    let cfg = GenConfig::small(42).with_cast_ratio(0.6);
    let src = generate(&cfg);
    let prog = lower_source(&src).expect("generated program lowers");
    for kind in ModelKind::ALL {
        assert_equivalent(&prog, kind, ArithMode::FlagUnknown, "flag-unknown");
    }
}
