//! Solve budgets across thread counts: tripping a budget yields the same
//! typed error at every parallelism level, completed budgeted runs are
//! identical to unbudgeted ones, and a tripped budget never corrupts the
//! session it ran in.

use std::time::Duration;
use structcast::{
    lower_source, try_analyze, AnalysisConfig, AnalysisResult, Budget, ModelKind, Program,
    SolveError,
};
use structcast_progen::{generate, GenConfig};

/// A program heavy enough that every model derives well past one edge.
fn heavy() -> Program {
    lower_source(&generate(&GenConfig::medium(11))).expect("progen output lowers")
}

fn config(model: ModelKind, threads: usize, budget: Budget) -> AnalysisConfig {
    AnalysisConfig::new(model).with_threads(threads).with_budget(budget)
}

#[test]
fn edge_limit_is_identical_at_every_thread_count() {
    let prog = heavy();
    for model in ModelKind::ALL {
        for threads in [1, 2, 8] {
            let err = try_analyze(&prog, &config(model, threads, Budget::unlimited().with_max_edges(1)))
                .expect_err("one edge cannot fit any model's fixpoint");
            assert_eq!(
                err,
                SolveError::EdgeLimit { limit: 1 },
                "{model:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn zero_deadline_fails_without_corrupting_the_session() {
    let prog = heavy();
    let session = structcast::AnalysisSession::compile(&prog);
    for threads in [1, 2, 8] {
        let dead = config(
            ModelKind::CommonInitialSeq,
            threads,
            Budget::unlimited().with_deadline_in(Duration::ZERO),
        );
        let err = session.try_solve(&dead).expect_err("zero deadline trips instantly");
        assert_eq!(err, SolveError::DeadlineExceeded, "at {threads} threads");
    }
    // The compiled session is untouched by the failed attempts: a normal
    // solve still succeeds and matches a fresh analysis.
    let ok = session
        .try_solve(&AnalysisConfig::new(ModelKind::CommonInitialSeq))
        .expect("unbudgeted solve succeeds after failures");
    let fresh = try_analyze(&prog, &AnalysisConfig::new(ModelKind::CommonInitialSeq)).unwrap();
    assert_eq!(edges(&prog, &ok), edges(&prog, &fresh));
}

fn edges(prog: &Program, res: &AnalysisResult) -> Vec<(String, String)> {
    res.edge_displays(prog)
}

#[test]
fn completed_budgeted_runs_match_unbudgeted_ones_exactly() {
    let prog = heavy();
    for model in ModelKind::ALL {
        let free = try_analyze(&prog, &AnalysisConfig::new(model).with_threads(1)).unwrap();
        // A budget generous enough to complete must not perturb the result:
        // checks are read-only, so the edge set is identical byte for byte.
        let roomy = Budget::unlimited()
            .with_max_edges(free.edge_count())
            .with_deadline_in(Duration::from_secs(600));
        for threads in [1, 2, 8] {
            let budgeted = try_analyze(&prog, &config(model, threads, roomy.clone()))
                .expect("budget exactly at the fixpoint size completes");
            assert_eq!(
                edges(&prog, &free),
                edges(&prog, &budgeted),
                "{model:?} at {threads} threads"
            );
        }
        // One edge fewer and the same run trips the limit instead.
        let tight = Budget::unlimited().with_max_edges(free.edge_count() - 1);
        for threads in [1, 2, 8] {
            let err = try_analyze(&prog, &config(model, threads, tight.clone()))
                .expect_err("one edge under the fixpoint size trips");
            assert_eq!(
                err,
                SolveError::EdgeLimit { limit: free.edge_count() - 1 },
                "{model:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn a_pre_set_cancel_flag_stops_the_run() {
    let prog = heavy();
    let budget = Budget::unlimited();
    budget.cancel_handle().store(true, std::sync::atomic::Ordering::Relaxed);
    for threads in [1, 2, 8] {
        let err = try_analyze(&prog, &config(ModelKind::Offsets, threads, budget.clone()))
            .expect_err("a cancelled run never completes");
        assert_eq!(err, SolveError::Cancelled, "at {threads} threads");
    }
}

#[test]
fn budget_errors_skip_only_their_own_config_in_solve_all() {
    let prog = heavy();
    let session = structcast::AnalysisSession::compile(&prog);
    let configs = [
        AnalysisConfig::new(ModelKind::CollapseAlways),
        config(ModelKind::CollapseOnCast, 1, Budget::unlimited().with_max_edges(1)),
        AnalysisConfig::new(ModelKind::Offsets),
    ];
    let results = session.try_solve_all(&configs, 2);
    assert!(results[0].is_ok(), "sibling before the failure survives");
    assert_eq!(results[1].as_ref().err(), Some(&SolveError::EdgeLimit { limit: 1 }));
    assert!(results[2].is_ok(), "sibling after the failure survives");
}
