//! Tests for the two optional extensions beyond the paper's defaults:
//!
//! * the Wilson–Lam stride refinement for pointer arithmetic (related work
//!   §6) — `T*` arithmetic lands only on `sizeof(T)`-aligned positions;
//! * the corrupted-pointer ("Unknown") flagging mode the paper sketches in
//!   §4.2.1 as the pessimistic alternative to Assumption 1.

use structcast::{analyze_source, AnalysisConfig, ArithMode, FieldRep, ModelKind};

/// A struct with mixed field sizes: an `int*` walked across it can only
/// reach pointer-aligned positions under the stride rule.
const WALK: &str = r#"
    struct Mixed { int *a; char c1; char c2; char c3; char c4; int *b; } m;
    int x, *p;
    void main(void) {
        m.a = &x;
        p = (int *)&m;
        p = p + 1;
    }
"#;

#[test]
fn stride_restricts_offsets_spread() {
    let base = AnalysisConfig::new(ModelKind::Offsets);
    let (prog, plain) = analyze_source(WALK, &base.clone()).unwrap();
    let (prog2, strided) = analyze_source(WALK, &base.with_stride(true)).unwrap();
    let p1 = prog.object_by_name("p").unwrap();
    let p2 = prog2.object_by_name("p").unwrap();
    let plain_n = plain.points_to(&prog, p1).len();
    let strided_n = strided.points_to(&prog2, p2).len();
    // Without stride: all leaf positions (a, c1..c4, b = 6). With stride
    // (sizeof(int*) = 4 under ilp32): offsets 0, 4, 8, 12 only.
    assert!(plain_n >= 6, "plain spread too small: {plain_n}");
    assert!(
        strided_n < plain_n,
        "stride must shrink the spread: {strided_n} vs {plain_n}"
    );
    // All strided targets are 4-aligned.
    for l in strided.points_to(&prog2, p2) {
        if let FieldRep::Off(o) = l.field {
            assert_eq!(o % 4, 0, "unaligned strided target {o}");
        }
    }
}

#[test]
fn stride_restricts_path_spread_by_type() {
    // An int** walked across a struct with both pointer and scalar fields:
    // the path-level stride keeps only the leaves whose type matches the
    // pointee (int*).
    let src = r#"
        struct Mixed2 { int *a; int n1; int n2; int *b; int n3; } m;
        int x, **walk;
        void main(void) {
            m.a = &x;
            walk = (int **)&m;
            walk = walk + 1;
        }
    "#;
    let base = AnalysisConfig::new(ModelKind::CommonInitialSeq);
    let (prog, plain) = analyze_source(src, &base.clone()).unwrap();
    let (prog2, strided) = analyze_source(src, &base.with_stride(true)).unwrap();
    let p1 = prog.object_by_name("walk").unwrap();
    let p2 = prog2.object_by_name("walk").unwrap();
    // Path model: only the two int* leaves match the pointee type.
    assert_eq!(strided.points_to(&prog2, p2).len(), 2);
    assert!(plain.points_to(&prog, p1).len() >= 5);
}

#[test]
fn stride_still_covers_the_actual_target() {
    // Soundness under stride: walking from m.a by exactly one pointer gets
    // to m.b; the strided analysis must include it.
    let src = r#"
        struct Two { int *a; int *b; } t2;
        int x, y, **walk, *out;
        void main(void) {
            t2.a = &x;
            t2.b = &y;
            walk = (int **)&t2;
            walk = walk + 1;
            out = *walk;
        }
    "#;
    for kind in [ModelKind::Offsets, ModelKind::CommonInitialSeq] {
        let cfg = AnalysisConfig::new(kind).with_stride(true);
        let (prog, res) = analyze_source(src, &cfg).unwrap();
        let names = res.points_to_names(&prog, "out");
        assert!(names.contains(&"y".to_string()), "{kind}: {names:?}");
    }
}

#[test]
fn unknown_mode_flags_arithmetic_results() {
    let cfg = AnalysisConfig::new(ModelKind::CommonInitialSeq)
        .with_arith_mode(ArithMode::FlagUnknown);
    let (prog, res) = analyze_source(WALK, &cfg).unwrap();
    assert!(
        !res.unknown.is_empty(),
        "p = p + 1 must be flagged as potentially corrupted"
    );
    // The flagged pointer has no targets in this mode.
    let p = prog.object_by_name("p").unwrap();
    let targets = res.points_to(&prog, p);
    // p's first assignment (the cast) gives it a target; the arithmetic
    // result itself contributes nothing.
    assert!(targets.len() <= 1, "{targets:?}");
}

#[test]
fn unknown_flag_propagates_through_copies() {
    let src = r#"
        int a[8], *p, *q, *r;
        void main(void) {
            p = a;
            p = p + 3;
            q = p;      /* q inherits the corrupted flag */
            r = &a[0];  /* r is clean */
        }
    "#;
    let cfg = AnalysisConfig::new(ModelKind::CommonInitialSeq)
        .with_arith_mode(ArithMode::FlagUnknown);
    let (prog, res) = analyze_source(src, &cfg).unwrap();
    let q = prog.object_by_name("q").unwrap();
    let r = prog.object_by_name("r").unwrap();
    let ql = res.normalize(&prog, q, &structcast::FieldPath::empty());
    let rl = res.normalize(&prog, r, &structcast::FieldPath::empty());
    assert!(res.unknown.contains(&ql), "q must be flagged");
    assert!(!res.unknown.contains(&rl), "r must not be flagged");
}

#[test]
fn unknown_mode_reports_suspicious_deref_sites() {
    let src = r#"
        int a[8], *p, x;
        void main(void) {
            p = a;
            p = p + 2;
            x = *p;     /* dereference of a flagged pointer */
        }
    "#;
    let cfg = AnalysisConfig::new(ModelKind::CommonInitialSeq)
        .with_arith_mode(ArithMode::FlagUnknown);
    let (prog, res) = analyze_source(src, &cfg).unwrap();
    let sites = res.unknown_deref_sites(&prog);
    assert!(!sites.is_empty(), "the load through p must be reported");
}

#[test]
fn default_mode_flags_nothing() {
    let (_, res) =
        analyze_source(WALK, &AnalysisConfig::new(ModelKind::CommonInitialSeq)).unwrap();
    assert!(res.unknown.is_empty());
}

#[test]
fn stride_never_increases_sets() {
    // On the whole cast-heavy corpus: stride is a refinement, so average
    // deref sizes can only shrink or stay equal.
    for p in structcast_progen::corpus().iter().filter(|p| p.casty) {
        let prog = structcast::lower_source(p.source).unwrap();
        for kind in [ModelKind::Offsets, ModelKind::CommonInitialSeq] {
            let plain = structcast::analyze(&prog, &AnalysisConfig::new(kind));
            let strided =
                structcast::analyze(&prog, &AnalysisConfig::new(kind).with_stride(true));
            assert!(
                strided.average_deref_size(&prog) <= plain.average_deref_size(&prog) + 1e-9,
                "{} under {kind}: stride increased sets",
                p.name
            );
        }
    }
}
