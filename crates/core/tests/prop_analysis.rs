//! Property analysis tests: the framework's algebraic invariants must
//! hold on randomly generated programs (arbitrary seeds and casting
//! ratios), not just the corpus.
//!
//! Cases draw (seed, ratio) pairs from the deterministic [`Rng64`], so
//! the suite is hermetic and each case is reproducible from its index.

use structcast::models::make_model;
use structcast::{analyze, AnalysisConfig, CompatMode, FieldPath, Layout, ModelKind};
use structcast_progen::{generate, GenConfig};
use structcast_types::rng::Rng64;

fn gen_program(seed: u64, ratio: f64) -> structcast::Program {
    let src = generate(&GenConfig::small(seed).with_cast_ratio(ratio));
    structcast::lower_source(&src).expect("generated programs always lower")
}

/// Each case runs several full analyses; keep the count moderate.
const CASES: u64 = 24;

/// Yields `CASES` random (program-seed, cast-ratio) pairs.
fn case_params(salt: u64) -> Vec<(u64, f64)> {
    let mut rng = Rng64::seed_from_u64(0xA11A5 ^ salt);
    (0..CASES)
        .map(|_| {
            let seed = rng.gen_range(0..10_000) as u64;
            let pct = rng.gen_range(0..101) as f64;
            (seed, pct / 100.0)
        })
        .collect()
}

#[test]
fn precision_ladder_on_random_programs() {
    for (seed, ratio) in case_params(1) {
        let prog = gen_program(seed, ratio);
        let sizes: Vec<f64> = ModelKind::ALL
            .iter()
            .map(|k| analyze(&prog, &AnalysisConfig::new(*k)).average_deref_size(&prog))
            .collect();
        // CollapseAlways ≥ CollapseOnCast ≥ CIS (weighted per-site sizes).
        assert!(sizes[0] >= sizes[1] - 1e-9, "CA {} < CoC {}", sizes[0], sizes[1]);
        assert!(sizes[1] >= sizes[2] - 1e-9, "CoC {} < CIS {}", sizes[1], sizes[2]);
    }
}

#[test]
fn cis_facts_subset_of_coc_on_random_programs() {
    for (seed, ratio) in case_params(2) {
        let prog = gen_program(seed, ratio);
        let cis = analyze(&prog, &AnalysisConfig::new(ModelKind::CommonInitialSeq));
        let coc = analyze(&prog, &AnalysisConfig::new(ModelKind::CollapseOnCast));
        let coc_set: std::collections::HashSet<(String, String)> = coc
            .facts
            .iter()
            .map(|(s, t)| (s.to_string(), t.to_string()))
            .collect();
        for (s, t) in cis.facts.iter() {
            assert!(
                coc_set.contains(&(s.to_string(), t.to_string())),
                "CIS-only fact {s} -> {t}"
            );
        }
    }
}

#[test]
fn normalize_is_idempotent_for_every_object() {
    for (seed, _) in case_params(3) {
        let prog = gen_program(seed, 0.5);
        for kind in ModelKind::ALL {
            let model = make_model(kind, Layout::ilp32(), CompatMode::Structural);
            for i in 0..prog.objects.len() {
                let obj = structcast::ObjId(i as u32);
                let l1 = model.normalize(&prog, obj, &FieldPath::empty());
                // Re-normalizing the normalized path must be stable.
                if let structcast::FieldRep::Path(p) = &l1.field {
                    let l2 = model.normalize(&prog, obj, p);
                    assert_eq!(&l1, &l2, "{kind} not idempotent");
                }
            }
        }
    }
}

#[test]
fn solver_is_deterministic_on_random_programs() {
    for (seed, _) in case_params(4) {
        let prog = gen_program(seed, 0.7);
        for kind in [ModelKind::CommonInitialSeq, ModelKind::Offsets] {
            let a = analyze(&prog, &AnalysisConfig::new(kind));
            let b = analyze(&prog, &AnalysisConfig::new(kind));
            assert_eq!(a.edge_count(), b.edge_count());
        }
    }
}

#[test]
fn offsets_facts_lie_within_objects() {
    for (seed, ratio) in case_params(5) {
        // Every offset-instance fact must name a position inside its
        // object's actual extent (Assumption-1 bookkeeping).
        let prog = gen_program(seed, ratio);
        let layout = Layout::ilp32();
        let res = analyze(
            &prog,
            &AnalysisConfig::new(ModelKind::Offsets).with_layout(layout.clone()),
        );
        for (s, t) in res.facts.iter() {
            for l in [s, t] {
                if let structcast::FieldRep::Off(o) = l.field {
                    let size = layout.size_of(&prog.types, prog.type_of(l.obj)).max(1);
                    assert!(
                        o < size,
                        "{} at offset {o} outside object of size {size}",
                        prog.object(l.obj).name
                    );
                }
            }
        }
    }
}

#[test]
fn steensgaard_covers_collapse_always_object_edges() {
    for (seed, _) in case_params(6) {
        // Unification merges aggressively: any (named pointer → object)
        // edge the inclusion Collapse-Always analysis finds must also be
        // found by Steensgaard.
        let prog = gen_program(seed, 0.4);
        let ca = analyze(&prog, &AnalysisConfig::new(ModelKind::CollapseAlways));
        let st = structcast::steensgaard::steensgaard(&prog);
        for (i, obj) in prog.objects.iter().enumerate() {
            if !obj.kind.is_named_variable() {
                continue;
            }
            let id = structcast::ObjId(i as u32);
            let ca_objs: std::collections::HashSet<u32> = ca
                .points_to(&prog, id)
                .into_iter()
                .map(|l| l.obj.0)
                .collect();
            if ca_objs.is_empty() {
                continue;
            }
            let st_objs: std::collections::HashSet<u32> = st
                .points_to_objects(id)
                .into_iter()
                .map(|o| o.0)
                .collect();
            for o in &ca_objs {
                assert!(
                    st_objs.contains(o),
                    "{}: inclusion found edge to {} that unification missed",
                    obj.name,
                    prog.object(structcast::ObjId(*o)).name
                );
            }
        }
    }
}
