//! MOD/REF side-effect analysis — a downstream *client* of the pointer
//! analysis, in the spirit of the modification-side-effects work the paper
//! cites (Ryder et al., \[SRL98\]) and of its own motivation: "the precision of pointer
//! analysis significantly affects the precision of subsequent
//! static-analysis phases".
//!
//! For each function the client computes the sets of abstract objects the
//! function may **modify** and may **reference**:
//!
//! * direct effects — named objects read or written without a pointer;
//! * pointer effects — the points-to sets of dereferenced pointers at
//!   store/load sites (this is where the chosen analysis instance's
//!   precision shows up);
//! * optionally, **transitive** effects through the call graph (direct
//!   calls recovered from parameter/return bindings, indirect calls from
//!   the solver's resolved call edges).
//!
//! The experiment harness compares MOD-set sizes across the four instances
//! to demonstrate the downstream impact of field sensitivity.

use crate::analysis::AnalysisResult;
use std::collections::{BTreeMap, BTreeSet};
use structcast_ir::{FuncId, ObjId, ObjKind, Program, Stmt};

/// MOD/REF sets for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnModRef {
    /// Objects the function may write.
    pub mods: BTreeSet<ObjId>,
    /// Objects the function may read.
    pub refs: BTreeSet<ObjId>,
}

/// MOD/REF sets for the whole program.
#[derive(Debug, Clone)]
pub struct ModRef {
    per_fn: BTreeMap<FuncId, FnModRef>,
}

impl ModRef {
    /// The sets for `f` (empty sets if the function has no effects).
    pub fn of(&self, f: FuncId) -> FnModRef {
        self.per_fn.get(&f).cloned().unwrap_or_default()
    }

    /// Looks a function up by name.
    pub fn of_named(&self, prog: &Program, name: &str) -> FnModRef {
        prog.function_by_name(name)
            .map(|f| self.of(f.id))
            .unwrap_or_default()
    }

    /// Iterates over `(function, sets)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&FuncId, &FnModRef)> + '_ {
        self.per_fn.iter()
    }

    /// Average MOD-set size over all defined functions (an experiment
    /// metric: smaller is more precise).
    pub fn average_mod_size(&self, prog: &Program) -> f64 {
        let defined: Vec<&structcast_ir::Function> =
            prog.functions.iter().filter(|f| f.defined).collect();
        if defined.is_empty() {
            return 0.0;
        }
        let total: usize = defined.iter().map(|f| self.of(f.id).mods.len()).sum();
        total as f64 / defined.len() as f64
    }

    /// The sorted names of the objects `f` may modify.
    pub fn mod_names(&self, prog: &Program, f: FuncId) -> Vec<String> {
        self.of(f)
            .mods
            .iter()
            .map(|o| prog.object(*o).name.clone())
            .collect()
    }
}

/// Is this an object a user would consider program state (not a compiler
/// temp or binding slot)?
fn is_stateful(prog: &Program, obj: ObjId) -> bool {
    matches!(
        prog.object(obj).kind,
        ObjKind::Global | ObjKind::Local(_) | ObjKind::Param(_, _) | ObjKind::Heap(_)
    )
}

/// Computes MOD/REF for every function, using `result`'s points-to facts
/// for pointer-mediated effects. With `transitive`, callee effects are
/// propagated to callers over the (direct + resolved-indirect) call graph
/// to a fixpoint.
pub fn mod_ref(prog: &Program, result: &AnalysisResult, transitive: bool) -> ModRef {
    let mut per_fn: BTreeMap<FuncId, FnModRef> = BTreeMap::new();
    let mut calls: BTreeSet<(FuncId, FuncId)> = BTreeSet::new();

    // Pointer targets of `ptr`, restricted to stateful objects.
    let targets = |ptr: ObjId| -> Vec<ObjId> {
        result
            .points_to(prog, ptr)
            .into_iter()
            .map(|l| l.obj)
            .filter(|o| is_stateful(prog, *o))
            .collect()
    };

    for (i, s) in prog.stmts.iter().enumerate() {
        let Some(f) = prog.stmt_funcs[i] else {
            continue; // global initializers belong to no function
        };
        let entry = per_fn.entry(f).or_default();
        match s {
            Stmt::Copy { dst, src, .. } => {
                // Direct effects on named state; also recover direct call
                // edges from parameter/return bindings.
                if is_stateful(prog, *dst) {
                    entry.mods.insert(*dst);
                }
                if is_stateful(prog, *src) {
                    entry.refs.insert(*src);
                }
                match prog.object(*dst).kind {
                    ObjKind::Param(callee, _) | ObjKind::VarArgs(callee) if callee != f => {
                        calls.insert((f, callee));
                    }
                    _ => {}
                }
                if let ObjKind::Ret(callee) = prog.object(*src).kind {
                    if callee != f {
                        calls.insert((f, callee));
                    }
                }
            }
            Stmt::AddrOf { src, .. } => {
                // Taking an address is not an access, but reading a field
                // value in form 3 was already covered; nothing here.
                let _ = src;
            }
            Stmt::AddrField { .. } => {}
            Stmt::Load { ptr, .. } => {
                for t in targets(*ptr) {
                    entry.refs.insert(t);
                }
            }
            Stmt::Store { ptr, .. } => {
                for t in targets(*ptr) {
                    entry.mods.insert(t);
                }
            }
            Stmt::PtrArith { src, .. } => {
                if is_stateful(prog, *src) {
                    entry.refs.insert(*src);
                }
            }
            Stmt::CopyAll { dst_ptr, src_ptr } => {
                for t in targets(*dst_ptr) {
                    entry.mods.insert(t);
                }
                for t in targets(*src_ptr) {
                    entry.refs.insert(t);
                }
            }
            Stmt::Call { .. } => {}
        }
    }

    // Direct call edges recorded during lowering (covers calls that bind
    // nothing, e.g. `void f(void)`).
    for (caller, callee) in &prog.direct_calls {
        if let Some(c) = caller {
            if c != callee {
                calls.insert((*c, *callee));
            }
        }
    }

    // Indirect call edges discovered by the solver.
    for (sid, callee) in &result.call_edges {
        if let Some(f) = prog.stmt_funcs[sid.0 as usize] {
            if f != *callee {
                calls.insert((f, *callee));
            }
        }
    }

    if transitive {
        // Propagate callee effects to callers to a fixpoint (the call
        // graph is small; a simple iteration suffices).
        loop {
            let mut changed = false;
            for (caller, callee) in &calls {
                let callee_sets = per_fn.get(callee).cloned().unwrap_or_default();
                let entry = per_fn.entry(*caller).or_default();
                for m in callee_sets.mods {
                    changed |= entry.mods.insert(m);
                }
                for r in callee_sets.refs {
                    changed |= entry.refs.insert(r);
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Drop each function's own locals/params/temps from its public sets:
    // callers cannot observe them (heap objects stay).
    for (f, sets) in per_fn.iter_mut() {
        let keep = |o: &ObjId| match prog.object(*o).kind {
            ObjKind::Local(owner) | ObjKind::Param(owner, _) => owner != *f,
            _ => true,
        };
        sets.mods.retain(keep);
        sets.refs.retain(keep);
    }

    ModRef { per_fn }
}

/// Renders the points-to relation as a GraphViz `dot` graph (named
/// variables and heap objects only), for visual inspection of analysis
/// results.
pub fn to_dot(prog: &Program, result: &AnalysisResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("digraph pointsto {\n  rankdir=LR;\n  node [shape=box];\n");
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, b) in result.facts.iter() {
        if is_stateful(prog, a.obj) && is_stateful(prog, b.obj) {
            edges.insert((a.display(prog), b.display(prog)));
        }
    }
    for (a, b) in edges {
        let _ = writeln!(s, "  \"{a}\" -> \"{b}\";");
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_source, AnalysisConfig, ModelKind};

    const SRC: &str = r#"
        struct S { int *a; int *b; } s;
        int x, y;
        int *gp;

        void writer(int **slot) { *slot = &x; }
        void reader(void) { gp = s.a; }
        void caller(void) { writer(&s.a); }
        void main(void) { caller(); reader(); s.b = &y; }
    "#;

    fn run(kind: ModelKind, transitive: bool) -> (Program, ModRef) {
        let (prog, res) = analyze_source(SRC, &AnalysisConfig::new(kind)).unwrap();
        let mr = mod_ref(&prog, &res, transitive);
        (prog, mr)
    }

    #[test]
    fn writer_modifies_through_pointer() {
        let (prog, mr) = run(ModelKind::CommonInitialSeq, false);
        let w = mr.of_named(&prog, "writer");
        let names: Vec<String> = w
            .mods
            .iter()
            .map(|o| prog.object(*o).name.clone())
            .collect();
        assert!(names.contains(&"s".to_string()), "{names:?}");
    }

    #[test]
    fn own_locals_are_hidden() {
        let (prog, mr) = run(ModelKind::CommonInitialSeq, false);
        let w = mr.of_named(&prog, "writer");
        // writer's own parameter `slot` must not appear in its public sets.
        for o in w.mods.iter().chain(w.refs.iter()) {
            assert_ne!(prog.object(*o).name, "writer::slot");
        }
    }

    #[test]
    fn transitive_closure_lifts_callee_effects() {
        let (prog, flat) = run(ModelKind::CommonInitialSeq, false);
        let (prog2, trans) = run(ModelKind::CommonInitialSeq, true);
        let c_flat = flat.of_named(&prog, "caller");
        let c_trans = trans.of_named(&prog2, "caller");
        // Flat: caller itself writes nothing user-visible except binding
        // temps; transitive: inherits writer's mod of s.
        let names: Vec<String> = c_trans
            .mods
            .iter()
            .map(|o| prog2.object(*o).name.clone())
            .collect();
        assert!(names.contains(&"s".to_string()), "{names:?}");
        assert!(c_trans.mods.len() >= c_flat.mods.len());
        // And main inherits everything.
        let m = trans.of_named(&prog2, "main");
        let mains: Vec<String> = m
            .mods
            .iter()
            .map(|o| prog2.object(*o).name.clone())
            .collect();
        assert!(mains.contains(&"s".to_string()), "{mains:?}");
        assert!(mains.contains(&"gp".to_string()), "{mains:?}");
    }

    #[test]
    fn collapse_always_inflates_mod_sets() {
        // With a cast-heavy workload the imprecise instance must report
        // MOD sets at least as large as the precise one.
        let p = structcast_progen::corpus_program("symtab").unwrap();
        let prog = crate::lower_source(p.source).unwrap();
        let ca = crate::analyze(&prog, &AnalysisConfig::new(ModelKind::CollapseAlways));
        let cis = crate::analyze(&prog, &AnalysisConfig::new(ModelKind::CommonInitialSeq));
        let mr_ca = mod_ref(&prog, &ca, true);
        let mr_cis = mod_ref(&prog, &cis, true);
        assert!(
            mr_ca.average_mod_size(&prog) >= mr_cis.average_mod_size(&prog),
            "{} < {}",
            mr_ca.average_mod_size(&prog),
            mr_cis.average_mod_size(&prog)
        );
    }

    #[test]
    fn indirect_calls_contribute_edges() {
        let src = r#"
            int x; int *gp;
            void target(void) { gp = &x; }
            void (*fp)(void);
            void main(void) { fp = target; fp(); }
        "#;
        let (prog, res) =
            analyze_source(src, &AnalysisConfig::new(ModelKind::CommonInitialSeq)).unwrap();
        assert!(!res.call_edges.is_empty());
        let mr = mod_ref(&prog, &res, true);
        let m = mr.of_named(&prog, "main");
        let names: Vec<String> = m
            .mods
            .iter()
            .map(|o| prog.object(*o).name.clone())
            .collect();
        assert!(names.contains(&"gp".to_string()), "{names:?}");
    }

    #[test]
    fn dot_export_contains_edges() {
        let (prog, res) = analyze_source(
            "int x, *p; void main(void) { p = &x; }",
            &AnalysisConfig::new(ModelKind::CommonInitialSeq),
        )
        .unwrap();
        let dot = to_dot(&prog, &res);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"main::p\" -> \"x\"") || dot.contains("\"p\" -> \"x\""), "{dot}");
    }
}
