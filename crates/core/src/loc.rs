//! Abstract locations.
//!
//! A [`Loc`] is a *normalized* structure reference: an abstract object plus
//! a field representation whose shape depends on the analysis instance —
//! whole-object for "Collapse Always", a normalized field path for the
//! portable instances, a byte offset for "Offsets".

use std::fmt;
use structcast_ir::{ObjId, Program};
use structcast_types::FieldPath;

/// Dense id of an interned [`Loc`].
///
/// Ids are assigned by the fact store's interner in first-use order and
/// are stable *within one solver run* — a `LocId` from one `FactStore`
/// must never be used against another. The solver's hot path works
/// entirely in ids (4-byte copies) and converts back to `Loc`s only at
/// the query boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub(crate) u32);

impl LocId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The field component of a normalized location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldRep {
    /// The whole object (the "Collapse Always" instance collapses every
    /// structure to this).
    Whole,
    /// A normalized field path (innermost-first-field form), used by the
    /// "Collapse on Cast" and "Common Initial Sequence" instances.
    Path(FieldPath),
    /// A byte offset under a concrete layout, used by "Offsets".
    Off(u64),
}

impl FieldRep {
    /// The empty path.
    pub fn empty_path() -> Self {
        FieldRep::Path(FieldPath::empty())
    }
}

/// A normalized abstract location: `obj.field`.
///
/// The paper writes these `s.α̂` (path instances) or `s.j` (offset
/// instance); a `pointsTo(a, b)` fact is stored as `b ∈ pts(a)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// The containing object.
    pub obj: ObjId,
    /// The normalized field component.
    pub field: FieldRep,
}

impl Loc {
    /// A whole-object location.
    pub fn whole(obj: ObjId) -> Self {
        Loc {
            obj,
            field: FieldRep::Whole,
        }
    }

    /// A path location.
    pub fn path(obj: ObjId, path: FieldPath) -> Self {
        Loc {
            obj,
            field: FieldRep::Path(path),
        }
    }

    /// An offset location.
    pub fn off(obj: ObjId, off: u64) -> Self {
        Loc {
            obj,
            field: FieldRep::Off(off),
        }
    }

    /// Renders the location with the object's source name, e.g. `s.0.1`,
    /// `t+4`, or `x`.
    pub fn display(&self, prog: &Program) -> String {
        let name = &prog.object(self.obj).name;
        match &self.field {
            FieldRep::Whole => name.clone(),
            FieldRep::Path(p) if p.is_empty() => name.clone(),
            FieldRep::Path(p) => format!("{name}{p}"),
            FieldRep::Off(0) => name.clone(),
            FieldRep::Off(o) => format!("{name}+{o}"),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.field {
            FieldRep::Whole => write!(f, "{}", self.obj),
            FieldRep::Path(p) if p.is_empty() => write!(f, "{}", self.obj),
            FieldRep::Path(p) => write!(f, "{}{}", self.obj, p),
            FieldRep::Off(0) => write!(f, "{}", self.obj),
            FieldRep::Off(o) => write!(f, "{}+{}", self.obj, o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_ordering() {
        let a = Loc::whole(ObjId(1));
        let b = Loc::off(ObjId(1), 4);
        let c = Loc::path(ObjId(2), FieldPath::from_steps([0u32]));
        assert_ne!(a, b);
        assert!(a < c); // ordered by object id first (derive order: obj then field)
        assert_eq!(Loc::off(ObjId(1), 4), b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Loc::whole(ObjId(3)).to_string(), "o3");
        assert_eq!(Loc::off(ObjId(3), 0).to_string(), "o3");
        assert_eq!(Loc::off(ObjId(3), 8).to_string(), "o3+8");
        assert_eq!(
            Loc::path(ObjId(3), FieldPath::from_steps([1u32, 0])).to_string(),
            "o3.1.0"
        );
        assert_eq!(
            Loc::path(ObjId(3), FieldPath::empty()).to_string(),
            "o3"
        );
    }
}
