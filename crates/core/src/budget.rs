//! Cooperative solve budgets: deadlines, edge limits, and cancellation.
//!
//! The fixpoint solver is monotone and always terminates, but "terminates"
//! can still mean arbitrarily long on a pathological or adversarial
//! program. A [`Budget`] bounds a run *cooperatively*: the solver checks it
//! at iteration boundaries (sequential path) and round boundaries (sharded
//! path), so a completed run is byte-identical with or without a budget —
//! the checks are read-only and never alter the rule schedule — while an
//! exceeded run returns a typed [`SolveError`] instead of hanging.
//!
//! Check placement (and why determinism holds):
//!
//! - **edge limit & cancellation**: after every statement firing
//!   (sequential) / after every merge (sharded). Both are cheap — an `O(1)`
//!   edge-count read and one relaxed atomic load.
//! - **deadline**: before the first iteration and then every
//!   [`TIME_CHECK_INTERVAL`] firings (sequential) / every round (sharded),
//!   because `Instant::now()` is comparatively expensive.
//!
//! Neither check mutates solver state, so two runs with the same inputs
//! that both complete produce identical edge sets; runs that exceed the
//! same budget kind return the same [`SolveError`] value at any thread
//! count (the *error* is deterministic even though the partial state at
//! abort is not — partial state is discarded).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many sequential iterations pass between deadline checks.
pub const TIME_CHECK_INTERVAL: u32 = 256;

/// A cooperative resource budget for one solver run.
///
/// Cloning shares the cancellation flag (that is the point: hand a clone to
/// the solver, keep [`cancel_handle`](Budget::cancel_handle) to flip it
/// from another thread). The default budget is unlimited.
///
/// # Examples
///
/// ```
/// use structcast::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited()
///     .with_deadline_in(Duration::from_millis(500))
///     .with_max_edges(1_000_000);
/// assert!(!b.is_unlimited());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    /// Absolute wall-clock deadline; `None` = no time limit.
    pub deadline: Option<Instant>,
    /// Maximum points-to edges the run may derive; `None` = no limit.
    /// Exceeding means *strictly more than* `max_edges` edges exist.
    pub max_edges: Option<usize>,
    /// Cooperative cancellation flag, polled at check points.
    pub cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (the default for every config).
    pub fn unlimited() -> Budget {
        Budget {
            deadline: None,
            max_edges: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `d` from now. `Duration::ZERO` makes every run
    /// fail immediately with [`SolveError::DeadlineExceeded`] — useful for
    /// testing the error path.
    pub fn with_deadline_in(self, d: Duration) -> Budget {
        self.with_deadline(Instant::now() + d)
    }

    /// Caps the number of points-to edges the run may derive.
    pub fn with_max_edges(mut self, max: usize) -> Budget {
        self.max_edges = Some(max);
        self
    }

    /// True when no limit of any kind is set and the cancel flag can never
    /// be observed set (nothing else holds the flag).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_edges.is_none()
            && !self.cancel.load(Ordering::Relaxed)
            && Arc::strong_count(&self.cancel) == 1
    }

    /// The shared cancellation flag: store `true` to make the solver
    /// return [`SolveError::Cancelled`] at its next check point.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// The cheap per-iteration check: cancellation, then the edge cap.
    /// Returns the violation, if any.
    #[inline]
    pub fn exceeded(&self, edges: usize) -> Option<SolveError> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(SolveError::Cancelled);
        }
        if let Some(max) = self.max_edges {
            if edges > max {
                return Some(SolveError::EdgeLimit { limit: max });
            }
        }
        None
    }

    /// The (pricier) wall-clock check, run every
    /// [`TIME_CHECK_INTERVAL`] iterations / once per sharded round.
    #[inline]
    pub fn time_exceeded(&self) -> Option<SolveError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(SolveError::DeadlineExceeded),
            _ => None,
        }
    }
}

/// Why a budgeted solve was aborted. The value is deterministic for a
/// given program + budget kind at any thread count; partial solver state
/// is discarded on abort, so an aborted session can keep solving other
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The wall-clock deadline passed before the fixpoint was reached.
    DeadlineExceeded,
    /// More than `limit` points-to edges were derived.
    EdgeLimit {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// The budget's cancellation flag was set.
    Cancelled,
}

impl SolveError {
    /// The stable machine-readable kind string used by the query
    /// protocol's error grammar (`{"error": {"kind": ...}}`).
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::DeadlineExceeded => "deadline",
            SolveError::EdgeLimit { .. } => "edge_limit",
            SolveError::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::DeadlineExceeded => write!(f, "solve deadline exceeded"),
            SolveError::EdgeLimit { limit } => {
                write!(f, "solve exceeded the edge limit ({limit})")
            }
            SolveError::Cancelled => write!(f, "solve cancelled"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.exceeded(usize::MAX).is_none());
        assert!(b.time_exceeded().is_none());
    }

    #[test]
    fn edge_cap_is_strictly_greater_than() {
        let b = Budget::unlimited().with_max_edges(10);
        assert!(!b.is_unlimited());
        assert!(b.exceeded(10).is_none(), "at the cap is still fine");
        assert_eq!(b.exceeded(11), Some(SolveError::EdgeLimit { limit: 10 }));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let b = Budget::unlimited().with_deadline_in(Duration::ZERO);
        assert_eq!(b.time_exceeded(), Some(SolveError::DeadlineExceeded));
        let b = Budget::unlimited().with_deadline_in(Duration::from_secs(3600));
        assert!(b.time_exceeded().is_none());
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        assert!(!clone.is_unlimited(), "a second handle can cancel it");
        b.cancel_handle().store(true, Ordering::Relaxed);
        assert_eq!(clone.exceeded(0), Some(SolveError::Cancelled));
        // Cancellation wins over the edge cap when both apply.
        let both = clone.with_max_edges(0);
        assert_eq!(both.exceeded(1), Some(SolveError::Cancelled));
    }

    #[test]
    fn error_display_and_kinds() {
        assert_eq!(SolveError::DeadlineExceeded.kind(), "deadline");
        assert_eq!(SolveError::EdgeLimit { limit: 3 }.kind(), "edge_limit");
        assert_eq!(SolveError::Cancelled.kind(), "cancelled");
        assert!(SolveError::EdgeLimit { limit: 3 }.to_string().contains("(3)"));
        let e: Box<dyn std::error::Error> = Box::new(SolveError::Cancelled);
        assert_eq!(e.to_string(), "solve cancelled");
    }
}
