//! Demand-driven solving: answer one query from a slice of the program.
//!
//! An exhaustive solve pays for the whole-program fixpoint even when the
//! queried pointer touches a tiny fraction of it. The demand mode slices
//! the compiled [`ConstraintSet`] backward from the query's roots with
//! [`ConstraintSlicer`] and runs the ordinary specialize+solve pipeline on
//! the sub-set only — budgets, thread counts, and arithmetic modes
//! included. The slicer's conservative address-taken closure makes the
//! slice *complete* for every object it marks relevant, so the demand
//! answer is byte-equal to what the exhaustive solver would report for the
//! same query, under all four field models (see the slicer's module docs
//! for the argument).
//!
//! Query roots per [`DemandQuery`] variant:
//!
//! * `PointsTo { obj }` — the queried object itself;
//! * `Alias { a, b }` — both objects (the alias check only compares their
//!   two points-to sets);
//! * `ModRef { func }` — every pointer dereferenced by the functions
//!   statically reachable from `func`, with the call constraints of those
//!   functions force-included so the slice resolves exactly the call
//!   edges the whole-program solve would resolve for them. Static
//!   reachability over-approximates the solved call graph (indirect call
//!   sites are closed over all address-taken functions), which is what
//!   makes the transitive MOD/REF sets of `func` agree with the
//!   exhaustive run's.

use crate::analysis::{AnalysisConfig, AnalysisResult};
use crate::budget::SolveError;
use crate::models::{make_model_with, ModelOptions};
use crate::modref::{mod_ref, FnModRef};
use crate::solver::Solver;
use std::collections::BTreeSet;
use std::time::Instant;
use structcast_constraints::{Constraint, ConstraintSet, ConstraintSlicer, SliceStats};
use structcast_ir::{FuncId, ObjId, ObjKind, Program};

/// One demand query: the thing a caller wants answered without paying for
/// an exhaustive solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandQuery {
    /// The points-to set of one top-level object.
    PointsTo {
        /// The queried pointer object.
        obj: ObjId,
    },
    /// May two objects point to a common location?
    Alias {
        /// First object.
        a: ObjId,
        /// Second object.
        b: ObjId,
    },
    /// The transitive MOD/REF sets of one function.
    ModRef {
        /// The queried function.
        func: FuncId,
    },
}

impl DemandQuery {
    /// A points-to query for the named variable; `None` if the program has
    /// no object of that name.
    pub fn points_to_named(prog: &Program, var: &str) -> Option<DemandQuery> {
        prog.object_by_name(var).map(|obj| DemandQuery::PointsTo { obj })
    }

    /// An alias query for two named variables; `None` if either name does
    /// not resolve.
    pub fn alias_named(prog: &Program, a: &str, b: &str) -> Option<DemandQuery> {
        Some(DemandQuery::Alias {
            a: prog.object_by_name(a)?,
            b: prog.object_by_name(b)?,
        })
    }

    /// A MOD/REF query for the named function; `None` if the program has
    /// no function of that name.
    pub fn modref_named(prog: &Program, func: &str) -> Option<DemandQuery> {
        prog.function_by_name(func)
            .map(|f| DemandQuery::ModRef { func: f.id })
    }
}

/// A demand solve's output: the analysis result of the slice (query it
/// exactly like an exhaustive [`AnalysisResult`], restricted to the
/// demanded pointers/function), plus the slice-size accounting that
/// benches, the server's demand metrics, and `scast --demand` report.
#[derive(Debug)]
pub struct DemandResult {
    /// The solved slice. Points-to facts for the query's roots (and, for
    /// MOD/REF, everything the queried function dereferences) are
    /// byte-equal to the exhaustive solver's; facts about unrelated
    /// objects may be absent — that is the point.
    pub result: AnalysisResult,
    /// How much of the program the slice retained.
    pub stats: SliceStats,
}

impl DemandResult {
    /// The transitive MOD/REF sets of `func`, computed from the solved
    /// slice — equal to the exhaustive [`mod_ref`] sets for the function a
    /// [`DemandQuery::ModRef`] solve was rooted at.
    pub fn modref_of(&self, prog: &Program, func: FuncId) -> FnModRef {
        mod_ref(prog, &self.result, true).of(func)
    }
}

/// Roots and force-included call constraints for a MOD/REF demand on
/// `func`: walk the static over-approximate call graph (lowered direct
/// calls, parameter/return binding copies, indirect sites closed over all
/// address-taken functions) from `func`, then root every pointer its
/// reachable functions dereference and pin their call constraints.
fn modref_roots(
    prog: &Program,
    cset: &ConstraintSet,
    at: &BTreeSet<ObjId>,
    func: FuncId,
) -> (Vec<ObjId>, Vec<u32>) {
    let at_funcs: Vec<FuncId> = prog
        .functions
        .iter()
        .filter(|f| at.contains(&f.obj))
        .map(|f| f.id)
        .collect();
    let mut edges: Vec<(FuncId, FuncId)> = Vec::new();
    for (caller, callee) in &prog.direct_calls {
        if let Some(c) = caller {
            edges.push((*c, *callee));
        }
    }
    for (i, c) in cset.constraints().iter().enumerate() {
        let Some(g) = prog.stmt_funcs[i] else { continue };
        match c {
            // Bound direct calls lower to parameter/return copies; recover
            // their edges the same way MOD/REF itself does.
            Constraint::Copy { dst, src, .. } => {
                match prog.object(*dst).kind {
                    ObjKind::Param(callee, _) | ObjKind::VarArgs(callee) => {
                        edges.push((g, callee));
                    }
                    _ => {}
                }
                if let ObjKind::Ret(callee) = prog.object(src.obj).kind {
                    edges.push((g, callee));
                }
            }
            Constraint::CallDirect { fid, .. } => edges.push((g, *fid)),
            Constraint::CallIndirect { .. } => {
                // Before solving, an indirect site may reach any
                // address-taken function.
                edges.extend(at_funcs.iter().map(|&h| (g, h)));
            }
            _ => {}
        }
    }

    let mut reach: BTreeSet<FuncId> = BTreeSet::new();
    let mut stack = vec![func];
    while let Some(f) = stack.pop() {
        if !reach.insert(f) {
            continue;
        }
        stack.extend(
            edges
                .iter()
                .filter(|(a, _)| *a == f)
                .map(|(_, b)| *b)
                .filter(|b| !reach.contains(b)),
        );
    }

    let mut roots: Vec<ObjId> = Vec::new();
    let mut forced: Vec<u32> = Vec::new();
    for (i, c) in cset.constraints().iter().enumerate() {
        let in_reach = prog.stmt_funcs[i].is_some_and(|g| reach.contains(&g));
        if !in_reach {
            continue;
        }
        match c {
            Constraint::Load { ptr, .. } | Constraint::Store { ptr, .. } => roots.push(*ptr),
            Constraint::CopyAll { dst_ptr, src_ptr } => {
                roots.push(*dst_ptr);
                roots.push(*src_ptr);
            }
            Constraint::CallIndirect { ptr, .. } => {
                roots.push(*ptr);
                forced.push(i as u32);
            }
            Constraint::CallDirect { .. } => forced.push(i as u32),
            _ => {}
        }
    }
    (roots, forced)
}

/// The constraint-graph slice a demand solve of `query` would run on,
/// without solving it. The slice's `stmt_map` lists the whole-program
/// statement indices the query can see — the footprint the server's
/// incremental `update` op intersects with an edit's dirty region to
/// decide which cached demand answers survive.
pub fn slice_for_query(
    prog: &Program,
    constraints: &ConstraintSet,
    query: &DemandQuery,
) -> crate::Slice {
    let slicer = ConstraintSlicer::new(prog, constraints);
    let (roots, forced) = match query {
        DemandQuery::PointsTo { obj } => (vec![*obj], Vec::new()),
        DemandQuery::Alias { a, b } => (vec![*a, *b], Vec::new()),
        DemandQuery::ModRef { func } => {
            modref_roots(prog, constraints, slicer.address_taken(), *func)
        }
    };
    slicer.slice_with_forced(&roots, &forced)
}

/// Demand-solves `query` against an externally held constraint set: slice
/// backward from the query's roots, then run stages 2+3 on the slice only.
///
/// This is [`AnalysisSession::try_solve_demand`](crate::AnalysisSession::try_solve_demand)
/// without the session wrapper, mirroring
/// [`try_solve_compiled`](crate::session::try_solve_compiled) for callers
/// (like the query server's cache) that own `Program` and
/// [`ConstraintSet`] separately. `constraints` must have been compiled
/// from this exact `prog`.
///
/// # Errors
///
/// [`SolveError`] when `config.budget` trips before the slice's fixpoint
/// completes. The budget governs the sliced solve, so a query whose slice
/// is small can succeed under a budget the exhaustive solve would blow.
pub fn try_solve_demand_compiled(
    prog: &Program,
    constraints: &ConstraintSet,
    query: &DemandQuery,
    config: &AnalysisConfig,
) -> Result<DemandResult, SolveError> {
    let slice = slice_for_query(prog, constraints, query);
    let model = make_model_with(
        config.model,
        &ModelOptions {
            layout: config.layout.clone(),
            compat: config.compat,
            arith_stride: config.arith_stride,
        },
    );
    let start = Instant::now();
    let mut out = Solver::from_constraints(prog, &slice.set, model)
        .with_arith_mode(config.arith_mode)
        .run_with_threads_budgeted(config.threads, &config.budget)?;
    // The solver records call sites by their index in the set it ran —
    // slice positions here. Remap to whole-program statement ids so
    // call-graph clients (MOD/REF) index the right statements.
    for (sid, _) in &mut out.call_edges {
        sid.0 = slice.stmt_map[sid.0 as usize];
    }
    out.call_edges.sort_unstable();
    let elapsed = start.elapsed();
    Ok(DemandResult {
        result: AnalysisResult::from_solver(config.model, out, elapsed),
        stats: slice.stats,
    })
}

/// [`try_solve_demand_compiled`] for unlimited budgets; panics if
/// `config.budget` trips (use the `try_` form for budgeted configs).
pub fn solve_demand_compiled(
    prog: &Program,
    constraints: &ConstraintSet,
    query: &DemandQuery,
    config: &AnalysisConfig,
) -> DemandResult {
    try_solve_demand_compiled(prog, constraints, query, config)
        .expect("budgeted config solved through the infallible path; use try_solve_demand_compiled")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::session::AnalysisSession;
    use crate::Budget;

    fn demand_pt(
        session: &AnalysisSession<'_>,
        prog: &Program,
        var: &str,
        cfg: &AnalysisConfig,
    ) -> (Vec<String>, SliceStats) {
        let q = DemandQuery::points_to_named(prog, var).unwrap();
        let d = session.solve_demand(&q, cfg);
        (d.result.points_to_names(prog, var), d.stats)
    }

    #[test]
    fn points_to_matches_exhaustive_for_all_models() {
        let src = "struct S { int *s1; int *s2; } s;\n\
                   int x, y, *p;\n\
                   void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";
        let prog = structcast_ir::lower_source(src).unwrap();
        let session = AnalysisSession::compile(&prog);
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind);
            let full = session.solve(&cfg);
            let (got, _) = demand_pt(&session, &prog, "p", &cfg);
            assert_eq!(got, full.points_to_names(&prog, "p"), "{kind}");
        }
    }

    #[test]
    fn unrelated_chains_shrink_the_slice() {
        let src = "int x, *p; int a, b, *q, **qq;\n\
                   void f(void) { p = &x; q = &a; qq = &q; *qq = &b; }";
        let prog = structcast_ir::lower_source(src).unwrap();
        let session = AnalysisSession::compile(&prog);
        let cfg = AnalysisConfig::default();
        let (got, stats) = demand_pt(&session, &prog, "p", &cfg);
        assert_eq!(got, vec!["x".to_string()]);
        assert!(
            stats.slice_statements < stats.total_statements,
            "{stats:?}"
        );
        assert!(stats.ratio() < 1.0);
    }

    #[test]
    fn alias_matches_exhaustive() {
        let src = "int x, y, *p, *q, *r;\n\
                   void f(void) { p = &x; q = &x; r = &y; }";
        let prog = structcast_ir::lower_source(src).unwrap();
        let session = AnalysisSession::compile(&prog);
        let cfg = AnalysisConfig::default();
        let full = session.solve(&cfg);
        for (a, b) in [("p", "q"), ("p", "r"), ("q", "r")] {
            let q = DemandQuery::alias_named(&prog, a, b).unwrap();
            let d = session.solve_demand(&q, &cfg);
            assert_eq!(
                d.result.may_alias_named(&prog, a, b),
                full.may_alias_named(&prog, a, b),
                "{a} ~ {b}"
            );
        }
    }

    #[test]
    fn modref_matches_exhaustive_through_calls() {
        let src = r#"
            struct S { int *a; int *b; } s;
            int x, y;
            int *gp;
            void writer(int **slot) { *slot = &x; }
            void reader(void) { gp = s.a; }
            void caller(void) { writer(&s.a); }
            void main(void) { caller(); reader(); s.b = &y; }
        "#;
        let prog = structcast_ir::lower_source(src).unwrap();
        let session = AnalysisSession::compile(&prog);
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind);
            let full = session.solve(&cfg);
            let full_mr = mod_ref(&prog, &full, true);
            for fname in ["writer", "reader", "caller", "main"] {
                let f = prog.function_by_name(fname).unwrap().id;
                let q = DemandQuery::ModRef { func: f };
                let d = session.solve_demand(&q, &cfg);
                assert_eq!(d.modref_of(&prog, f), full_mr.of(f), "{kind} {fname}");
            }
        }
    }

    #[test]
    fn modref_covers_indirect_calls() {
        let src = r#"
            int x; int *gp;
            void target(void) { gp = &x; }
            void (*fp)(void);
            void main(void) { fp = target; fp(); }
        "#;
        let prog = structcast_ir::lower_source(src).unwrap();
        let session = AnalysisSession::compile(&prog);
        let cfg = AnalysisConfig::default();
        let full = session.solve(&cfg);
        let f = prog.function_by_name("main").unwrap().id;
        let d = session.solve_demand(&DemandQuery::ModRef { func: f }, &cfg);
        assert_eq!(
            d.modref_of(&prog, f),
            mod_ref(&prog, &full, true).of(f),
            "indirect callee effects must be lifted into main"
        );
        assert!(!d.result.call_edges.is_empty());
        // The remapped call edges index whole-program statements.
        for (sid, _) in &d.result.call_edges {
            assert!((sid.0 as usize) < prog.stmts.len());
        }
    }

    #[test]
    fn named_constructors_reject_unknown_names() {
        let prog = structcast_ir::lower_source("int x, *p; void f(void) { p = &x; }").unwrap();
        assert!(DemandQuery::points_to_named(&prog, "ghost").is_none());
        assert!(DemandQuery::alias_named(&prog, "p", "ghost").is_none());
        assert!(DemandQuery::modref_named(&prog, "ghost").is_none());
        assert!(DemandQuery::points_to_named(&prog, "p").is_some());
        assert!(DemandQuery::modref_named(&prog, "f").is_some());
    }

    #[test]
    fn budgets_govern_the_sliced_solve() {
        let prog = structcast_ir::lower_source("int x, *p; void f(void) { p = &x; }").unwrap();
        let session = AnalysisSession::compile(&prog);
        let q = DemandQuery::points_to_named(&prog, "p").unwrap();
        let cfg = AnalysisConfig::default().with_budget(Budget::unlimited().with_max_edges(0));
        let err = session.try_solve_demand(&q, &cfg).unwrap_err();
        assert_eq!(err.kind(), "edge_limit");
        // The session (and an unbudgeted demand) still works afterwards.
        let ok = session
            .try_solve_demand(&q, &AnalysisConfig::default())
            .unwrap();
        assert_eq!(ok.result.points_to_names(&prog, "p"), vec!["x".to_string()]);
    }
}
