//! Deterministic sharded fixpoint: the parallel driver behind
//! [`Solver::run_with_threads`].
//!
//! Statements are split into `threads` shards by a fixed round-robin over
//! statement indices ([`ConstraintSet::shard_of`]), and the fixpoint runs
//! in **rendezvous rounds**:
//!
//! 1. the pending statements are sorted and partitioned by shard;
//! 2. each shard's worker fires its statements *read-only* against the
//!    fact store frozen at the rendezvous, emitting an ordered list of
//!    [`Op`]s instead of mutating shared state;
//! 3. the main thread merges the out-queues **in shard order** — first
//!    every subscription, then every edge/unknown/call-binding — waking
//!    subscribers into the next round's pending set.
//!
//! Subscriptions merge before facts so a statement that subscribed this
//! round is woken by this round's facts; per-statement delta cursors live
//! in the owning shard (the assignment never changes), so re-firing still
//! consumes only deltas. Both drivers compute the unique least fixpoint of
//! the same monotone rule system, so the final edge set — and therefore
//! any sorted dump of it — is identical to the sequential solver's for
//! every thread count; with the thread count fixed, the round structure,
//! merge order, and iteration counts are deterministic as well.

use super::{finish, CStmt, Engine, Solver, SolverOutput, ArithMode, SOLVES};
use crate::budget::{Budget, SolveError};
use crate::facts::FactStore;
use crate::loc::{Loc, LocId};
use crate::model::{FieldModel, ModelStats};
use std::collections::{HashMap, HashSet};
use structcast_constraints::ConstraintSet;
use structcast_ir::{FuncId, ObjId, Program};
use structcast_types::FieldPath;

/// One unit of work emitted by a shard worker, applied by the merge step.
enum Op {
    /// Register `stmt` as a subscriber of `obj` (merge pass 1).
    Sub { stmt: u32, obj: ObjId },
    /// Add the points-to edge `src → tgt` (merge pass 2). Carries `Loc`s,
    /// not ids, because model results may not be interned yet.
    Edge { src: Loc, tgt: Loc },
    /// Flag `loc` as a possibly-corrupted pointer (merge pass 2).
    Unknown { loc: Loc },
    /// Bind call site `site` to callee `fid` (merge pass 2).
    Bind { site: u32, fid: FuncId },
}

/// Per-shard state that persists across rounds: the delta cursors of the
/// statements the shard owns, and its share of the Figure 3 counters.
/// Cursors mirror the sequential engine's, except the copy-pair key holds
/// the destination as a `Loc` — resolve-produced destinations may not be
/// interned in the frozen store the worker reads.
#[derive(Default)]
struct ShardState {
    scan_cursors: HashMap<(u32, LocId), u32>,
    pair_cursors: HashMap<(u32, Loc, LocId), u32>,
    stats: ModelStats,
}

/// The engine state a worker is allowed to see: everything frozen at the
/// rendezvous. Shared by `&` across the round's workers.
struct Frozen<'a> {
    prog: &'a Program,
    model: &'a dyn FieldModel,
    facts: &'a FactStore,
    unknown: &'a HashSet<LocId>,
    arith_mode: ArithMode,
}

/// One shard's view for one round: the frozen snapshot, the shard's
/// persistent cursors, and the out-queue being built.
struct Worker<'a, 'f> {
    fz: &'a Frozen<'f>,
    st: &'a mut ShardState,
    ops: Vec<Op>,
}

impl Worker<'_, '_> {
    fn sub(&mut self, stmt: u32, obj: ObjId) {
        self.ops.push(Op::Sub { stmt, obj });
    }

    fn edge(&mut self, src: &Loc, tgt: Loc) {
        self.ops.push(Op::Edge { src: src.clone(), tgt });
    }

    fn edge_ids(&mut self, src: LocId, tgt: LocId) {
        let facts = self.fz.facts;
        self.ops.push(Op::Edge {
            src: facts.loc(src).clone(),
            tgt: facts.loc(tgt).clone(),
        });
    }

    /// Mirror of the sequential engine's scan cursor, against the frozen
    /// target list.
    fn take_scan_window(&mut self, idx: u32, watched: LocId) -> (usize, usize) {
        let total = self.fz.facts.targets_len(watched);
        let cur = self
            .st
            .scan_cursors
            .insert((idx, watched), total as u32)
            .unwrap_or(0) as usize;
        (cur, total)
    }

    /// Mirror of the sequential engine's pair-cursor copy. A source the
    /// frozen store has never interned has no targets yet, so the cursor
    /// is not created until the source exists.
    fn copy_pair(&mut self, idx: u32, dst: &Loc, src: &Loc) {
        let facts = self.fz.facts;
        let Some(sid) = facts.try_id(src) else { return };
        let total = facts.targets_len(sid);
        let cur = if total == 0 {
            0
        } else {
            self.st
                .pair_cursors
                .insert((idx, dst.clone(), sid), total as u32)
                .unwrap_or(0) as usize
        };
        for &t in facts.targets_from(sid, cur) {
            self.edge(dst, facts.loc(t).clone());
        }
        if self.fz.unknown.contains(&sid) {
            self.ops.push(Op::Unknown { loc: dst.clone() });
        }
    }

    /// Fires one statement read-only, emitting ops. Mirrors
    /// [`Solver::process`] rule for rule.
    fn process(&mut self, idx: u32, c: &CStmt) {
        let fz = self.fz;
        let facts = fz.facts;
        match c {
            CStmt::AddrOf { d, t } => {
                // No delta to track: re-emitting the single edge is a
                // merge-side no-op.
                self.edge_ids(*d, *t);
            }
            CStmt::AddrField { d, p, tau_p, path } => {
                self.sub(idx, facts.obj_of(*p));
                let (cur, total) = self.take_scan_window(idx, *p);
                for k in cur..total {
                    let tgt = facts.target_at(*p, k);
                    let results =
                        fz.model
                            .lookup(fz.prog, *tau_p, path, facts.loc(tgt), &mut self.st.stats);
                    let dloc = facts.loc(*d);
                    for r in results {
                        self.ops.push(Op::Edge { src: dloc.clone(), tgt: r });
                    }
                }
            }
            CStmt::Copy { d, s, tau } => {
                self.sub(idx, facts.obj_of(*s));
                let pairs = fz.model.resolve(
                    fz.prog,
                    facts.loc(*d),
                    facts.loc(*s),
                    *tau,
                    facts,
                    &mut self.st.stats,
                );
                for (dl, sl) in pairs {
                    self.copy_pair(idx, &dl, &sl);
                }
            }
            CStmt::Load { d, p, tau } => {
                self.sub(idx, facts.obj_of(*p));
                let total = facts.targets_len(*p);
                for k in 0..total {
                    let tgt = facts.target_at(*p, k);
                    self.sub(idx, facts.obj_of(tgt));
                    let pairs = fz.model.resolve(
                        fz.prog,
                        facts.loc(*d),
                        facts.loc(tgt),
                        *tau,
                        facts,
                        &mut self.st.stats,
                    );
                    for (dl, sl) in pairs {
                        self.copy_pair(idx, &dl, &sl);
                    }
                }
            }
            CStmt::Store { p, s, tau_p } => {
                self.sub(idx, facts.obj_of(*p));
                self.sub(idx, facts.obj_of(*s));
                let total = facts.targets_len(*p);
                for k in 0..total {
                    let tgt = facts.target_at(*p, k);
                    let pairs = fz.model.resolve(
                        fz.prog,
                        facts.loc(tgt),
                        facts.loc(*s),
                        *tau_p,
                        facts,
                        &mut self.st.stats,
                    );
                    for (dl, sl) in pairs {
                        self.copy_pair(idx, &dl, &sl);
                    }
                }
            }
            CStmt::PtrArith { d, s, pointee } => {
                self.sub(idx, facts.obj_of(*s));
                match fz.arith_mode {
                    ArithMode::Spread => {
                        let (cur, total) = self.take_scan_window(idx, *s);
                        for k in cur..total {
                            let tgt = facts.target_at(*s, k);
                            let spread = fz.model.spread(fz.prog, facts.loc(tgt), *pointee);
                            let dloc = facts.loc(*d);
                            for l in spread {
                                self.ops.push(Op::Edge { src: dloc.clone(), tgt: l });
                            }
                        }
                    }
                    ArithMode::FlagUnknown => {
                        self.ops.push(Op::Unknown { loc: facts.loc(*d).clone() });
                    }
                }
            }
            CStmt::CopyAll { dp, sp } => {
                self.sub(idx, facts.obj_of(*dp));
                self.sub(idx, facts.obj_of(*sp));
                let dn = facts.targets_len(*dp);
                let sn = facts.targets_len(*sp);
                for i in 0..dn {
                    let dt = facts.target_at(*dp, i);
                    for j in 0..sn {
                        let st = facts.target_at(*sp, j);
                        self.sub(idx, facts.obj_of(st));
                        let pairs = fz.model.resolve_all(
                            fz.prog,
                            facts.loc(dt),
                            facts.loc(st),
                            facts,
                            &mut self.st.stats,
                        );
                        for (dl, sl) in pairs {
                            self.copy_pair(idx, &dl, &sl);
                        }
                    }
                }
            }
            CStmt::CallDirect { fid, .. } => {
                self.ops.push(Op::Bind { site: idx, fid: *fid });
            }
            CStmt::CallIndirect { p, .. } => {
                self.sub(idx, facts.obj_of(*p));
                let (cur, total) = self.take_scan_window(idx, *p);
                for k in cur..total {
                    let tgt = facts.target_at(*p, k);
                    if let Some(fid) = fz.prog.as_function(facts.obj_of(tgt)) {
                        self.ops.push(Op::Bind { site: idx, fid });
                    }
                }
            }
        }
    }
}

/// Wakes every subscriber of `obj` into `next`.
fn wake(en: &mut Engine<'_>, obj: ObjId, next: &mut Vec<u32>) {
    let oi = obj.0 as usize;
    if oi >= en.subs.len() {
        return;
    }
    for k in 0..en.subs[oi].len() {
        let s = en.subs[oi][k];
        if !en.queued[s as usize] {
            en.queued[s as usize] = true;
            next.push(s);
        }
    }
}

/// Synthesizes the parameter/return `Copy` bindings for a discovered
/// (site, callee) pair — the merge-side twin of [`Solver::bind_call`], with
/// the new statements queued for the next round.
fn apply_bind(
    en: &mut Engine<'_>,
    cstmts: &mut Vec<CStmt>,
    next: &mut Vec<u32>,
    site: u32,
    fid: FuncId,
) {
    if !en.bound_calls.insert((site as usize, fid)) {
        return;
    }
    let (args, ret) = match &cstmts[site as usize] {
        CStmt::CallDirect { args, ret, .. } => (args.clone(), *ret),
        CStmt::CallIndirect { args, ret, .. } => (args.clone(), *ret),
        _ => unreachable!("bind op from a non-call statement"),
    };
    let empty = FieldPath::empty();
    for (dst, src) in en.call_bindings(fid, &args, ret) {
        let c = CStmt::Copy {
            d: en.norm_id(dst, &empty),
            s: en.norm_id(src, &empty),
            tau: en.prog.type_of(dst),
        };
        let new_idx = cstmts.len() as u32;
        cstmts.push(c);
        en.queued.push(true);
        next.push(new_idx);
    }
}

/// Runs the sharded fixpoint. Called by
/// [`Solver::run_with_threads_budgeted`] with `threads >= 2`.
///
/// The budget is checked once per rendezvous round — before the fan-out
/// (deadline/cancellation) and after the merge (edge cap) — mirroring the
/// sequential driver's iteration-boundary checks. A round is the sharded
/// path's natural iteration boundary: no shared state mutates inside one.
pub(super) fn run_sharded(
    solver: Solver<'_>,
    threads: usize,
    budget: &Budget,
) -> Result<SolverOutput, SolveError> {
    SOLVES.with(|c| c.set(c.get() + 1));
    if let Some(e) = budget.time_exceeded() {
        return Err(e);
    }
    let Solver { mut en, mut cstmts } = solver;
    let nshards = threads;
    let mut shards: Vec<ShardState> = (0..nshards).map(|_| ShardState::default()).collect();

    // Round 0's pending set is the constructor-seeded worklist (all
    // original statements, already flagged queued).
    let mut pending: Vec<u32> = en.worklist.drain(..).collect();
    let mut next: Vec<u32> = Vec::new();

    while !pending.is_empty() {
        if let Some(e) = budget.time_exceeded() {
            return Err(e);
        }
        // Deterministic round shape: ascending statement order, fixed
        // shard assignment.
        pending.sort_unstable();
        en.iterations += pending.len() as u64;
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        for &i in &pending {
            en.queued[i as usize] = false;
            parts[ConstraintSet::shard_of(i, nshards)].push(i);
        }

        // Fan out: workers read the frozen snapshot, build out-queues.
        let frozen = Frozen {
            prog: en.prog,
            model: &*en.model,
            facts: &en.facts,
            unknown: &en.unknown,
            arith_mode: en.arith_mode,
        };
        let cstmts_ref: &[CStmt] = &cstmts;
        let out_queues: Vec<Vec<Op>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(&parts)
                .map(|(st, part)| {
                    let fz = &frozen;
                    scope.spawn(move || {
                        let mut w = Worker { fz, st, ops: Vec::new() };
                        for &i in part {
                            w.process(i, &cstmts_ref[i as usize]);
                        }
                        w.ops
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Rendezvous: merge in shard order. Subscriptions first, so a
        // statement that subscribed this round is woken by this round's
        // facts; then edges, unknown flags, and call bindings.
        next.clear();
        for ops in &out_queues {
            for op in ops {
                if let Op::Sub { stmt, obj } = op {
                    en.subscribe(*stmt, *obj);
                }
            }
        }
        for ops in out_queues {
            for op in ops {
                match op {
                    Op::Sub { .. } => {}
                    Op::Edge { src, tgt } => {
                        let s = en.facts.intern(src);
                        let t = en.facts.intern(tgt);
                        if en.facts.insert_ids(s, t) {
                            let o = en.facts.obj_of(s);
                            wake(&mut en, o, &mut next);
                        }
                    }
                    Op::Unknown { loc } => {
                        let l = en.facts.intern(loc);
                        if en.unknown.insert(l) {
                            let o = en.facts.obj_of(l);
                            wake(&mut en, o, &mut next);
                        }
                    }
                    Op::Bind { site, fid } => {
                        apply_bind(&mut en, &mut cstmts, &mut next, site, fid);
                    }
                }
            }
        }
        if let Some(e) = budget.exceeded(en.facts.len()) {
            return Err(e);
        }
        std::mem::swap(&mut pending, &mut next);
    }

    // Fold the per-shard Figure 3 counters into the engine's, in shard
    // order (deterministic for a fixed thread count).
    for st in &shards {
        let s = &st.stats;
        en.stats.lookup_calls += s.lookup_calls;
        en.stats.lookup_struct += s.lookup_struct;
        en.stats.lookup_mismatch += s.lookup_mismatch;
        en.stats.resolve_calls += s.resolve_calls;
        en.stats.resolve_struct += s.resolve_struct;
        en.stats.resolve_mismatch += s.resolve_mismatch;
        en.stats.out_of_bounds += s.out_of_bounds;
    }
    Ok(finish(en))
}
