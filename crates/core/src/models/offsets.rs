//! The "Offsets" instance (paper §4.2.2): locations are byte offsets under
//! one concrete [`Layout`]. The most precise instance; its results are only
//! safe for that layout strategy (not portable).
//!
//! ```text
//! normalize(s.α)       = ⟨s, offsetof(τ_s, α)⟩
//! lookup(τ, α, t.k)    = { t.(k + offsetof(τ, α)) }
//! resolve(s.j, t.k, τ) = { ⟨s.(j+i), t.(k+i)⟩ | 0 ≤ i < sizeof(τ) }
//! ```
//!
//! `resolve`'s per-byte pairs are realized lazily against the fact store:
//! only source offsets that currently hold facts produce pairs, and the
//! solver re-fires the statement when new facts appear in the source object
//! — semantically identical to the eager per-byte enumeration.

use super::util::involves_structs;
use crate::facts::FactStore;
use crate::loc::{FieldRep, Loc};
use crate::model::{FieldModel, ModelKind, ModelStats};
use structcast_ir::{ObjId, Program};
use structcast_types::{FieldPath, Layout, TypeId};

/// The "Offsets" model.
#[derive(Debug, Clone)]
pub struct OffsetsModel {
    layout: Layout,
    arith_stride: bool,
}

impl OffsetsModel {
    /// Creates the model for a concrete layout strategy.
    pub fn new(layout: Layout) -> Self {
        OffsetsModel {
            layout,
            arith_stride: false,
        }
    }

    /// Enables the Wilson–Lam stride refinement for pointer arithmetic.
    pub fn with_stride(mut self, on: bool) -> Self {
        self.arith_stride = on;
        self
    }

    /// The layout this instance analyzes under.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn off_of(loc: &Loc) -> u64 {
        match loc.field {
            FieldRep::Off(o) => o,
            ref other => panic!("offsets model received non-offset location {other:?}"),
        }
    }
}

impl FieldModel for OffsetsModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Offsets
    }

    fn normalize(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Loc {
        let ty = prog.type_of(obj);
        let off = self.layout.offset_of_path(&prog.types, ty, path);
        Loc::off(obj, off)
    }

    fn lookup(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
        stats: &mut ModelStats,
    ) -> Vec<Loc> {
        stats.lookup_calls += 1;
        if involves_structs(prog, tau, &[target]) {
            stats.lookup_struct += 1;
        }
        let k = Self::off_of(target);
        let field_off = self
            .layout
            .offset_of_path(&prog.types, prog.types.strip_arrays(tau), alpha);
        let n = k + field_off;
        let t_ty = prog.type_of(target.obj);
        let size = self.layout.size_of(&prog.types, t_ty);
        if size > 0 && n >= size {
            // Beyond the actual object: invalid under Assumption 1; dropped.
            stats.out_of_bounds += 1;
            return Vec::new();
        }
        let canon = self.layout.canonical_offset(&prog.types, t_ty, n);
        vec![Loc::off(target.obj, canon)]
    }

    fn resolve(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
        facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        stats.resolve_calls += 1;
        if involves_structs(prog, tau, &[dst, src]) {
            stats.resolve_struct += 1;
        }
        let len = self.layout.size_of(&prog.types, tau).max(1);
        self.byte_range_pairs(prog, dst, src, len, facts, stats)
    }

    fn resolve_all(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        self.byte_range_pairs(prog, dst, src, u64::MAX, facts, stats)
    }

    fn spread(&self, prog: &Program, target: &Loc, pointee: Option<TypeId>) -> Vec<Loc> {
        let obj = target.obj;
        let ty = prog.type_of(obj);
        let mut offs: Vec<u64> = self
            .layout
            .leaf_offsets(&prog.types, ty)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        offs.push(0);
        offs.sort_unstable();
        offs.dedup();
        // Wilson–Lam stride refinement (related work §6): a `T*` moved by
        // ±k stays at offsets congruent to the start modulo `sizeof(T)`.
        // Implemented as a *filter* of the whole-object spread, so it is a
        // strict refinement; if nothing survives (e.g. a byte-blob target),
        // the unrefined spread stands.
        if self.arith_stride {
            if let (Some(p), FieldRep::Off(start)) = (pointee, &target.field) {
                let s = self.layout.size_of(&prog.types, p).max(1);
                let filtered: Vec<u64> = offs
                    .iter()
                    .copied()
                    .filter(|o| o % s == start % s)
                    .collect();
                if !filtered.is_empty() {
                    offs = filtered;
                }
            }
        }
        offs.into_iter().map(|o| Loc::off(obj, o)).collect()
    }
}

impl OffsetsModel {
    fn byte_range_pairs(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        len: u64,
        facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        let j = Self::off_of(dst);
        let k = Self::off_of(src);
        let hi = k.saturating_add(len);
        let d_ty = prog.type_of(dst.obj);
        let s_ty = prog.type_of(src.obj);
        let d_size = self.layout.size_of(&prog.types, d_ty);
        let mut out = Vec::new();
        for src_loc in facts.sources_in_range(src.obj, k, hi) {
            let n = Self::off_of(&src_loc);
            let m = j + (n - k);
            if d_size > 0 && m >= d_size {
                stats.out_of_bounds += 1;
                continue;
            }
            let m = self.layout.canonical_offset(&prog.types, d_ty, m);
            out.push((Loc::off(dst.obj, m), src_loc));
        }
        // Keep the head pair even before any facts exist so unions of
        // scalars still copy once facts arrive via re-firing; harmless
        // because copying an empty set is a no-op.
        let s_size = self.layout.size_of(&prog.types, s_ty);
        let _ = s_size;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ir::lower_source;

    fn prog_and_model() -> (Program, OffsetsModel) {
        let prog = lower_source(
            "struct S { int *s1; int s2; char *s3; } s, *p;\n\
             struct T { int *t1; int *t2; char *t3; } t;\n\
             int x;",
        )
        .unwrap();
        (prog, OffsetsModel::new(Layout::ilp32()))
    }

    #[test]
    fn normalize_maps_paths_to_offsets() {
        let (prog, m) = prog_and_model();
        let s = prog.object_by_name("s").unwrap();
        assert_eq!(m.normalize(&prog, s, &FieldPath::empty()), Loc::off(s, 0));
        assert_eq!(
            m.normalize(&prog, s, &FieldPath::from_steps([2u32])),
            Loc::off(s, 8)
        );
    }

    #[test]
    fn lookup_adds_field_offset() {
        // Problem 2's example: p: struct S* points at t: struct T;
        // (*p).s3 refers to byte 8 of t, which is t.t3 — under this layout
        // the two third fields coincide.
        let (prog, m) = prog_and_model();
        let t = prog.object_by_name("t").unwrap();
        let p = prog.object_by_name("p").unwrap();
        let s_ty = prog.pointee_of(p).unwrap();
        let mut stats = ModelStats::default();
        let locs = m.lookup(
            &prog,
            s_ty,
            &FieldPath::from_steps([2u32]),
            &Loc::off(t, 0),
            &mut stats,
        );
        assert_eq!(locs, vec![Loc::off(t, 8)]);
        assert_eq!(stats.lookup_struct, 1);
    }

    #[test]
    fn lookup_out_of_bounds_is_dropped() {
        let (prog, m) = prog_and_model();
        let x = prog.object_by_name("x").unwrap(); // int, size 4
        let p = prog.object_by_name("p").unwrap();
        let s_ty = prog.pointee_of(p).unwrap();
        let mut stats = ModelStats::default();
        // (*p).s3 when p points at a lone int: offset 8 ≥ sizeof(int).
        let locs = m.lookup(
            &prog,
            s_ty,
            &FieldPath::from_steps([2u32]),
            &Loc::off(x, 0),
            &mut stats,
        );
        assert!(locs.is_empty());
        assert_eq!(stats.out_of_bounds, 1);
    }

    #[test]
    fn resolve_transfers_facts_in_range() {
        let (prog, m) = prog_and_model();
        let s = prog.object_by_name("s").unwrap();
        let t = prog.object_by_name("t").unwrap();
        let x = prog.object_by_name("x").unwrap();
        let mut facts = FactStore::new();
        // t.t1 (offset 0) and t.t3 (offset 8) hold pointers to x.
        facts.insert(Loc::off(t, 0), Loc::off(x, 0));
        facts.insert(Loc::off(t, 8), Loc::off(x, 0));
        let s_ty = prog.type_of(s);
        let mut stats = ModelStats::default();
        // s = (struct S)t copies sizeof(struct S) = 12 bytes.
        let pairs = m.resolve(
            &prog,
            &Loc::off(s, 0),
            &Loc::off(t, 0),
            s_ty,
            &facts,
            &mut stats,
        );
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(Loc::off(s, 0), Loc::off(t, 0))));
        assert!(pairs.contains(&(Loc::off(s, 8), Loc::off(t, 8))));
    }

    #[test]
    fn resolve_respects_copy_length() {
        // Complication 4: *p = (struct T)s with p: struct T* — only
        // sizeof(struct T) bytes are copied.
        let prog = lower_source(
            "struct R { int *r1; int *r2; char *r3; } r;\n\
             struct S3 { int *s1; int *s2; int *s3; } s;\n\
             struct T2 { int *t1; int *t2; } t;\n\
             int x;",
        )
        .unwrap();
        let m = OffsetsModel::new(Layout::ilp32());
        let r = prog.object_by_name("r").unwrap();
        let s = prog.object_by_name("s").unwrap();
        let t2 = prog.object_by_name("t").unwrap();
        let x = prog.object_by_name("x").unwrap();
        let mut facts = FactStore::new();
        for off in [0u64, 4, 8] {
            facts.insert(Loc::off(s, off), Loc::off(x, 0));
        }
        let t_ty = prog.type_of(t2);
        let mut stats = ModelStats::default();
        let pairs = m.resolve(&prog, &Loc::off(r, 0), &Loc::off(s, 0), t_ty, &facts, &mut stats);
        // sizeof(struct T2) = 8: only offsets 0 and 4 transfer.
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|(_, sl)| Loc::off(s, 8) != *sl));
    }

    #[test]
    fn spread_lists_leaf_offsets() {
        let (prog, m) = prog_and_model();
        let s = prog.object_by_name("s").unwrap();
        let offs: Vec<u64> = m
            .spread(&prog, &Loc::off(s, 0), None)
            .into_iter()
            .map(|l| match l.field {
                FieldRep::Off(o) => o,
                _ => panic!(),
            })
            .collect();
        assert_eq!(offs, vec![0, 4, 8]);
    }

    #[test]
    fn lp64_changes_offsets() {
        let prog = lower_source("struct S { char c; int *p; } s;").unwrap();
        let s = prog.object_by_name("s").unwrap();
        let m32 = OffsetsModel::new(Layout::ilp32());
        let m64 = OffsetsModel::new(Layout::lp64());
        let p = FieldPath::from_steps([1u32]);
        assert_eq!(m32.normalize(&prog, s, &p), Loc::off(s, 4));
        assert_eq!(m64.normalize(&prog, s, &p), Loc::off(s, 8));
    }
}
