//! The "Collapse Always" instance (paper §4.3.1): every structure is one
//! variable. Portable, least precise, fastest.
//!
//! ```text
//! normalize(s.α)        = s
//! lookup(τ, α, t.β)     = { t }
//! resolve(s.α, t.β, τ)  = { ⟨s, t⟩ }
//! ```

use super::util::involves_structs;
use crate::facts::FactStore;
use crate::loc::Loc;
use crate::model::{FieldModel, ModelKind, ModelStats};
use structcast_ir::{ObjId, Program};
use structcast_types::{FieldPath, TypeId};

/// The "Collapse Always" model.
#[derive(Debug, Clone, Default)]
pub struct CollapseAlwaysModel;

impl CollapseAlwaysModel {
    /// Creates the model.
    pub fn new() -> Self {
        CollapseAlwaysModel
    }
}

impl FieldModel for CollapseAlwaysModel {
    fn kind(&self) -> ModelKind {
        ModelKind::CollapseAlways
    }

    fn normalize(&self, _prog: &Program, obj: ObjId, _path: &FieldPath) -> Loc {
        Loc::whole(obj)
    }

    fn lookup(
        &self,
        prog: &Program,
        tau: TypeId,
        _alpha: &FieldPath,
        target: &Loc,
        stats: &mut ModelStats,
    ) -> Vec<Loc> {
        stats.lookup_calls += 1;
        if involves_structs(prog, tau, &[target]) {
            stats.lookup_struct += 1;
        }
        vec![Loc::whole(target.obj)]
    }

    fn resolve(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
        _facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        stats.resolve_calls += 1;
        if involves_structs(prog, tau, &[dst, src]) {
            stats.resolve_struct += 1;
        }
        vec![(Loc::whole(dst.obj), Loc::whole(src.obj))]
    }

    fn resolve_all(
        &self,
        _prog: &Program,
        dst: &Loc,
        src: &Loc,
        _facts: &FactStore,
        _stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        vec![(Loc::whole(dst.obj), Loc::whole(src.obj))]
    }

    fn spread(
        &self,
        _prog: &Program,
        target: &Loc,
        _pointee: Option<structcast_types::TypeId>,
    ) -> Vec<Loc> {
        vec![Loc::whole(target.obj)]
    }

    /// Figure 4's fairness expansion: a collapsed struct target stands for
    /// all of its leaf fields.
    fn target_weight(&self, prog: &Program, loc: &Loc) -> usize {
        let ty = prog.type_of(loc.obj);
        let stripped = prog.types.strip_arrays(ty);
        if prog.types.is_record_like(stripped) {
            structcast_types::leaves(&prog.types, stripped).len().max(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ir::lower_source;

    #[test]
    fn everything_collapses() {
        let prog = lower_source(
            "struct S { int *a; int *b; } s; int x;\n\
             void f(void) { s.a = &x; }",
        )
        .unwrap();
        let m = CollapseAlwaysModel::new();
        let s = prog.object_by_name("s").unwrap();
        let n = m.normalize(&prog, s, &FieldPath::from_steps([1u32]));
        assert_eq!(n, Loc::whole(s));
        let mut stats = ModelStats::default();
        let sty = prog.type_of(s);
        let looked = m.lookup(&prog, sty, &FieldPath::from_steps([0u32]), &n, &mut stats);
        assert_eq!(looked, vec![Loc::whole(s)]);
        assert_eq!(stats.lookup_calls, 1);
        assert_eq!(stats.lookup_struct, 1);
    }

    #[test]
    fn struct_targets_expand_for_fairness() {
        let prog = lower_source("struct S { int *a; int *b; int c; } s; int x;").unwrap();
        let m = CollapseAlwaysModel::new();
        let s = prog.object_by_name("s").unwrap();
        let x = prog.object_by_name("x").unwrap();
        assert_eq!(m.target_weight(&prog, &Loc::whole(s)), 3);
        assert_eq!(m.target_weight(&prog, &Loc::whole(x)), 1);
    }
}
