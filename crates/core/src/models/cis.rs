//! The "Common Initial Sequence" instance (paper §4.3.3): like "Collapse on
//! Cast", but exploits the ISO C guarantee that structs sharing a compatible
//! initial sequence of fields lay those fields out identically — so accesses
//! within the shared prefix stay field-precise even across casts.

use super::util::{fields_of, involves_structs, path_of};
use crate::facts::FactStore;
use crate::loc::Loc;
use crate::model::{FieldModel, ModelKind, ModelStats};
use structcast_ir::{ObjId, Program};
use structcast_types::{
    common_initial_len, compatible, enclosing_candidates, following_leaves, leaves,
    normalize_path, type_of_path, CompatMode, FieldPath, TypeId, TypeKind,
};

/// The "Common Initial Sequence" model.
#[derive(Debug, Clone)]
pub struct CommonInitialSeqModel {
    compat: CompatMode,
    arith_stride: bool,
}

impl CommonInitialSeqModel {
    /// Creates the model with the given type-compatibility mode.
    pub fn new(compat: CompatMode) -> Self {
        CommonInitialSeqModel {
            compat,
            arith_stride: false,
        }
    }

    /// Enables the Wilson–Lam stride refinement for pointer arithmetic.
    pub fn with_stride(mut self, on: bool) -> Self {
        self.arith_stride = on;
        self
    }

    /// Core of the §4.3.3 `lookup`. Returns the result locations and the
    /// mismatch flag (false only when the access stayed fully type-correct,
    /// i.e. the matched candidate is *completely* compatible with `τ`).
    pub(crate) fn lookup_impl(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
    ) -> (Vec<Loc>, bool) {
        let t_ty = prog.type_of(target.obj);
        let beta = path_of(target);
        let tau_s = prog.types.strip_arrays(tau);

        // Union candidates: a union location accessed at the union's own
        // type or at any member's type is an exact (cast-free) access, and
        // the result is the collapsed union location itself.
        for delta in enclosing_candidates(&prog.types, t_ty, beta) {
            if let Some(dty) = type_of_path(&prog.types, t_ty, &delta) {
                if super::util::union_member_matches(prog, dty, tau_s, self.compat)
                    || (prog
                        .types
                        .as_record(prog.types.strip_arrays(dty))
                        .is_some_and(|r| prog.types.record(r).is_union)
                        && compatible(
                            &prog.types,
                            prog.types.strip_arrays(dty),
                            tau_s,
                            self.compat,
                        ))
                {
                    let full = delta.concat(alpha);
                    let norm = normalize_path(&prog.types, t_ty, &full);
                    return (vec![Loc::path(target.obj, norm)], false);
                }
            }
        }

        // Scalar τ: behave like Collapse-on-Cast's exact matching — there is
        // no initial sequence to exploit.
        let TypeKind::Record(tau_rec) = prog.types.kind(tau_s) else {
            for delta in enclosing_candidates(&prog.types, t_ty, beta) {
                if let Some(dty) = type_of_path(&prog.types, t_ty, &delta) {
                    let dty_s = prog.types.strip_arrays(dty);
                    if dty_s == tau_s || compatible(&prog.types, dty_s, tau_s, self.compat) {
                        let full = delta.concat(alpha);
                        let norm = normalize_path(&prog.types, t_ty, &full);
                        return (vec![Loc::path(target.obj, norm)], false);
                    }
                }
            }
            let locs = following_leaves(&prog.types, t_ty, beta)
                .into_iter()
                .map(|l| Loc::path(target.obj, l))
                .collect();
            return (locs, true);
        };
        let tau_rec = *tau_rec;

        // Find the enclosing candidate δ with the longest common initial
        // sequence with τ (ties → innermost; the paper's examples have a
        // unique candidate — see DESIGN.md §3).
        let mut best: Option<(FieldPath, structcast_types::RecordId, usize)> = None;
        for delta in enclosing_candidates(&prog.types, t_ty, beta) {
            let Some(dty) = type_of_path(&prog.types, t_ty, &delta) else {
                continue;
            };
            let dty_s = prog.types.strip_arrays(dty);
            if let TypeKind::Record(dr) = prog.types.kind(dty_s) {
                let n = common_initial_len(&prog.types, tau_rec, *dr, self.compat);
                if n > 0 && best.as_ref().is_none_or(|b| n > b.2) {
                    best = Some((delta, *dr, n));
                }
            }
        }

        let Some((delta, dr, n)) = best else {
            // No common initial sequence anywhere: collapse from β onward.
            let locs = following_leaves(&prog.types, t_ty, beta)
                .into_iter()
                .map(|l| Loc::path(target.obj, l))
                .collect();
            return (locs, true);
        };

        // "Matched" (no cast effect) only when the two record types are
        // fully compatible.
        let full_match = n == prog.types.record(tau_rec).fields.len()
            && n == prog.types.record(dr).fields.len();

        match alpha.steps().first() {
            // α within the CIS: same index path is valid in δ's record.
            Some(&head) if (head as usize) < n => {
                let full = delta.concat(alpha);
                let norm = normalize_path(&prog.types, t_ty, &full);
                (vec![Loc::path(target.obj, norm)], !full_match)
            }
            // Empty α (whole-object use by resolve): the start of the CIS.
            None => {
                let norm = normalize_path(&prog.types, t_ty, &delta);
                (vec![Loc::path(target.obj, norm)], !full_match)
            }
            // α beyond the CIS: collapse from the first field of t that
            // follows the common initial sequence.
            Some(_) => {
                let start = self.first_leaf_after_cis(prog, t_ty, &delta, dr, n);
                let locs = match start {
                    Some(leaf) => following_leaves(&prog.types, t_ty, &leaf)
                        .into_iter()
                        .map(|l| Loc::path(target.obj, l))
                        .collect(),
                    None => Vec::new(), // nothing after the CIS: no fields
                };
                (locs, true)
            }
        }
    }

    /// The first leaf of `t_ty` that follows the common initial sequence of
    /// length `n` inside the substructure at `delta` (of record `dr`); if
    /// the CIS covers all of `dr`, the first leaf after the whole `delta`
    /// subtree.
    fn first_leaf_after_cis(
        &self,
        prog: &Program,
        t_ty: TypeId,
        delta: &FieldPath,
        dr: structcast_types::RecordId,
        n: usize,
    ) -> Option<FieldPath> {
        let nfields = prog.types.record(dr).fields.len();
        if n < nfields {
            // First leaf under δ whose top-level field index is n.
            let dty = type_of_path(&prog.types, t_ty, delta)?;
            let dty_s = prog.types.strip_arrays(dty);
            let first_local = leaves(&prog.types, dty_s)
                .into_iter()
                .find(|l| l.steps().first().is_some_and(|&h| h as usize >= n))?;
            Some(delta.concat(&first_local))
        } else {
            // First leaf of t after the entire δ subtree.
            let all = leaves(&prog.types, t_ty);
            let last_in_delta = all.iter().rposition(|l| l.starts_with(delta))?;
            all.get(last_in_delta + 1).cloned()
        }
    }

    fn resolve_impl(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
    ) -> (Vec<(Loc, Loc)>, bool) {
        let mut pairs = Vec::new();
        let mut mismatch = false;
        for delta in fields_of(prog, tau) {
            let (gs, m1) = self.lookup_impl(prog, tau, &delta, dst);
            let (hs, m2) = self.lookup_impl(prog, tau, &delta, src);
            mismatch |= m1 || m2;
            for g in &gs {
                for h in &hs {
                    let pair = (g.clone(), h.clone());
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
            }
        }
        (pairs, mismatch)
    }
}

impl FieldModel for CommonInitialSeqModel {
    fn kind(&self) -> ModelKind {
        ModelKind::CommonInitialSeq
    }

    fn normalize(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Loc {
        let ty = prog.type_of(obj);
        Loc::path(obj, normalize_path(&prog.types, ty, path))
    }

    fn lookup(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
        stats: &mut ModelStats,
    ) -> Vec<Loc> {
        stats.lookup_calls += 1;
        let structy = involves_structs(prog, tau, &[target]);
        if structy {
            stats.lookup_struct += 1;
        }
        let (locs, mismatch) = self.lookup_impl(prog, tau, alpha, target);
        if structy && mismatch {
            stats.lookup_mismatch += 1;
        }
        locs
    }

    fn resolve(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
        _facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        stats.resolve_calls += 1;
        let structy = involves_structs(prog, tau, &[dst, src]);
        if structy {
            stats.resolve_struct += 1;
        }
        let (pairs, mismatch) = self.resolve_impl(prog, dst, src, tau);
        if structy && mismatch {
            stats.resolve_mismatch += 1;
        }
        pairs
    }

    fn resolve_all(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        _facts: &FactStore,
        _stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        let d_ty = prog.type_of(dst.obj);
        let s_ty = prog.type_of(src.obj);
        let ds = following_leaves(&prog.types, d_ty, path_of(dst));
        let ss = following_leaves(&prog.types, s_ty, path_of(src));
        let mut out = Vec::with_capacity(ds.len() * ss.len());
        for d in &ds {
            for s in &ss {
                out.push((
                    Loc::path(dst.obj, d.clone()),
                    Loc::path(src.obj, s.clone()),
                ));
            }
        }
        out
    }

    fn spread(&self, prog: &Program, target: &Loc, pointee: Option<TypeId>) -> Vec<Loc> {
        super::util::path_spread(prog, target, pointee, self.arith_stride, self.compat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ir::lower_source;

    /// The paper's §4.3.3 example program.
    fn example() -> Program {
        lower_source(
            "struct S { int s1; int s2; int s3; } *p;\n\
             struct T { int t1; int t2; char t3; int t4; } t;\n\
             int *x, *y;\n\
             void f(void) {\n\
               p = (struct S *)&t;\n\
               x = &(*p).s2;\n\
               y = &(*p).s3;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn paper_433_lookup_within_cis() {
        let prog = example();
        let m = CommonInitialSeqModel::new(CompatMode::Structural);
        let t = prog.object_by_name("t").unwrap();
        let s_ty = prog
            .pointee_of(prog.object_by_name("p").unwrap())
            .unwrap();
        // normalize(t) = t.t1 (leaf path [0]); s2 = field index 1, within
        // the 2-field CIS → { t.t2 }.
        let tgt = m.normalize(&prog, t, &FieldPath::empty());
        assert_eq!(tgt, Loc::path(t, FieldPath::from_steps([0u32])));
        let (locs, mismatch) =
            m.lookup_impl(&prog, s_ty, &FieldPath::from_steps([1u32]), &tgt);
        assert!(mismatch, "S and T are not fully compatible");
        assert_eq!(locs, vec![Loc::path(t, FieldPath::from_steps([1u32]))]);
    }

    #[test]
    fn paper_433_lookup_beyond_cis() {
        let prog = example();
        let m = CommonInitialSeqModel::new(CompatMode::Structural);
        let t = prog.object_by_name("t").unwrap();
        let s_ty = prog
            .pointee_of(prog.object_by_name("p").unwrap())
            .unwrap();
        let tgt = m.normalize(&prog, t, &FieldPath::empty());
        // s3 = field index 2, beyond the CIS → { t.t3, t.t4 }.
        let (locs, mismatch) =
            m.lookup_impl(&prog, s_ty, &FieldPath::from_steps([2u32]), &tgt);
        assert!(mismatch);
        assert_eq!(
            locs,
            vec![
                Loc::path(t, FieldPath::from_steps([2u32])),
                Loc::path(t, FieldPath::from_steps([3u32])),
            ]
        );
    }

    #[test]
    fn cis_more_precise_than_collapse_on_cast() {
        // The §4.3.3 "within CIS" case: CoC collapses (mismatched type),
        // CIS keeps the single field.
        let prog = example();
        let cis = CommonInitialSeqModel::new(CompatMode::Structural);
        let coc = super::super::CollapseOnCastModel::new(CompatMode::Structural);
        let t = prog.object_by_name("t").unwrap();
        let s_ty = prog
            .pointee_of(prog.object_by_name("p").unwrap())
            .unwrap();
        let tgt = Loc::path(t, FieldPath::from_steps([0u32]));
        let alpha = FieldPath::from_steps([1u32]);
        let (cis_locs, _) = cis.lookup_impl(&prog, s_ty, &alpha, &tgt);
        let (coc_locs, _) = coc.lookup_impl(&prog, s_ty, &alpha, &tgt);
        assert_eq!(cis_locs.len(), 1);
        assert!(coc_locs.len() > cis_locs.len());
    }

    #[test]
    fn identical_types_are_exact_with_no_mismatch() {
        let prog = lower_source(
            "struct S { int *a; int *b; } s, *p; void f(void) { p = &s; }",
        )
        .unwrap();
        let m = CommonInitialSeqModel::new(CompatMode::Structural);
        let s = prog.object_by_name("s").unwrap();
        let s_ty = prog.type_of(s);
        let tgt = m.normalize(&prog, s, &FieldPath::empty());
        let (locs, mismatch) =
            m.lookup_impl(&prog, s_ty, &FieldPath::from_steps([1u32]), &tgt);
        assert!(!mismatch);
        assert_eq!(locs, vec![Loc::path(s, FieldPath::from_steps([1u32]))]);
    }

    #[test]
    fn cis_covering_whole_record_continues_in_outer() {
        // struct Small { int a; }; struct Big { struct Small s; int b; };
        // A Small* pointing at big.s, accessing beyond field a: continues
        // at big.b.
        let prog = lower_source(
            "struct Small { int a; int z; } *p;\n\
             struct Wrap { int a; } w;\n\
             struct Big { struct Wrap s; int b; } big;",
        )
        .unwrap();
        let m = CommonInitialSeqModel::new(CompatMode::Structural);
        let big = prog.object_by_name("big").unwrap();
        let small_ty = prog
            .pointee_of(prog.object_by_name("p").unwrap())
            .unwrap();
        // target = normalize(big.s) = big.s.a = [0,0]; candidates include
        // big.s (struct Wrap), CIS(Small, Wrap) = 1 (int a).
        let tgt = Loc::path(big, FieldPath::from_steps([0u32, 0]));
        // Field z (index 1) is beyond Wrap's single field: the first leaf
        // after the whole .0 subtree is big.b ([1]).
        let (locs, mismatch) =
            m.lookup_impl(&prog, small_ty, &FieldPath::from_steps([1u32]), &tgt);
        assert!(mismatch);
        assert_eq!(locs, vec![Loc::path(big, FieldPath::from_steps([1u32]))]);
    }
}
