//! The "Collapse on Cast" instance (paper §4.3.2): fields are kept intact
//! unless an object is accessed as a type different from its declared type;
//! then the accessed position and everything after it are lumped together.

use super::util::{fields_of, involves_structs, path_of};
use crate::facts::FactStore;
use crate::loc::Loc;
use crate::model::{FieldModel, ModelKind, ModelStats};
use structcast_ir::{ObjId, Program};
use structcast_types::{
    compatible, enclosing_candidates, following_leaves, normalize_path, type_of_path, CompatMode,
    FieldPath, TypeId,
};

/// The "Collapse on Cast" model.
#[derive(Debug, Clone)]
pub struct CollapseOnCastModel {
    compat: CompatMode,
    arith_stride: bool,
}

impl CollapseOnCastModel {
    /// Creates the model with the given type-compatibility mode.
    pub fn new(compat: CompatMode) -> Self {
        CollapseOnCastModel {
            compat,
            arith_stride: false,
        }
    }

    /// Enables the Wilson–Lam stride refinement for pointer arithmetic.
    pub fn with_stride(mut self, on: bool) -> Self {
        self.arith_stride = on;
        self
    }

    /// Core of the paper's `lookup` (§4.3.2). Returns the result locations
    /// and whether the types failed to match (casting was involved).
    ///
    /// `β̂` (the target's path) is normalized; candidates `δ` with
    /// `normalize(t.δ) = t.β̂` are exactly the first-field prefixes of `β̂`.
    pub(crate) fn lookup_impl(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
    ) -> (Vec<Loc>, bool) {
        let t_ty = prog.type_of(target.obj);
        let beta = path_of(target);
        for delta in enclosing_candidates(&prog.types, t_ty, beta) {
            let Some(dty) = type_of_path(&prog.types, t_ty, &delta) else {
                continue;
            };
            if self.type_matches(prog, dty, tau) {
                // t.δ has an α field; return it, normalized.
                let full = delta.concat(alpha);
                let norm = normalize_path(&prog.types, t_ty, &full);
                return (vec![Loc::path(target.obj, norm)], false);
            }
        }
        // Type mismatch: all fields of t from β onward (Complication 1 means
        // the α field may lie beyond the bounds of the substructure at β).
        let locs = following_leaves(&prog.types, t_ty, beta)
            .into_iter()
            .map(|l| Loc::path(target.obj, l))
            .collect();
        (locs, true)
    }

    fn type_matches(&self, prog: &Program, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        let sa = prog.types.strip_arrays(a);
        let sb = prog.types.strip_arrays(b);
        compatible(&prog.types, sa, sb, self.compat)
            // A union location counts as matched when the access type is
            // any member's type (accessing a union via a member is not a
            // cast; all members share the collapsed location).
            || super::util::union_member_matches(prog, sa, sb, self.compat)
    }

    fn resolve_impl(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
    ) -> (Vec<(Loc, Loc)>, bool) {
        let mut pairs = Vec::new();
        let mut mismatch = false;
        for delta in fields_of(prog, tau) {
            let (gs, m1) = self.lookup_impl(prog, tau, &delta, dst);
            let (hs, m2) = self.lookup_impl(prog, tau, &delta, src);
            mismatch |= m1 || m2;
            for g in &gs {
                for h in &hs {
                    let pair = (g.clone(), h.clone());
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
            }
        }
        (pairs, mismatch)
    }
}

impl FieldModel for CollapseOnCastModel {
    fn kind(&self) -> ModelKind {
        ModelKind::CollapseOnCast
    }

    fn normalize(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Loc {
        let ty = prog.type_of(obj);
        Loc::path(obj, normalize_path(&prog.types, ty, path))
    }

    fn lookup(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
        stats: &mut ModelStats,
    ) -> Vec<Loc> {
        stats.lookup_calls += 1;
        let structy = involves_structs(prog, tau, &[target]);
        if structy {
            stats.lookup_struct += 1;
        }
        let (locs, mismatch) = self.lookup_impl(prog, tau, alpha, target);
        if structy && mismatch {
            stats.lookup_mismatch += 1;
        }
        locs
    }

    fn resolve(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
        _facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        stats.resolve_calls += 1;
        let structy = involves_structs(prog, tau, &[dst, src]);
        if structy {
            stats.resolve_struct += 1;
        }
        let (pairs, mismatch) = self.resolve_impl(prog, dst, src, tau);
        if structy && mismatch {
            stats.resolve_mismatch += 1;
        }
        pairs
    }

    fn resolve_all(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        _facts: &FactStore,
        _stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)> {
        // Unknown-length bulk copy: cross product of everything from dst
        // onward with everything from src onward (safe over-approximation).
        let d_ty = prog.type_of(dst.obj);
        let s_ty = prog.type_of(src.obj);
        let ds = following_leaves(&prog.types, d_ty, path_of(dst));
        let ss = following_leaves(&prog.types, s_ty, path_of(src));
        let mut out = Vec::with_capacity(ds.len() * ss.len());
        for d in &ds {
            for s in &ss {
                out.push((
                    Loc::path(dst.obj, d.clone()),
                    Loc::path(src.obj, s.clone()),
                ));
            }
        }
        out
    }

    fn spread(&self, prog: &Program, target: &Loc, pointee: Option<TypeId>) -> Vec<Loc> {
        super::util::path_spread(prog, target, pointee, self.arith_stride, self.compat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ir::lower_source;

    /// The paper's §4.3.2 example program.
    fn example() -> Program {
        lower_source(
            "struct S { int s1; char s2; } *p, *q;\n\
             struct T { struct S t1; int t2; char t3; } t;\n\
             char *x, *y;\n\
             void f(void) {\n\
               p = &t.t1;\n\
               x = &(*p).s2;\n\
               q = (struct S *)&t.t2;\n\
               y = &(*q).s2;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn paper_432_lookup_matching_type() {
        let prog = example();
        let m = CollapseOnCastModel::new(CompatMode::Structural);
        let t = prog.object_by_name("t").unwrap();
        // normalize(t.t1) = t.t1.s1
        let norm = m.normalize(&prog, t, &FieldPath::from_steps([0u32]));
        assert_eq!(norm, Loc::path(t, FieldPath::from_steps([0u32, 0])));
        // lookup(struct S, s2, t.t1.s1) = { t.t1.s2 }
        let s_ty = {
            let p = prog.object_by_name("p").unwrap();
            prog.pointee_of(p).unwrap()
        };
        let (locs, mismatch) =
            m.lookup_impl(&prog, s_ty, &FieldPath::from_steps([1u32]), &norm);
        assert!(!mismatch);
        assert_eq!(locs, vec![Loc::path(t, FieldPath::from_steps([0u32, 1]))]);
    }

    #[test]
    fn paper_432_lookup_mismatched_type() {
        let prog = example();
        let m = CollapseOnCastModel::new(CompatMode::Structural);
        let t = prog.object_by_name("t").unwrap();
        // lookup(struct S, s2, t.t2): t2 is not a first field → all fields
        // of t from t2 on: { t.t2, t.t3 }.
        let s_ty = {
            let p = prog.object_by_name("p").unwrap();
            prog.pointee_of(p).unwrap()
        };
        let tgt = Loc::path(t, FieldPath::from_steps([1u32]));
        let (locs, mismatch) =
            m.lookup_impl(&prog, s_ty, &FieldPath::from_steps([1u32]), &tgt);
        assert!(mismatch);
        assert_eq!(
            locs,
            vec![
                Loc::path(t, FieldPath::from_steps([1u32])),
                Loc::path(t, FieldPath::from_steps([2u32])),
            ]
        );
    }

    #[test]
    fn resolve_same_types_pairs_fields() {
        let prog = lower_source("struct S { int *a; int *b; } s, t;").unwrap();
        let m = CollapseOnCastModel::new(CompatMode::Structural);
        let s = prog.object_by_name("s").unwrap();
        let t = prog.object_by_name("t").unwrap();
        let sty = prog.type_of(s);
        let (pairs, mismatch) = m.resolve_impl(
            &prog,
            &m.normalize(&prog, s, &FieldPath::empty()),
            &m.normalize(&prog, t, &FieldPath::empty()),
            sty,
        );
        assert!(!mismatch);
        // Field-wise: (s.a, t.a), (s.b, t.b).
        assert_eq!(pairs.len(), 2);
        assert_eq!(
            pairs[0],
            (
                Loc::path(s, FieldPath::from_steps([0u32])),
                Loc::path(t, FieldPath::from_steps([0u32]))
            )
        );
    }

    #[test]
    fn resolve_mismatched_types_cross_products() {
        // s = (struct S)u where u: struct U with incompatible layout.
        let prog = lower_source(
            "struct S { int *a; int *b; } s;\n\
             struct U { char c; int *u1; } u;",
        )
        .unwrap();
        let m = CollapseOnCastModel::new(CompatMode::Structural);
        let s = prog.object_by_name("s").unwrap();
        let u = prog.object_by_name("u").unwrap();
        let sty = prog.type_of(s);
        let (pairs, mismatch) = m.resolve_impl(
            &prog,
            &m.normalize(&prog, s, &FieldPath::empty()),
            &m.normalize(&prog, u, &FieldPath::empty()),
            sty,
        );
        assert!(mismatch);
        // Dst side matches exactly (s is a struct S) → 2 dst fields;
        // src side mismatches → both fields of u each time → 4 pairs.
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn spread_covers_all_leaves() {
        let prog = lower_source("struct S { int *a; struct Inner { int *x; } i; } s;").unwrap();
        let m = CollapseOnCastModel::new(CompatMode::Structural);
        let s = prog.object_by_name("s").unwrap();
        assert_eq!(m.spread(&prog, &Loc::path(s, FieldPath::empty()), None).len(), 2);
    }
}
