//! The four instances of the framework (paper §4.2.2 and §4.3).

mod cast_collapse;
mod cis;
mod collapse;
mod offsets;

pub use cast_collapse::CollapseOnCastModel;
pub use cis::CommonInitialSeqModel;
pub use collapse::CollapseAlwaysModel;
pub use offsets::OffsetsModel;

use crate::model::{FieldModel, ModelKind};
use structcast_types::{CompatMode, Layout};

/// Options shared by all model constructors.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Layout strategy (Offsets instance only).
    pub layout: Layout,
    /// Type-compatibility mode (portable instances).
    pub compat: CompatMode,
    /// Wilson–Lam stride refinement for pointer arithmetic (related work
    /// §6): confine arithmetic spreads to positions reachable in multiples
    /// of the pointer's pointee size.
    pub arith_stride: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            layout: Layout::ilp32(),
            compat: CompatMode::Structural,
            arith_stride: false,
        }
    }
}

/// Builds the model for `kind` with the given layout (used by the Offsets
/// instance only) and compatibility mode (used by the portable instances).
pub fn make_model(kind: ModelKind, layout: Layout, compat: CompatMode) -> Box<dyn FieldModel> {
    make_model_with(
        kind,
        &ModelOptions {
            layout,
            compat,
            arith_stride: false,
        },
    )
}

/// Builds the model for `kind` with full options.
pub fn make_model_with(kind: ModelKind, opts: &ModelOptions) -> Box<dyn FieldModel> {
    match kind {
        ModelKind::CollapseAlways => Box::new(CollapseAlwaysModel::new()),
        ModelKind::CollapseOnCast => {
            Box::new(CollapseOnCastModel::new(opts.compat).with_stride(opts.arith_stride))
        }
        ModelKind::CommonInitialSeq => {
            Box::new(CommonInitialSeqModel::new(opts.compat).with_stride(opts.arith_stride))
        }
        ModelKind::Offsets => {
            Box::new(OffsetsModel::new(opts.layout.clone()).with_stride(opts.arith_stride))
        }
    }
}

pub(crate) mod util {
    //! Helpers shared by the path-based instances.

    use crate::loc::{FieldRep, Loc};
    use structcast_ir::Program;
    use structcast_types::{FieldPath, TypeId, TypeKind};

    /// The path component of a path-model location.
    ///
    /// # Panics
    ///
    /// Panics if the location is not path-based (solver invariant: a model
    /// only ever sees locations it produced itself).
    pub fn path_of(loc: &Loc) -> &FieldPath {
        match &loc.field {
            FieldRep::Path(p) => p,
            other => panic!("path model received non-path location {other:?}"),
        }
    }

    /// Leaf field paths of `tau` if it is a complete record (after array
    /// stripping); otherwise the single empty path — this makes `resolve`
    /// handle scalar copy types (`*p = q` with `p: int**`) uniformly.
    pub fn fields_of(prog: &Program, tau: TypeId) -> Vec<FieldPath> {
        let stripped = prog.types.strip_arrays(tau);
        match prog.types.kind(stripped) {
            TypeKind::Record(rid) => {
                let rec = prog.types.record(*rid);
                if rec.complete && !rec.fields.is_empty() && !rec.is_union {
                    return structcast_types::leaves(&prog.types, stripped);
                }
                vec![FieldPath::empty()]
            }
            _ => vec![FieldPath::empty()],
        }
    }

    /// True if `ty` is (after array stripping) a struct or union.
    pub fn is_structy(prog: &Program, ty: TypeId) -> bool {
        prog.types.is_record_like(ty)
    }

    /// Whether a lookup/resolve call "involves structures" for Figure 3:
    /// the declared type or the target object's type is a record.
    pub fn involves_structs(prog: &Program, tau: TypeId, objs: &[&Loc]) -> bool {
        if is_structy(prog, tau) {
            return true;
        }
        objs.iter()
            .any(|l| is_structy(prog, prog.type_of(l.obj)))
    }

    /// A union location is accessed "at its own type" whenever the access
    /// type matches the union itself **or any of its members** — reading or
    /// writing a union through a member-typed lvalue is the normal,
    /// cast-free case, and all members share one collapsed location.
    pub fn union_member_matches(
        prog: &Program,
        union_ty: TypeId,
        tau: TypeId,
        compat: structcast_types::CompatMode,
    ) -> bool {
        let stripped = prog.types.strip_arrays(union_ty);
        let Some(rid) = prog.types.as_record(stripped) else {
            return false;
        };
        let rec = prog.types.record(rid);
        if !rec.is_union {
            return false;
        }
        let tau_s = prog.types.strip_arrays(tau);
        rec.fields.iter().any(|f| {
            let fs = prog.types.strip_arrays(f.ty);
            fs == tau_s || structcast_types::compatible(&prog.types, fs, tau_s, compat)
        })
    }

    /// Pointer-arithmetic spread for the path-based instances.
    ///
    /// Without the stride refinement: every leaf of the outermost object
    /// (the paper's §4.2.1 rule under Assumption 1). With it: only the
    /// leaves whose type is compatible with the pointer's pointee — a path-
    /// level approximation of Wilson–Lam's "multiples of the element size"
    /// rule (a `T*` stepped by ±k lands on `T`-shaped positions). If no
    /// leaf matches (e.g. a `char*` walking a struct), all leaves are used.
    pub fn path_spread(
        prog: &Program,
        target: &Loc,
        pointee: Option<TypeId>,
        stride: bool,
        compat: structcast_types::CompatMode,
    ) -> Vec<Loc> {
        let ty = prog.type_of(target.obj);
        let all: Vec<Loc> = structcast_types::leaves(&prog.types, ty)
            .into_iter()
            .map(|l| Loc::path(target.obj, l))
            .collect();
        let (Some(pointee), true) = (pointee, stride) else {
            return all;
        };
        let p = prog.types.strip_arrays(pointee);
        let matching: Vec<Loc> = all
            .iter()
            .filter(|l| {
                if let FieldRep::Path(path) = &l.field {
                    if let Some(lt) = structcast_types::type_of_path(&prog.types, ty, path) {
                        let lt = prog.types.strip_arrays(lt);
                        return lt == p || structcast_types::compatible(&prog.types, lt, p, compat);
                    }
                }
                false
            })
            .cloned()
            .collect();
        if matching.is_empty() {
            all
        } else {
            matching
        }
    }
}
