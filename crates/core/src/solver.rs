//! The worklist fixpoint solver implementing the inference rules of the
//! paper's Figure 2, parameterized by a [`FieldModel`].
//!
//! Like the paper's implementation (§5), the solver treats the program as a
//! graph with one node per abstract object and one edge per normalized
//! assignment, then applies the rules to add points-to edges until nothing
//! changes. Statements *subscribe* to the objects whose facts they consume
//! (object granularity), so a new fact only re-fires the statements that
//! might derive more from it.
//!
//! The solver is the **third stage** of the pipeline: it consumes the
//! model-independent [`ConstraintSet`] produced by `structcast-constraints`
//! (stage 1, one IR walk per program) after *specializing* each constraint
//! against the chosen [`FieldModel`] (stage 2: operands normalized through
//! the instance's `normalize` and interned). The solver itself never walks
//! the IR.
//!
//! The data plane works on dense interned [`LocId`]s with **difference
//! propagation**: constraints are specialized once into [`CStmt`]s holding
//! pre-normalized operand ids, and each firing consumes only the *delta*
//! of facts added since its last visit (per-pair copy cursors for Rules
//! 3/4/5 and `CopyAll`, per-watched-location scan cursors for Rule 2,
//! `PtrArith`, and indirect-call discovery). Re-firing a statement against
//! an unchanged points-to set is a no-op that touches no `Loc` at all.
//!
//! Indirect calls are resolved inside the same fixpoint: when the points-to
//! set of a call's function pointer grows a function object, parameter and
//! return bindings are synthesized as fresh `Copy` statements (monotone, so
//! the fixpoint remains well-defined).

use crate::budget::{Budget, SolveError, TIME_CHECK_INTERVAL};
use crate::facts::FactStore;
use crate::loc::{Loc, LocId};
use crate::model::{FieldModel, ModelStats};
use std::cell::Cell;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use structcast_constraints::{Constraint, ConstraintSet};
use structcast_ir::{FuncId, ObjId, Program};
use structcast_types::{FieldPath, TypeId};

mod par;

thread_local! {
    /// Fixpoint runs performed on this thread (see [`solves_on_thread`]).
    static SOLVES: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`Solver::run`] fixpoints performed **on the current thread**
/// since it started.
///
/// The counterpart of `structcast_constraints::compiles_on_thread` for
/// stage 3: tests (and the query server's cache tests) assert that a
/// memoized result is served without re-running the solver by taking the
/// counter's delta around the code under test. Thread-local on purpose, so
/// parallel test threads don't race each other's counts.
pub fn solves_on_thread() -> u64 {
    SOLVES.with(|c| c.get())
}

/// Credits `n` fixpoint runs to the **current** thread's counter.
///
/// The parallel solving layer runs fixpoints on short-lived worker threads
/// whose thread-local counters die with them; it measures each worker's
/// delta and credits the sum back to the thread that requested the work, so
/// callers observing [`solves_on_thread`] see every solve they caused.
pub(crate) fn credit_solves(n: u64) {
    SOLVES.with(|c| c.set(c.get() + n));
}

/// How pointer arithmetic is modeled (paper §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArithMode {
    /// Assumption 1 (the paper's choice): the result may point to any
    /// normalized position of the outermost object each target lies in.
    #[default]
    Spread,
    /// The pessimistic alternative the paper sketches: the result is a
    /// potentially *corrupted* pointer, recorded in the `Unknown` set and
    /// given no targets — useful for flagging potential memory misuse.
    FlagUnknown,
}

/// A constraint specialized against the model: operand locations are
/// normalized and interned once at construction, so a firing performs no
/// normalization, no type-table scans, and no `Stmt` clones.
enum CStmt {
    /// Rule 1: `s = (τ)&t.β`.
    AddrOf { d: LocId, t: LocId },
    /// Rule 2: `s = (τ)&(*p).α`.
    AddrField {
        d: LocId,
        p: LocId,
        tau_p: TypeId,
        path: FieldPath,
    },
    /// Rule 3: `s = (τ)t.β`.
    Copy { d: LocId, s: LocId, tau: TypeId },
    /// Rule 4: `s = (τ)*q`.
    Load { d: LocId, p: LocId, tau: TypeId },
    /// Rule 5: `*p = (τ_p)t`.
    Store { p: LocId, s: LocId, tau_p: TypeId },
    /// Extension: pointer arithmetic.
    PtrArith {
        d: LocId,
        s: LocId,
        pointee: Option<TypeId>,
    },
    /// Extension: memcpy-style bulk copy.
    CopyAll { dp: LocId, sp: LocId },
    /// Direct call: bindings synthesized on the first (only) firing.
    CallDirect {
        fid: FuncId,
        args: Vec<ObjId>,
        ret: Option<ObjId>,
    },
    /// Indirect call: callees discovered from the function pointer's
    /// points-to delta.
    CallIndirect {
        p: LocId,
        args: Vec<ObjId>,
        ret: Option<ObjId>,
    },
}

/// The mutable engine state, split from the compiled statement list so
/// firing can borrow a `CStmt` while mutating everything else.
struct Engine<'p> {
    prog: &'p Program,
    model: Box<dyn FieldModel>,
    facts: FactStore,
    stats: ModelStats,
    /// Object (by dense id) → statements to re-fire when a fact rooted in
    /// it changes.
    subs: Vec<Vec<u32>>,
    /// Subscription dedup: `(stmt, obj)` pairs already registered.
    subbed: HashSet<(u32, u32)>,
    queued: Vec<bool>,
    worklist: VecDeque<u32>,
    /// Indirect-call bindings already synthesized.
    bound_calls: HashSet<(usize, FuncId)>,
    /// Statement evaluations performed (a work measure).
    iterations: u64,
    /// How pointer arithmetic is treated.
    arith_mode: ArithMode,
    /// Locations flagged as possibly holding corrupted pointers
    /// ([`ArithMode::FlagUnknown`] only).
    unknown: HashSet<LocId>,
    /// Per-`(stmt, watched)` read position into `pts(watched)` for the
    /// scan-style rules whose per-target work is independent of other
    /// facts (Rule 2, `PtrArith` spread, callee discovery).
    scan_cursors: HashMap<(u32, LocId), u32>,
    /// Per-`(stmt, dst, src)` copy position into `pts(src)`. Keyed by the
    /// full pair because one source location can feed different
    /// destinations discovered at different times (e.g. overlapping
    /// Offsets ranges), each needing its own replay point.
    pair_cursors: HashMap<(u32, LocId, LocId), u32>,
    /// `FieldModel::normalize` memo per `(obj, path)`.
    norm_cache: HashMap<ObjId, HashMap<FieldPath, LocId>>,
    /// Scratch for draining a delta while inserting facts.
    delta_buf: Vec<LocId>,
}

/// The solver state for one analysis run.
pub struct Solver<'p> {
    en: Engine<'p>,
    /// Compiled program statements plus bindings synthesized for indirect
    /// calls.
    cstmts: Vec<CStmt>,
}

/// Pre-solved state carried across an edit by the incremental layer:
/// the facts that survived retraction, the surviving corrupted-pointer
/// flags, and the statement region whose derivations were discarded.
pub(crate) struct SeedState {
    /// Surviving facts, already normalized for the target model (they
    /// were produced by an identical model over the previous program and
    /// translated object-by-object).
    pub facts: FactStore,
    /// Surviving [`ArithMode::FlagUnknown`] locations.
    pub unknown: Vec<Loc>,
    /// Statement indices to re-run (the dirty region).
    pub queue: Vec<u32>,
    /// Call edges carried over for calls *outside* the region: each
    /// `(stmt index, callee)` is pre-bound at construction — the binding
    /// copies are synthesized (and enqueued, which is idempotent) so
    /// later growth on their sources re-fires them, and `finish` reports
    /// the edge without the call constraint ever firing.
    pub bound: Vec<(u32, FuncId)>,
}

/// What a finished run produced.
pub struct SolverOutput {
    /// All points-to facts.
    pub facts: FactStore,
    /// Figure 3 instrumentation.
    pub stats: ModelStats,
    /// Statement evaluations performed.
    pub iterations: u64,
    /// The model, retained for normalization/weighting in queries.
    pub model: Box<dyn FieldModel>,
    /// Number of indirect-call (callee, site) bindings discovered.
    pub resolved_indirect_calls: usize,
    /// Locations flagged as possibly-corrupted pointers
    /// ([`ArithMode::FlagUnknown`] runs only; empty otherwise).
    pub unknown: BTreeSet<Loc>,
    /// Resolved (call-site statement, callee) pairs for call sites in the
    /// original program (drives call-graph clients like MOD/REF).
    pub call_edges: Vec<(structcast_ir::StmtId, FuncId)>,
}

impl<'p> Engine<'p> {
    /// Memoized `model.normalize(obj, path)`, interned.
    fn norm_id(&mut self, obj: ObjId, path: &FieldPath) -> LocId {
        if let Some(&id) = self.norm_cache.get(&obj).and_then(|m| m.get(path)) {
            return id;
        }
        let loc = self.model.normalize(self.prog, obj, path);
        let id = self.facts.intern(loc);
        self.norm_cache
            .entry(obj)
            .or_default()
            .insert(path.clone(), id);
        id
    }

    /// Stage-2 **model specialization**: maps one model-independent
    /// constraint to its pre-normalized, interned form. Types (`τ`,
    /// `τ_p`, arithmetic pointee) were already resolved by the constraint
    /// compiler, so this only runs the instance's `normalize` (memoized)
    /// and interns the results — no IR or type-table access.
    fn specialize(&mut self, cset: &ConstraintSet, c: &Constraint) -> CStmt {
        let empty = FieldPath::empty();
        match c {
            Constraint::AddrOf { dst, src } => CStmt::AddrOf {
                d: self.norm_id(*dst, &empty),
                t: self.norm_id(src.obj, cset.path(src.path)),
            },
            Constraint::AddrField { dst, ptr, tau_p, path } => CStmt::AddrField {
                d: self.norm_id(*dst, &empty),
                p: self.norm_id(*ptr, &empty),
                tau_p: *tau_p,
                path: cset.path(*path).clone(),
            },
            Constraint::Copy { dst, src, tau } => CStmt::Copy {
                d: self.norm_id(*dst, &empty),
                s: self.norm_id(src.obj, cset.path(src.path)),
                tau: *tau,
            },
            Constraint::Load { dst, ptr, tau } => CStmt::Load {
                d: self.norm_id(*dst, &empty),
                p: self.norm_id(*ptr, &empty),
                tau: *tau,
            },
            Constraint::Store { ptr, src, tau_p } => CStmt::Store {
                p: self.norm_id(*ptr, &empty),
                s: self.norm_id(*src, &empty),
                tau_p: *tau_p,
            },
            Constraint::PtrArith { dst, src, pointee } => CStmt::PtrArith {
                d: self.norm_id(*dst, &empty),
                s: self.norm_id(*src, &empty),
                pointee: *pointee,
            },
            Constraint::CopyAll { dst_ptr, src_ptr } => CStmt::CopyAll {
                dp: self.norm_id(*dst_ptr, &empty),
                sp: self.norm_id(*src_ptr, &empty),
            },
            Constraint::CallDirect { fid, args, ret } => CStmt::CallDirect {
                fid: *fid,
                args: args.clone(),
                ret: *ret,
            },
            Constraint::CallIndirect { ptr, args, ret } => CStmt::CallIndirect {
                p: self.norm_id(*ptr, &empty),
                args: args.clone(),
                ret: *ret,
            },
        }
    }

    fn enqueue(&mut self, idx: u32) {
        if !self.queued[idx as usize] {
            self.queued[idx as usize] = true;
            self.worklist.push_back(idx);
        }
    }

    /// Re-fires every subscriber of `obj` (index loop: no subscriber-set
    /// copy).
    fn wake_obj(&mut self, obj: ObjId) {
        let oi = obj.0 as usize;
        if oi >= self.subs.len() {
            return;
        }
        for k in 0..self.subs[oi].len() {
            let s = self.subs[oi][k];
            if !self.queued[s as usize] {
                self.queued[s as usize] = true;
                self.worklist.push_back(s);
            }
        }
    }

    fn subscribe(&mut self, idx: u32, obj: ObjId) {
        if self.subbed.insert((idx, obj.0)) {
            let oi = obj.0 as usize;
            if oi >= self.subs.len() {
                self.subs.resize_with(oi + 1, Vec::new);
            }
            self.subs[oi].push(idx);
        }
    }

    fn add_fact_ids(&mut self, src: LocId, tgt: LocId) {
        if self.facts.insert_ids(src, tgt) {
            self.wake_obj(self.facts.obj_of(src));
        }
    }

    /// Flags a location as possibly holding a corrupted pointer.
    fn mark_unknown(&mut self, l: LocId) {
        if self.unknown.insert(l) {
            self.wake_obj(self.facts.obj_of(l));
        }
    }

    /// Reads this statement's scan cursor for `watched` and advances it to
    /// the current list length, returning the unconsumed `[cur, total)`
    /// window.
    fn take_scan_window(&mut self, idx: u32, watched: LocId) -> (usize, usize) {
        let total = self.facts.targets_len(watched);
        let cur = self
            .scan_cursors
            .insert((idx, watched), total as u32)
            .unwrap_or(0) as usize;
        (cur, total)
    }

    /// Copies the unconsumed part of `pts(src)` into `pts(dst)` (the delta
    /// since this `(stmt, dst, src)` pair last fired), and propagates the
    /// corrupted-pointer flag alongside.
    fn copy_pair(&mut self, idx: u32, dst: LocId, src: LocId) {
        let total = self.facts.targets_len(src);
        let cur = if total == 0 {
            0
        } else {
            self.pair_cursors
                .insert((idx, dst, src), total as u32)
                .unwrap_or(0) as usize
        };
        if cur < total {
            self.delta_buf.clear();
            self.delta_buf
                .extend_from_slice(self.facts.targets_from(src, cur));
            for k in 0..self.delta_buf.len() {
                let t = self.delta_buf[k];
                self.add_fact_ids(dst, t);
            }
        }
        if self.unknown.contains(&src) {
            self.mark_unknown(dst);
        }
    }

    // ----- rule firings -----

    /// Rule 2: for each *new* target of `p`, look the field up.
    fn fire_addr_field(&mut self, idx: u32, d: LocId, p: LocId, tau_p: TypeId, path: &FieldPath) {
        self.subscribe(idx, self.facts.obj_of(p));
        let (cur, total) = self.take_scan_window(idx, p);
        for k in cur..total {
            let tgt = self.facts.target_at(p, k);
            let results = self.model.lookup(
                self.prog,
                tau_p,
                path,
                self.facts.loc(tgt),
                &mut self.stats,
            );
            for r in results {
                let rid = self.facts.intern(r);
                self.add_fact_ids(d, rid);
            }
        }
    }

    /// Rule 3: a direct copy; the resolve pair set can grow (Offsets
    /// consults the store), so pairs are recomputed but copied as deltas.
    fn fire_copy(&mut self, idx: u32, d: LocId, s: LocId, tau: TypeId) {
        self.subscribe(idx, self.facts.obj_of(s));
        let pairs = self.model.resolve(
            self.prog,
            self.facts.loc(d),
            self.facts.loc(s),
            tau,
            &self.facts,
            &mut self.stats,
        );
        for (dl, sl) in pairs {
            let di = self.facts.intern(dl);
            let si = self.facts.intern(sl);
            self.copy_pair(idx, di, si);
        }
    }

    /// Rule 4: copy through each target of the dereferenced pointer.
    fn fire_load(&mut self, idx: u32, d: LocId, p: LocId, tau: TypeId) {
        self.subscribe(idx, self.facts.obj_of(p));
        let total = self.facts.targets_len(p);
        for k in 0..total {
            let tgt = self.facts.target_at(p, k);
            self.subscribe(idx, self.facts.obj_of(tgt));
            let pairs = self.model.resolve(
                self.prog,
                self.facts.loc(d),
                self.facts.loc(tgt),
                tau,
                &self.facts,
                &mut self.stats,
            );
            for (dl, sl) in pairs {
                let di = self.facts.intern(dl);
                let si = self.facts.intern(sl);
                self.copy_pair(idx, di, si);
            }
        }
    }

    /// Rule 5: copy the source into each target of the stored-through
    /// pointer.
    fn fire_store(&mut self, idx: u32, p: LocId, s: LocId, tau_p: TypeId) {
        self.subscribe(idx, self.facts.obj_of(p));
        self.subscribe(idx, self.facts.obj_of(s));
        let total = self.facts.targets_len(p);
        for k in 0..total {
            let tgt = self.facts.target_at(p, k);
            let pairs = self.model.resolve(
                self.prog,
                self.facts.loc(tgt),
                self.facts.loc(s),
                tau_p,
                &self.facts,
                &mut self.stats,
            );
            for (dl, sl) in pairs {
                let di = self.facts.intern(dl);
                let si = self.facts.intern(sl);
                self.copy_pair(idx, di, si);
            }
        }
    }

    /// Pointer arithmetic. Under Assumption 1 the result spreads over the
    /// outermost object (§4.2.1) — static per target, so only new targets
    /// are spread; in FlagUnknown mode the destination is recorded as
    /// potentially corrupted instead.
    fn fire_ptr_arith(&mut self, idx: u32, d: LocId, s: LocId, pointee: Option<TypeId>) {
        self.subscribe(idx, self.facts.obj_of(s));
        match self.arith_mode {
            ArithMode::Spread => {
                let (cur, total) = self.take_scan_window(idx, s);
                for k in cur..total {
                    let tgt = self.facts.target_at(s, k);
                    let spread = self.model.spread(self.prog, self.facts.loc(tgt), pointee);
                    for l in spread {
                        let li = self.facts.intern(l);
                        self.add_fact_ids(d, li);
                    }
                }
            }
            ArithMode::FlagUnknown => {
                self.mark_unknown(d);
            }
        }
    }

    /// memcpy-style bulk copy over the target cross product.
    fn fire_copy_all(&mut self, idx: u32, dp: LocId, sp: LocId) {
        self.subscribe(idx, self.facts.obj_of(dp));
        self.subscribe(idx, self.facts.obj_of(sp));
        let dn = self.facts.targets_len(dp);
        let sn = self.facts.targets_len(sp);
        for i in 0..dn {
            let dt = self.facts.target_at(dp, i);
            for j in 0..sn {
                let st = self.facts.target_at(sp, j);
                self.subscribe(idx, self.facts.obj_of(st));
                let pairs = self.model.resolve_all(
                    self.prog,
                    self.facts.loc(dt),
                    self.facts.loc(st),
                    &self.facts,
                    &mut self.stats,
                );
                for (dl, sl) in pairs {
                    let di = self.facts.intern(dl);
                    let si = self.facts.intern(sl);
                    self.copy_pair(idx, di, si);
                }
            }
        }
    }

    /// The parameter/return copy `(dst, src)` pairs a call with `args`/`ret`
    /// induces when it binds to `fid` (extra args spill into the varargs
    /// slot; the return flows out of the callee's return slot).
    fn call_bindings(&self, fid: FuncId, args: &[ObjId], ret: Option<ObjId>) -> Vec<(ObjId, ObjId)> {
        let f = self.prog.function(fid);
        let mut bindings: Vec<(ObjId, ObjId)> = Vec::new();
        for (i, &arg) in args.iter().enumerate() {
            if let Some(&param) = f.params.get(i) {
                bindings.push((param, arg));
            } else if let Some(va) = f.varargs {
                bindings.push((va, arg));
            }
        }
        if let (Some(r), Some(rs)) = (ret, f.ret_slot) {
            bindings.push((r, rs));
        }
        bindings
    }

    /// Function objects newly appearing in the call's function-pointer
    /// points-to set.
    fn scan_new_callees(&mut self, idx: u32, p: LocId) -> Vec<FuncId> {
        self.subscribe(idx, self.facts.obj_of(p));
        let (cur, total) = self.take_scan_window(idx, p);
        let mut out = Vec::new();
        for k in cur..total {
            let tgt = self.facts.target_at(p, k);
            if let Some(fid) = self.prog.as_function(self.facts.obj_of(tgt)) {
                out.push(fid);
            }
        }
        out
    }
}

impl<'p> Solver<'p> {
    /// Creates a solver over `prog` with the given framework instance,
    /// compiling a fresh [`ConstraintSet`] internally.
    ///
    /// One-shot convenience: a multi-model run should compile the set once
    /// (via `AnalysisSession` or [`ConstraintSet::compile`]) and call
    /// [`Solver::from_constraints`] per instance instead of paying the IR
    /// walk each time.
    pub fn new(prog: &'p Program, model: Box<dyn FieldModel>) -> Self {
        let cset = ConstraintSet::compile(prog);
        Solver::from_constraints(prog, &cset, model)
    }

    /// Creates a solver from an already-compiled constraint set (stage 2 of
    /// the pipeline): every constraint is specialized against `model` —
    /// operands normalized (memoized per `(obj, path)`) and interned — so
    /// firing performs no normalization and no type-table scans. The set is
    /// not retained; it can be reused for further models.
    pub fn from_constraints(
        prog: &'p Program,
        cset: &ConstraintSet,
        model: Box<dyn FieldModel>,
    ) -> Self {
        let n = cset.len();
        let mut en = Engine {
            prog,
            model,
            facts: FactStore::new(),
            stats: ModelStats::default(),
            subs: vec![Vec::new(); prog.objects.len()],
            subbed: HashSet::new(),
            queued: vec![true; n],
            worklist: (0..n as u32).collect(),
            bound_calls: HashSet::new(),
            iterations: 0,
            arith_mode: ArithMode::Spread,
            unknown: HashSet::new(),
            scan_cursors: HashMap::new(),
            pair_cursors: HashMap::new(),
            norm_cache: HashMap::new(),
            delta_buf: Vec::new(),
        };
        let cstmts: Vec<CStmt> = cset.iter().map(|c| en.specialize(cset, c)).collect();
        Solver { en, cstmts }
    }

    /// Creates a solver seeded with facts surviving an edit, running only
    /// the statements in `seed.queue` plus whatever their derivations
    /// wake. Every dormant (non-queued) statement is statically
    /// subscribed to the objects it reads — including the objects behind
    /// its seeded dereference targets — so a fact growing on a *clean*
    /// object during the re-run still re-fires its consumers. Dormant
    /// statements re-fire with fresh cursors, which is redundant but
    /// idempotent (the fact store dedups edges), never wrong.
    ///
    /// The caller (the incremental layer) is responsible for the seed
    /// invariant: every seeded fact must be in the cold fixpoint (no
    /// stale facts), and for every object whose cold facts exceed its
    /// seeded facts, the missing derivations must be reachable from the
    /// queued statements under monotone closure (retracted objects'
    /// writers queued; everything else is covered by the static
    /// subscriptions). Under that invariant the run's output is
    /// byte-identical to a cold [`Solver::from_constraints`] run.
    pub(crate) fn from_constraints_seeded(
        prog: &'p Program,
        cset: &ConstraintSet,
        model: Box<dyn FieldModel>,
        seed: SeedState,
    ) -> Self {
        let n = cset.len();
        let mut queued = vec![false; n];
        let mut worklist = VecDeque::new();
        for &i in &seed.queue {
            if (i as usize) < n && !queued[i as usize] {
                queued[i as usize] = true;
                worklist.push_back(i);
            }
        }
        let mut en = Engine {
            prog,
            model,
            facts: seed.facts,
            stats: ModelStats::default(),
            subs: vec![Vec::new(); prog.objects.len()],
            subbed: HashSet::new(),
            queued,
            worklist,
            bound_calls: HashSet::new(),
            iterations: 0,
            arith_mode: ArithMode::Spread,
            unknown: HashSet::new(),
            scan_cursors: HashMap::new(),
            pair_cursors: HashMap::new(),
            norm_cache: HashMap::new(),
            delta_buf: Vec::new(),
        };
        for l in &seed.unknown {
            let id = en.facts.intern(l.clone());
            en.unknown.insert(id);
        }
        let cstmts: Vec<CStmt> = cset.iter().map(|c| en.specialize(cset, c)).collect();
        for (i, c) in cstmts.iter().enumerate() {
            let idx = i as u32;
            if en.queued[i] {
                continue;
            }
            match c {
                // Fires once with no inputs; its fact either survived
                // retraction or its destination is dirty (then the region
                // builder queued it).
                CStmt::AddrOf { .. } => {}
                CStmt::AddrField { p, .. } => en.subscribe(idx, en.facts.obj_of(*p)),
                CStmt::Copy { s, .. } => en.subscribe(idx, en.facts.obj_of(*s)),
                CStmt::Load { p, .. } => {
                    en.subscribe(idx, en.facts.obj_of(*p));
                    for k in 0..en.facts.targets_len(*p) {
                        let t = en.facts.target_at(*p, k);
                        en.subscribe(idx, en.facts.obj_of(t));
                    }
                }
                CStmt::Store { p, s, .. } => {
                    en.subscribe(idx, en.facts.obj_of(*p));
                    en.subscribe(idx, en.facts.obj_of(*s));
                }
                CStmt::PtrArith { s, .. } => en.subscribe(idx, en.facts.obj_of(*s)),
                CStmt::CopyAll { dp, sp } => {
                    en.subscribe(idx, en.facts.obj_of(*dp));
                    en.subscribe(idx, en.facts.obj_of(*sp));
                    for k in 0..en.facts.targets_len(*sp) {
                        let t = en.facts.target_at(*sp, k);
                        en.subscribe(idx, en.facts.obj_of(t));
                    }
                }
                // Dormant calls are pre-bound from `seed.bound` below; an
                // indirect one also watches its function pointer so callee
                // growth re-fires it.
                CStmt::CallDirect { .. } => {}
                CStmt::CallIndirect { p, .. } => en.subscribe(idx, en.facts.obj_of(*p)),
            }
        }
        let mut solver = Solver { en, cstmts };
        for &(i, fid) in &seed.bound {
            let (args, ret) = match solver.cstmts.get(i as usize) {
                Some(CStmt::CallDirect { args, ret, .. })
                | Some(CStmt::CallIndirect { args, ret, .. }) => (args.clone(), *ret),
                _ => continue,
            };
            solver.bind_call_inner(i as usize, fid, &args, ret, false);
        }
        solver
    }

    /// Selects the pointer-arithmetic treatment (default: spread).
    pub fn with_arith_mode(mut self, mode: ArithMode) -> Self {
        self.en.arith_mode = mode;
        self
    }

    /// Runs to fixpoint and returns the facts and instrumentation.
    pub fn run(self) -> SolverOutput {
        self.run_budgeted(&Budget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// Runs to fixpoint under a [`Budget`]. The budget is checked at
    /// iteration boundaries only — cancellation and the edge cap after
    /// every statement firing, the deadline before the first firing and
    /// then every [`TIME_CHECK_INTERVAL`] firings — so a run that
    /// *completes* produces exactly the facts an unbudgeted run would,
    /// while an exceeded run returns a typed [`SolveError`] instead of
    /// continuing.
    ///
    /// # Errors
    ///
    /// [`SolveError::DeadlineExceeded`], [`SolveError::EdgeLimit`], or
    /// [`SolveError::Cancelled`] when the corresponding limit trips.
    pub fn run_budgeted(mut self, budget: &Budget) -> Result<SolverOutput, SolveError> {
        SOLVES.with(|c| c.set(c.get() + 1));
        if let Some(e) = budget.time_exceeded() {
            return Err(e);
        }
        let mut until_time_check = TIME_CHECK_INTERVAL;
        while let Some(idx) = self.en.worklist.pop_front() {
            self.en.queued[idx as usize] = false;
            self.en.iterations += 1;
            self.process(idx);
            if let Some(e) = budget.exceeded(self.en.facts.len()) {
                return Err(e);
            }
            until_time_check -= 1;
            if until_time_check == 0 {
                until_time_check = TIME_CHECK_INTERVAL;
                if let Some(e) = budget.time_exceeded() {
                    return Err(e);
                }
            }
        }
        Ok(finish(self.en))
    }

    /// Runs to fixpoint on `threads` shards (see the `par` module). One thread takes
    /// the sequential [`Solver::run`] path unchanged; more shard the
    /// statements and propagate deltas in rendezvous rounds. Both compute
    /// the same least fixpoint, so the resulting edge set is identical
    /// regardless of the thread count (the `iterations` work measure and
    /// per-shard stats aggregation order differ).
    pub fn run_with_threads(self, threads: usize) -> SolverOutput {
        self.run_with_threads_budgeted(threads, &Budget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// [`run_with_threads`](Solver::run_with_threads) under a [`Budget`].
    /// The sharded path checks the budget at round boundaries (every merge
    /// is an iteration boundary for every shard), so completed runs remain
    /// byte-identical across thread counts and exceeded runs return the
    /// same typed error at any thread count.
    ///
    /// # Errors
    ///
    /// See [`run_budgeted`](Solver::run_budgeted).
    pub fn run_with_threads_budgeted(
        self,
        threads: usize,
        budget: &Budget,
    ) -> Result<SolverOutput, SolveError> {
        if threads <= 1 {
            self.run_budgeted(budget)
        } else {
            par::run_sharded(self, threads, budget)
        }
    }

    /// Fires one compiled statement. The `CStmt` stays borrowed from
    /// `self.cstmts` while the engine mutates — disjoint fields, so no
    /// clone is needed; only the call arms copy their (small) operand
    /// lists because binding pushes new compiled statements.
    fn process(&mut self, idx: u32) {
        match &self.cstmts[idx as usize] {
            CStmt::AddrOf { d, t } => {
                let (d, t) = (*d, *t);
                self.en.add_fact_ids(d, t);
            }
            CStmt::AddrField { d, p, tau_p, path } => {
                self.en.fire_addr_field(idx, *d, *p, *tau_p, path);
            }
            CStmt::Copy { d, s, tau } => {
                self.en.fire_copy(idx, *d, *s, *tau);
            }
            CStmt::Load { d, p, tau } => {
                self.en.fire_load(idx, *d, *p, *tau);
            }
            CStmt::Store { p, s, tau_p } => {
                self.en.fire_store(idx, *p, *s, *tau_p);
            }
            CStmt::PtrArith { d, s, pointee } => {
                self.en.fire_ptr_arith(idx, *d, *s, *pointee);
            }
            CStmt::CopyAll { dp, sp } => {
                self.en.fire_copy_all(idx, *dp, *sp);
            }
            CStmt::CallDirect { fid, args, ret } => {
                let (fid, ret) = (*fid, *ret);
                let args = args.clone();
                self.bind_call(idx as usize, fid, &args, ret);
            }
            CStmt::CallIndirect { p, args, ret } => {
                let (p, ret) = (*p, *ret);
                let args = args.clone();
                let callees = self.en.scan_new_callees(idx, p);
                for fid in callees {
                    self.bind_call(idx as usize, fid, &args, ret);
                }
            }
        }
    }

    /// Synthesizes parameter/return `Copy` bindings for a call site's newly
    /// discovered callee (once per (site, callee) pair).
    fn bind_call(&mut self, idx: usize, fid: FuncId, args: &[ObjId], ret: Option<ObjId>) {
        self.bind_call_inner(idx, fid, args, ret, true);
    }

    /// [`bind_call`](Solver::bind_call), optionally without enqueueing the
    /// synthesized bindings. The seeded constructor pre-binds carried-over
    /// call edges this way: the binding facts already survived retraction,
    /// so the copies only need to exist (for `finish`'s call-edge report)
    /// and watch their sources (to re-fire on growth), not fire now.
    fn bind_call_inner(
        &mut self,
        idx: usize,
        fid: FuncId,
        args: &[ObjId],
        ret: Option<ObjId>,
        enqueue: bool,
    ) {
        if !self.en.bound_calls.insert((idx, fid)) {
            return;
        }
        let empty = FieldPath::empty();
        for (dst, src) in self.en.call_bindings(fid, args, ret) {
            let s = self.en.norm_id(src, &empty);
            let c = CStmt::Copy {
                d: self.en.norm_id(dst, &empty),
                s,
                tau: self.en.prog.type_of(dst),
            };
            let new_idx = self.cstmts.len() as u32;
            self.cstmts.push(c);
            self.en.queued.push(false);
            if enqueue {
                self.en.enqueue(new_idx);
            } else {
                let obj = self.en.facts.obj_of(s);
                self.en.subscribe(new_idx, obj);
            }
        }
    }
}

/// Packages a drained engine into the run's output (shared by the
/// sequential and sharded drivers).
fn finish(en: Engine<'_>) -> SolverOutput {
    let unknown: BTreeSet<Loc> = en
        .unknown
        .iter()
        .map(|&i| en.facts.loc(i).clone())
        .collect();
    let orig = en.prog.stmts.len();
    let mut call_edges: Vec<(structcast_ir::StmtId, FuncId)> = en
        .bound_calls
        .iter()
        .filter(|(idx, _)| *idx < orig)
        .map(|(idx, f)| (structcast_ir::StmtId(*idx as u32), *f))
        .collect();
    call_edges.sort();
    SolverOutput {
        facts: en.facts,
        stats: en.stats,
        iterations: en.iterations,
        model: en.model,
        resolved_indirect_calls: en.bound_calls.len(),
        unknown,
        call_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::models::make_model;
    use structcast_ir::lower_source;
    use structcast_types::{CompatMode, Layout};

    fn run(src: &str, kind: ModelKind) -> (structcast_ir::Program, SolverOutput) {
        let prog = lower_source(src).unwrap();
        let model = make_model(kind, Layout::ilp32(), CompatMode::Structural);
        let out = Solver::new(&prog, model).run();
        (prog, out)
    }

    /// Points-to names of `var` (top-level), as a sorted list of object
    /// names for readable assertions.
    fn pts_names(prog: &structcast_ir::Program, out: &SolverOutput, var: &str) -> Vec<String> {
        let obj = prog.object_by_name(var).unwrap();
        let l = out.model.normalize(prog, obj, &FieldPath::empty());
        let mut v: Vec<String> = out
            .facts
            .points_to(&l)
            .map(|t| prog.object(t.obj).name.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    const INTRO: &str = "struct S { int *s1; int *s2; } s;\n\
         int x, y, *p;\n\
         void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";

    #[test]
    fn intro_example_field_sensitive_models_are_precise() {
        for kind in [
            ModelKind::CollapseOnCast,
            ModelKind::CommonInitialSeq,
            ModelKind::Offsets,
        ] {
            let (prog, out) = run(INTRO, kind);
            assert_eq!(
                pts_names(&prog, &out, "p"),
                vec!["x".to_string()],
                "{kind} should keep p → {{x}} only"
            );
        }
    }

    #[test]
    fn intro_example_collapse_always_is_imprecise() {
        let (prog, out) = run(INTRO, ModelKind::CollapseAlways);
        assert_eq!(
            pts_names(&prog, &out, "p"),
            vec!["x".to_string(), "y".to_string()],
            "collapsing merges the two fields"
        );
    }

    #[test]
    fn indirect_calls_bind_during_solving() {
        let src = "int x; int *target(void) { return &x; }\n\
                   int *(*fp)(void); int *r;\n\
                   void f(void) { fp = target; r = fp(); }";
        for kind in ModelKind::ALL {
            let (prog, out) = run(src, kind);
            assert!(out.resolved_indirect_calls >= 1, "{kind}");
            assert_eq!(pts_names(&prog, &out, "r"), vec!["x".to_string()], "{kind}");
        }
    }

    #[test]
    fn solver_terminates_on_cyclic_structures() {
        let src = "struct N { struct N *next; int v; } a, b, c;\n\
                   void f(void) { a.next = &b; b.next = &c; c.next = &a; \
                                  a.next = b.next; }";
        for kind in ModelKind::ALL {
            let (_prog, out) = run(src, kind);
            assert!(out.iterations > 0);
            assert!(!out.facts.is_empty());
        }
    }

    #[test]
    fn heap_objects_flow_through_lists() {
        let src = "struct Node { struct Node *next; int *data; };\n\
                   struct Node *head; int x;\n\
                   void f(void) {\n\
                     struct Node *n = (struct Node *)malloc(sizeof(struct Node));\n\
                     n->data = &x; n->next = head; head = n;\n\
                   }";
        for kind in ModelKind::ALL {
            let (prog, out) = run(src, kind);
            let names = pts_names(&prog, &out, "head");
            assert!(
                names.iter().any(|n| n.starts_with("malloc_")),
                "{kind}: head should reach the heap node, got {names:?}"
            );
        }
    }

    #[test]
    fn refiring_consumes_only_deltas() {
        // A chain a -> b -> c through loads: the second solve of each
        // statement must not redo first-pass work. We can't observe the
        // cursors directly, but iterations staying near the statement
        // count (rather than quadratic blowup) plus a correct fixpoint is
        // the behavioural contract.
        let src = "int x, y, *p, *q, **pp;\n\
                   void f(void) { p = &x; pp = &p; q = *pp; p = &y; }";
        let (prog, out) = run(src, ModelKind::CommonInitialSeq);
        assert_eq!(
            pts_names(&prog, &out, "q"),
            vec!["x".to_string(), "y".to_string()]
        );
        assert!(out.iterations < 100, "iterations {}", out.iterations);
    }
}
