//! The worklist fixpoint solver implementing the inference rules of the
//! paper's Figure 2, parameterized by a [`FieldModel`].
//!
//! Like the paper's implementation (§5), the solver treats the program as a
//! graph with one node per abstract object and one edge per normalized
//! assignment, then applies the rules to add points-to edges until nothing
//! changes. Statements *subscribe* to the objects whose facts they consume
//! (object granularity), so a new fact only re-fires the statements that
//! might derive more from it.
//!
//! Indirect calls are resolved inside the same fixpoint: when the points-to
//! set of a call's function pointer grows a function object, parameter and
//! return bindings are synthesized as fresh `Copy` statements (monotone, so
//! the fixpoint remains well-defined).

use crate::facts::FactStore;
use crate::loc::Loc;
use crate::model::{FieldModel, ModelStats};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use structcast_ir::{Callee, FuncId, ObjId, Program, Stmt};
use structcast_types::FieldPath;

/// How pointer arithmetic is modeled (paper §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArithMode {
    /// Assumption 1 (the paper's choice): the result may point to any
    /// normalized position of the outermost object each target lies in.
    #[default]
    Spread,
    /// The pessimistic alternative the paper sketches: the result is a
    /// potentially *corrupted* pointer, recorded in the `Unknown` set and
    /// given no targets — useful for flagging potential memory misuse.
    FlagUnknown,
}

/// The solver state for one analysis run.
pub struct Solver<'p> {
    prog: &'p Program,
    model: Box<dyn FieldModel>,
    facts: FactStore,
    stats: ModelStats,
    /// Program statements plus bindings synthesized for indirect calls.
    stmts: Vec<Stmt>,
    /// Object → statements to re-fire when a fact rooted in it changes.
    subs: HashMap<ObjId, HashSet<usize>>,
    queued: Vec<bool>,
    worklist: VecDeque<usize>,
    /// Indirect-call bindings already synthesized.
    bound_calls: HashSet<(usize, FuncId)>,
    /// Statement evaluations performed (a work measure).
    iterations: u64,
    /// How pointer arithmetic is treated.
    arith_mode: ArithMode,
    /// Locations flagged as possibly holding corrupted pointers
    /// ([`ArithMode::FlagUnknown`] only).
    unknown: BTreeSet<Loc>,
}

/// What a finished run produced.
pub struct SolverOutput {
    /// All points-to facts.
    pub facts: FactStore,
    /// Figure 3 instrumentation.
    pub stats: ModelStats,
    /// Statement evaluations performed.
    pub iterations: u64,
    /// The model, retained for normalization/weighting in queries.
    pub model: Box<dyn FieldModel>,
    /// Number of indirect-call (callee, site) bindings discovered.
    pub resolved_indirect_calls: usize,
    /// Locations flagged as possibly-corrupted pointers
    /// ([`ArithMode::FlagUnknown`] runs only; empty otherwise).
    pub unknown: BTreeSet<Loc>,
    /// Resolved (call-site statement, callee) pairs for call sites in the
    /// original program (drives call-graph clients like MOD/REF).
    pub call_edges: Vec<(structcast_ir::StmtId, FuncId)>,
}

impl<'p> Solver<'p> {
    /// Creates a solver over `prog` with the given framework instance.
    pub fn new(prog: &'p Program, model: Box<dyn FieldModel>) -> Self {
        let stmts: Vec<Stmt> = prog.stmts.clone();
        let n = stmts.len();
        Solver {
            prog,
            model,
            facts: FactStore::new(),
            stats: ModelStats::default(),
            stmts,
            subs: HashMap::new(),
            queued: vec![true; n],
            worklist: (0..n).collect(),
            bound_calls: HashSet::new(),
            iterations: 0,
            arith_mode: ArithMode::Spread,
            unknown: BTreeSet::new(),
        }
    }

    /// Selects the pointer-arithmetic treatment (default: spread).
    pub fn with_arith_mode(mut self, mode: ArithMode) -> Self {
        self.arith_mode = mode;
        self
    }

    /// Runs to fixpoint and returns the facts and instrumentation.
    pub fn run(mut self) -> SolverOutput {
        while let Some(idx) = self.worklist.pop_front() {
            self.queued[idx] = false;
            self.iterations += 1;
            self.process(idx);
        }
        SolverOutput {
            facts: self.facts,
            stats: self.stats,
            iterations: self.iterations,
            model: self.model,
            resolved_indirect_calls: self.bound_calls.len(),
            call_edges: {
                let orig = self.prog.stmts.len();
                let mut v: Vec<(structcast_ir::StmtId, FuncId)> = self
                    .bound_calls
                    .iter()
                    .filter(|(idx, _)| *idx < orig)
                    .map(|(idx, f)| (structcast_ir::StmtId(*idx as u32), *f))
                    .collect();
                v.sort();
                v
            },
            unknown: self.unknown,
        }
    }

    /// Flags a location as possibly holding a corrupted pointer.
    fn mark_unknown(&mut self, loc: Loc) {
        let obj = loc.obj;
        if self.unknown.insert(loc) {
            if let Some(subs) = self.subs.get(&obj) {
                let to_wake: Vec<usize> = subs.iter().copied().collect();
                for s in to_wake {
                    self.enqueue(s);
                }
            }
        }
    }

    fn enqueue(&mut self, idx: usize) {
        if !self.queued[idx] {
            self.queued[idx] = true;
            self.worklist.push_back(idx);
        }
    }

    fn subscribe(&mut self, idx: usize, obj: ObjId) {
        self.subs.entry(obj).or_default().insert(idx);
    }

    fn add_fact(&mut self, src: Loc, tgt: Loc) {
        let obj = src.obj;
        if self.facts.insert(src, tgt) {
            if let Some(subs) = self.subs.get(&obj) {
                let to_wake: Vec<usize> = subs.iter().copied().collect();
                for s in to_wake {
                    self.enqueue(s);
                }
            }
        }
    }

    /// Copies `pts(src_loc)` into `pts(dst_loc)`, propagating the
    /// corrupted-pointer flag alongside.
    fn copy_facts(&mut self, dst_loc: &Loc, src_loc: &Loc) {
        for t in self.facts.points_to_vec(src_loc) {
            self.add_fact(dst_loc.clone(), t);
        }
        if self.unknown.contains(src_loc) {
            self.mark_unknown(dst_loc.clone());
        }
    }

    fn norm(&self, obj: ObjId, path: &FieldPath) -> Loc {
        self.model.normalize(self.prog, obj, path)
    }

    fn norm_top(&self, obj: ObjId) -> Loc {
        self.model.normalize(self.prog, obj, &FieldPath::empty())
    }

    /// The declared pointee type of `ptr`, with a byte fallback for values
    /// whose declared type is not a pointer (possible only through unions
    /// of our own temps; the paper's τ_p is always defined).
    fn pointee(&self, ptr: ObjId) -> structcast_types::TypeId {
        match self.prog.pointee_of(ptr) {
            Some(t) => t,
            None => {
                // char: one byte, matching nothing struct-like.
                let k = structcast_types::TypeKind::Int(structcast_types::IntKind::Char);
                // The type table interns eagerly during lowering, so `char`
                // exists in every program with char data; fall back to the
                // object's own type otherwise.
                self.find_interned(&k)
                    .unwrap_or_else(|| self.prog.type_of(ptr))
            }
        }
    }

    fn find_interned(&self, kind: &structcast_types::TypeKind) -> Option<structcast_types::TypeId> {
        (0..self.prog.types.len() as u32)
            .map(structcast_types::TypeId)
            .find(|t| self.prog.types.kind(*t) == kind)
    }

    fn process(&mut self, idx: usize) {
        let stmt = self.stmts[idx].clone();
        match stmt {
            // Rule 1: s = (τ)&t.β
            Stmt::AddrOf { dst, src, path } => {
                let d = self.norm_top(dst);
                let t = self.norm(src, &path);
                self.add_fact(d, t);
            }
            // Rule 2: s = (τ)&(*p).α
            Stmt::AddrField { dst, ptr, path } => {
                let p = self.norm_top(ptr);
                self.subscribe(idx, p.obj);
                let tau_p = self.pointee(ptr);
                let d = self.norm_top(dst);
                for tgt in self.facts.points_to_vec(&p) {
                    let results =
                        self.model
                            .lookup(self.prog, tau_p, &path, &tgt, &mut self.stats);
                    for r in results {
                        self.add_fact(d.clone(), r);
                    }
                }
            }
            // Rule 3: s = (τ)t.β
            Stmt::Copy { dst, src, path } => {
                let d = self.norm_top(dst);
                let s = self.norm(src, &path);
                self.subscribe(idx, s.obj);
                let tau = self.prog.type_of(dst);
                let pairs = self
                    .model
                    .resolve(self.prog, &d, &s, tau, &self.facts, &mut self.stats);
                for (dl, sl) in pairs {
                    self.copy_facts(&dl, &sl);
                }
            }
            // Rule 4: s = (τ)*q
            Stmt::Load { dst, ptr } => {
                let p = self.norm_top(ptr);
                self.subscribe(idx, p.obj);
                let d = self.norm_top(dst);
                let tau = self.prog.type_of(dst);
                for tgt in self.facts.points_to_vec(&p) {
                    self.subscribe(idx, tgt.obj);
                    let pairs =
                        self.model
                            .resolve(self.prog, &d, &tgt, tau, &self.facts, &mut self.stats);
                    for (dl, sl) in pairs {
                        self.copy_facts(&dl, &sl);
                    }
                }
            }
            // Rule 5: *p = (τ_p)t
            Stmt::Store { ptr, src } => {
                let p = self.norm_top(ptr);
                self.subscribe(idx, p.obj);
                self.subscribe(idx, src);
                let s = self.norm_top(src);
                let tau_p = self.pointee(ptr);
                for tgt in self.facts.points_to_vec(&p) {
                    let pairs = self.model.resolve(
                        self.prog,
                        &tgt,
                        &s,
                        tau_p,
                        &self.facts,
                        &mut self.stats,
                    );
                    for (dl, sl) in pairs {
                        self.copy_facts(&dl, &sl);
                    }
                }
            }
            // Extension: pointer arithmetic. Under Assumption 1 the result
            // spreads over the outermost object (§4.2.1); in FlagUnknown
            // mode it is recorded as potentially corrupted instead.
            Stmt::PtrArith { dst, src } => {
                let s = self.norm_top(src);
                self.subscribe(idx, s.obj);
                let d = self.norm_top(dst);
                match self.arith_mode {
                    ArithMode::Spread => {
                        let pointee = self.prog.pointee_of(src);
                        for tgt in self.facts.points_to_vec(&s) {
                            for l in self.model.spread(self.prog, &tgt, pointee) {
                                self.add_fact(d.clone(), l);
                            }
                        }
                    }
                    ArithMode::FlagUnknown => {
                        self.mark_unknown(d);
                    }
                }
            }
            // Extension: memcpy-style bulk copy.
            Stmt::CopyAll { dst_ptr, src_ptr } => {
                let dp = self.norm_top(dst_ptr);
                let sp = self.norm_top(src_ptr);
                self.subscribe(idx, dp.obj);
                self.subscribe(idx, sp.obj);
                for dt in self.facts.points_to_vec(&dp) {
                    for st in self.facts.points_to_vec(&sp) {
                        self.subscribe(idx, st.obj);
                        let pairs = self.model.resolve_all(
                            self.prog,
                            &dt,
                            &st,
                            &self.facts,
                            &mut self.stats,
                        );
                        for (dl, sl) in pairs {
                            self.copy_facts(&dl, &sl);
                        }
                    }
                }
            }
            // Indirect call: bind discovered callees inside the fixpoint.
            Stmt::Call { callee, args, ret } => {
                let fp = match callee {
                    Callee::Indirect(fp) => fp,
                    Callee::Direct(fid) => {
                        self.bind_call(idx, fid, &args, ret);
                        return;
                    }
                };
                let p = self.norm_top(fp);
                self.subscribe(idx, p.obj);
                for tgt in self.facts.points_to_vec(&p) {
                    if let Some(fid) = self.prog.as_function(tgt.obj) {
                        self.bind_call(idx, fid, &args, ret);
                    }
                }
            }
        }
    }

    /// Synthesizes parameter/return `Copy` bindings for a call site's newly
    /// discovered callee (once per (site, callee) pair).
    fn bind_call(&mut self, idx: usize, fid: FuncId, args: &[ObjId], ret: Option<ObjId>) {
        if !self.bound_calls.insert((idx, fid)) {
            return;
        }
        let f = self.prog.function(fid);
        let mut new_stmts = Vec::new();
        for (i, &arg) in args.iter().enumerate() {
            if let Some(&param) = f.params.get(i) {
                new_stmts.push(Stmt::Copy {
                    dst: param,
                    src: arg,
                    path: FieldPath::empty(),
                });
            } else if let Some(va) = f.varargs {
                new_stmts.push(Stmt::Copy {
                    dst: va,
                    src: arg,
                    path: FieldPath::empty(),
                });
            }
        }
        if let (Some(r), Some(rs)) = (ret, f.ret_slot) {
            new_stmts.push(Stmt::Copy {
                dst: r,
                src: rs,
                path: FieldPath::empty(),
            });
        }
        for s in new_stmts {
            let new_idx = self.stmts.len();
            self.stmts.push(s);
            self.queued.push(false);
            self.enqueue(new_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::make_model;
    use crate::model::ModelKind;
    use structcast_ir::lower_source;
    use structcast_types::{CompatMode, Layout};

    fn run(src: &str, kind: ModelKind) -> (structcast_ir::Program, SolverOutput) {
        let prog = lower_source(src).unwrap();
        let model = make_model(kind, Layout::ilp32(), CompatMode::Structural);
        let out = Solver::new(&prog, model).run();
        (prog, out)
    }

    /// Points-to names of `var` (top-level), as a sorted list of object
    /// names for readable assertions.
    fn pts_names(prog: &structcast_ir::Program, out: &SolverOutput, var: &str) -> Vec<String> {
        let obj = prog.object_by_name(var).unwrap();
        let l = out.model.normalize(prog, obj, &FieldPath::empty());
        let mut v: Vec<String> = out
            .facts
            .points_to(&l)
            .map(|t| prog.object(t.obj).name.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    const INTRO: &str = "struct S { int *s1; int *s2; } s;\n\
         int x, y, *p;\n\
         void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";

    #[test]
    fn intro_example_field_sensitive_models_are_precise() {
        for kind in [
            ModelKind::CollapseOnCast,
            ModelKind::CommonInitialSeq,
            ModelKind::Offsets,
        ] {
            let (prog, out) = run(INTRO, kind);
            assert_eq!(
                pts_names(&prog, &out, "p"),
                vec!["x".to_string()],
                "{kind} should keep p → {{x}} only"
            );
        }
    }

    #[test]
    fn intro_example_collapse_always_is_imprecise() {
        let (prog, out) = run(INTRO, ModelKind::CollapseAlways);
        assert_eq!(
            pts_names(&prog, &out, "p"),
            vec!["x".to_string(), "y".to_string()],
            "collapsing merges the two fields"
        );
    }

    #[test]
    fn indirect_calls_bind_during_solving() {
        let src = "int x; int *target(void) { return &x; }\n\
                   int *(*fp)(void); int *r;\n\
                   void f(void) { fp = target; r = fp(); }";
        for kind in ModelKind::ALL {
            let (prog, out) = run(src, kind);
            assert!(out.resolved_indirect_calls >= 1, "{kind}");
            assert_eq!(pts_names(&prog, &out, "r"), vec!["x".to_string()], "{kind}");
        }
    }

    #[test]
    fn solver_terminates_on_cyclic_structures() {
        let src = "struct N { struct N *next; int v; } a, b, c;\n\
                   void f(void) { a.next = &b; b.next = &c; c.next = &a; \
                                  a.next = b.next; }";
        for kind in ModelKind::ALL {
            let (_prog, out) = run(src, kind);
            assert!(out.iterations > 0);
            assert!(!out.facts.is_empty());
        }
    }

    #[test]
    fn heap_objects_flow_through_lists() {
        let src = "struct Node { struct Node *next; int *data; };\n\
                   struct Node *head; int x;\n\
                   void f(void) {\n\
                     struct Node *n = (struct Node *)malloc(sizeof(struct Node));\n\
                     n->data = &x; n->next = head; head = n;\n\
                   }";
        for kind in ModelKind::ALL {
            let (prog, out) = run(src, kind);
            let names = pts_names(&prog, &out, "head");
            assert!(
                names.iter().any(|n| n.starts_with("malloc_")),
                "{kind}: head should reach the heap node, got {names:?}"
            );
        }
    }
}
