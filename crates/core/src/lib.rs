//! # structcast
//!
//! A tunable, field-sensitive **pointer analysis for C programs with
//! structures and casting** — a from-scratch reproduction of
//!
//! > Suan Hsi Yong, Susan Horwitz, Thomas Reps.
//! > *Pointer Analysis for Programs with Structures and Casting.*
//! > PLDI 1999.
//!
//! Type casting lets a C program access an object as if it had a different
//! type, which breaks naive field-sensitive pointer analysis. The paper's
//! framework parameterizes a flow-insensitive, context-insensitive analysis
//! by three functions — `normalize`, `lookup`, `resolve` — and derives four
//! algorithms spanning the precision/portability spectrum:
//!
//! | instance ([`ModelKind`]) | fields? | casts? | portable? |
//! |---|---|---|---|
//! | `CollapseAlways` | collapsed | n/a | yes |
//! | `CollapseOnCast` | kept until cast | collapse tail | yes |
//! | `CommonInitialSeq` | kept until cast | keep shared prefix | yes |
//! | `Offsets` | byte offsets | exact | **no** (layout-specific) |
//!
//! ## Quickstart
//!
//! ```
//! use structcast::{analyze_source, AnalysisConfig, ModelKind};
//!
//! // The paper's introduction example: collapsing structures loses the
//! // fact that p can only point to x.
//! let src = r#"
//!     struct S { int *s1; int *s2; } s;
//!     int x, y, *p;
//!     void main(void) {
//!         s.s1 = &x;
//!         s.s2 = &y;
//!         p = s.s1;
//!     }
//! "#;
//!
//! let (prog, precise) =
//!     analyze_source(src, &AnalysisConfig::new(ModelKind::CommonInitialSeq))?;
//! assert_eq!(precise.points_to_names(&prog, "p"), vec!["x".to_string()]);
//!
//! let (prog, collapsed) =
//!     analyze_source(src, &AnalysisConfig::new(ModelKind::CollapseAlways))?;
//! assert_eq!(
//!     collapsed.points_to_names(&prog, "p"),
//!     vec!["x".to_string(), "y".to_string()]
//! );
//! # Ok::<(), structcast::LowerError>(())
//! ```
//!
//! ## Pipeline
//!
//! The crate re-exports the full pipeline so downstream users need only one
//! dependency:
//!
//! 1. [`parse`] (from `structcast-ast`) — C source → AST;
//! 2. [`lower`] / [`lower_source`] (from `structcast-ir`) — AST → the five
//!    normalized assignment forms of the paper's §2;
//! 3. the staged analysis (below) — [`analyze`] for one instance, or an
//!    [`AnalysisSession`] to solve several instances over one program;
//! 4. [`AnalysisResult`] — points-to queries, alias queries, and the
//!    metrics of the paper's Figures 3–6.
//!
//! ## Staged analysis: compile once, solve many
//!
//! The analysis itself runs in three explicit stages:
//!
//! ```text
//!   Program ──compile──▶ ConstraintSet ──specialize(model)──▶ solver
//!            (stage 1,    [constraints]    (stage 2, per        (stage 3,
//!             once)                         instance)            fixpoint)
//! ```
//!
//! 1. **Constraint compilation** (the [`constraints`] layer,
//!    `structcast-constraints`): the IR is walked *once* into a
//!    model-independent [`ConstraintSet`] — interned field paths,
//!    pre-resolved `τ`/`τ_p`/pointee types, one constraint per statement —
//!    with a stable dump for debugging and golden tests;
//! 2. **Model specialization**: each constraint's operands are mapped
//!    through the chosen instance's `normalize` and interned
//!    ([`Solver::from_constraints`]);
//! 3. **Solving**: the difference-propagation worklist fixpoint over the
//!    inference rules of Figure 2.
//!
//! [`AnalysisSession`] packages the staging: `compile` a program once,
//! then `solve` any number of configurations against the shared constraint
//! form — the shape of the paper's four-instance evaluation:
//!
//! ```
//! use structcast::{AnalysisConfig, AnalysisSession, ModelKind};
//!
//! let prog = structcast::lower_source("int x, *p; void f(void) { p = &x; }")?;
//! let session = AnalysisSession::compile(&prog); // stage 1, paid once
//! for kind in ModelKind::ALL {
//!     let res = session.solve(&AnalysisConfig::new(kind)); // stages 2+3
//!     assert_eq!(res.points_to_names(&prog, "p"), vec!["x".to_string()]);
//! }
//! # Ok::<(), structcast::LowerError>(())
//! ```
//!
//! A Steensgaard-style unification ablation lives in [`steensgaard`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod budget;
pub mod demand;
mod facts;
pub mod incr;
mod loc;
mod model;
pub mod models;
pub mod modref;
mod session;
mod solver;
pub mod steensgaard;

pub use analysis::{
    analyze, analyze_source, env_solver_threads, try_analyze, AnalysisConfig, AnalysisResult,
};
pub use budget::{Budget, SolveError, TIME_CHECK_INTERVAL};
pub use demand::{
    slice_for_query, solve_demand_compiled, try_solve_demand_compiled, DemandQuery, DemandResult,
};
pub use facts::FactStore;
pub use incr::{resolve_incremental, IncrSolve, IncrStats};
pub use loc::{FieldRep, Loc, LocId};
pub use model::{FieldModel, ModelKind, ModelStats};
pub use session::{
    solve_compiled, solve_compiled_parallel, try_solve_compiled, try_solve_compiled_parallel,
    AnalysisSession,
};
pub use solver::{solves_on_thread, ArithMode, Solver, SolverOutput};

/// The model-independent constraint layer (re-export of
/// `structcast-constraints`): [`ConstraintSet`] and friends.
pub use structcast_constraints as constraints;
pub use structcast_constraints::{
    compile_incremental, diff_programs, CompileReuse, ConstraintSet, ConstraintSlicer,
    ProgramDiff, Slice, SliceStats,
};

// Re-export the pipeline so `structcast` is a one-stop dependency.
pub use structcast_ast::{parse, ParseError, TranslationUnit};

/// Front-end conveniences re-exported from `structcast-ast`.
pub mod parse_support {
    pub use structcast_ast::{preprocess, IncludeResolver, Lexer, Parser};
}
pub use structcast_ir::{lower, lower_source, FuncId, LowerError, ObjId, Program, Stmt, StmtId};
pub use structcast_types::{CompatMode, FieldPath, Layout, TypeId, TypeTable};
