//! # structcast
//!
//! A tunable, field-sensitive **pointer analysis for C programs with
//! structures and casting** — a from-scratch reproduction of
//!
//! > Suan Hsi Yong, Susan Horwitz, Thomas Reps.
//! > *Pointer Analysis for Programs with Structures and Casting.*
//! > PLDI 1999.
//!
//! Type casting lets a C program access an object as if it had a different
//! type, which breaks naive field-sensitive pointer analysis. The paper's
//! framework parameterizes a flow-insensitive, context-insensitive analysis
//! by three functions — `normalize`, `lookup`, `resolve` — and derives four
//! algorithms spanning the precision/portability spectrum:
//!
//! | instance ([`ModelKind`]) | fields? | casts? | portable? |
//! |---|---|---|---|
//! | `CollapseAlways` | collapsed | n/a | yes |
//! | `CollapseOnCast` | kept until cast | collapse tail | yes |
//! | `CommonInitialSeq` | kept until cast | keep shared prefix | yes |
//! | `Offsets` | byte offsets | exact | **no** (layout-specific) |
//!
//! ## Quickstart
//!
//! ```
//! use structcast::{analyze_source, AnalysisConfig, ModelKind};
//!
//! // The paper's introduction example: collapsing structures loses the
//! // fact that p can only point to x.
//! let src = r#"
//!     struct S { int *s1; int *s2; } s;
//!     int x, y, *p;
//!     void main(void) {
//!         s.s1 = &x;
//!         s.s2 = &y;
//!         p = s.s1;
//!     }
//! "#;
//!
//! let (prog, precise) =
//!     analyze_source(src, &AnalysisConfig::new(ModelKind::CommonInitialSeq))?;
//! assert_eq!(precise.points_to_names(&prog, "p"), vec!["x".to_string()]);
//!
//! let (prog, collapsed) =
//!     analyze_source(src, &AnalysisConfig::new(ModelKind::CollapseAlways))?;
//! assert_eq!(
//!     collapsed.points_to_names(&prog, "p"),
//!     vec!["x".to_string(), "y".to_string()]
//! );
//! # Ok::<(), structcast::LowerError>(())
//! ```
//!
//! ## Pipeline
//!
//! The crate re-exports the full pipeline so downstream users need only one
//! dependency:
//!
//! 1. [`parse`] (from `structcast-ast`) — C source → AST;
//! 2. [`lower`] / [`lower_source`] (from `structcast-ir`) — AST → the five
//!    normalized assignment forms of the paper's §2;
//! 3. [`analyze`] — fixpoint over the inference rules of Figure 2,
//!    parameterized by the chosen [`ModelKind`];
//! 4. [`AnalysisResult`] — points-to queries, alias queries, and the
//!    metrics of the paper's Figures 3–6.
//!
//! A Steensgaard-style unification ablation lives in [`steensgaard`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod facts;
mod loc;
mod model;
pub mod models;
pub mod modref;
mod solver;
pub mod steensgaard;

pub use analysis::{analyze, analyze_source, AnalysisConfig, AnalysisResult};
pub use facts::FactStore;
pub use loc::{FieldRep, Loc, LocId};
pub use model::{FieldModel, ModelKind, ModelStats};
pub use solver::{ArithMode, Solver, SolverOutput};

// Re-export the pipeline so `structcast` is a one-stop dependency.
pub use structcast_ast::{parse, ParseError, TranslationUnit};

/// Front-end conveniences re-exported from `structcast-ast`.
pub mod parse_support {
    pub use structcast_ast::{preprocess, IncludeResolver, Lexer, Parser};
}
pub use structcast_ir::{lower, lower_source, LowerError, ObjId, Program, Stmt, StmtId};
pub use structcast_types::{CompatMode, FieldPath, Layout, TypeId, TypeTable};
