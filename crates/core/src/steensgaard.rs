//! A Steensgaard-style *unification-based* pointer analysis, provided as an
//! ablation baseline (paper §6 discusses Steensgaard's algorithm as the
//! closest portable relative of the "Common Initial Sequence" instance).
//!
//! This is the classic almost-linear-time equality analysis: every
//! assignment `x = y` *unifies* the pointees of `x` and `y` instead of
//! adding a subset edge, so points-to sets are equivalence classes. It is
//! field-insensitive (structures collapsed), making it comparable to the
//! "Collapse Always" instance but strictly coarser — the ablation bench
//! quantifies the gap against the paper's inclusion-based framework.
//!
//! Simplifications vs. Steensgaard's original (documented in DESIGN.md):
//! pointee nodes are created eagerly on demand rather than tracked with
//! conditional joins, and indirect calls are resolved by iterating the
//! unification pass until no new (site, callee) binding appears.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};
use structcast_ir::{Callee, FuncId, ObjId, Program, Stmt};
use structcast_types::TypeKind;

/// Union-find over ECRs (equivalence-class representatives) with a pointee
/// edge per class.
#[derive(Debug, Default)]
struct Ecr {
    parent: Vec<u32>,
    /// pointee ECR of each class root (entries keyed by *some* historical
    /// root; always re-resolved through `find`).
    pointee: HashMap<u32, u32>,
}

impl Ecr {
    fn add_node(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unifies two classes, recursively unifying their pointees.
    fn union(&mut self, a: u32, b: u32) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.parent[b as usize] = a;
        let pa = self.pointee.remove(&a);
        let pb = self.pointee.remove(&b);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                self.pointee.insert(a, x);
                // Linking first guarantees termination on cyclic graphs.
                self.union(x, y);
            }
            (Some(x), None) | (None, Some(x)) => {
                self.pointee.insert(a, x);
            }
            (None, None) => {}
        }
    }

    /// The pointee class of `x`, created fresh if absent.
    fn pts(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        if let Some(&p) = self.pointee.get(&r) {
            return self.find(p);
        }
        let fresh = self.add_node();
        // `add_node` cannot have changed r's root.
        self.pointee.insert(r, fresh);
        fresh
    }

    fn pointee_of(&mut self, x: u32) -> Option<u32> {
        let r = self.find(x);
        self.pointee.get(&r).copied().map(|p| self.find(p))
    }
}

/// The result of a Steensgaard run.
pub struct SteensgaardResult {
    ecr: std::cell::RefCell<Ecr>,
    n_objects: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Number of distinct (call site, callee) bindings discovered.
    pub resolved_indirect_calls: usize,
    /// Number of unification passes needed to stabilize call bindings.
    pub passes: usize,
}

/// Runs the unification-based analysis over a lowered program.
pub fn steensgaard(prog: &Program) -> SteensgaardResult {
    let start = Instant::now();
    let mut ecr = Ecr::default();
    for _ in 0..prog.objects.len() {
        ecr.add_node();
    }

    let mut bound: HashSet<(usize, FuncId)> = HashSet::new();
    let mut extra: Vec<(ObjId, ObjId)> = Vec::new(); // copy bindings for calls
    let mut passes = 0;
    loop {
        passes += 1;
        for (i, s) in prog.stmts.iter().enumerate() {
            process(&mut ecr, prog, i, s, &mut bound, &mut extra);
        }
        for &(d, s) in &extra {
            let pd = ecr.pts(d.0);
            let ps = ecr.pts(s.0);
            ecr.union(pd, ps);
        }
        // Iterate until the callee bindings are stable (cheap: binding set
        // only grows and is bounded by sites × functions).
        let before = bound.len();
        for (i, s) in prog.stmts.iter().enumerate() {
            if let Stmt::Call { callee: Callee::Indirect(fp), .. } = s {
                let _ = discover_callees(&mut ecr, prog, i, *fp, s, &mut bound, &mut extra);
            }
        }
        if bound.len() == before && passes > 1 {
            break;
        }
        if passes > prog.stmts.len() + 2 {
            break; // safety net; cannot trigger on monotone binding growth
        }
    }

    SteensgaardResult {
        ecr: std::cell::RefCell::new(ecr),
        n_objects: prog.objects.len(),
        elapsed: start.elapsed(),
        resolved_indirect_calls: bound.len(),
        passes,
    }
}

fn process(
    ecr: &mut Ecr,
    prog: &Program,
    idx: usize,
    s: &Stmt,
    bound: &mut HashSet<(usize, FuncId)>,
    extra: &mut Vec<(ObjId, ObjId)>,
) {
    match s {
        Stmt::AddrOf { dst, src, .. } | Stmt::AddrField { dst, ptr: src, .. } => {
            // Field-insensitive: &t.β is &t; &(*p).α makes dst point into
            // whatever p points to.
            match s {
                Stmt::AddrOf { .. } => {
                    let p = ecr.pts(dst.0);
                    ecr.union(p, src.0);
                }
                _ => {
                    let pd = ecr.pts(dst.0);
                    let pp = ecr.pts(src.0);
                    ecr.union(pd, pp);
                }
            }
        }
        Stmt::Copy { dst, src, .. } | Stmt::PtrArith { dst, src } => {
            let pd = ecr.pts(dst.0);
            let ps = ecr.pts(src.0);
            ecr.union(pd, ps);
        }
        Stmt::Load { dst, ptr } => {
            let pp = ecr.pts(ptr.0);
            let ppp = ecr.pts(pp);
            let pd = ecr.pts(dst.0);
            ecr.union(pd, ppp);
        }
        Stmt::Store { ptr, src } => {
            let pp = ecr.pts(ptr.0);
            let ppp = ecr.pts(pp);
            let ps = ecr.pts(src.0);
            ecr.union(ppp, ps);
        }
        Stmt::CopyAll { dst_ptr, src_ptr } => {
            let pd = ecr.pts(dst_ptr.0);
            let ppd = ecr.pts(pd);
            let ps = ecr.pts(src_ptr.0);
            let pps = ecr.pts(ps);
            ecr.union(ppd, pps);
        }
        Stmt::Call { callee, args, ret } => match callee {
            Callee::Direct(fid) => {
                bind_call(prog, idx, *fid, args, *ret, bound, extra);
            }
            Callee::Indirect(fp) => {
                let _ = discover_callees(ecr, prog, idx, *fp, s, bound, extra);
            }
        },
    }
}

fn discover_callees(
    ecr: &mut Ecr,
    prog: &Program,
    idx: usize,
    fp: ObjId,
    s: &Stmt,
    bound: &mut HashSet<(usize, FuncId)>,
    extra: &mut Vec<(ObjId, ObjId)>,
) -> usize {
    let Stmt::Call { args, ret, .. } = s else {
        return 0;
    };
    let Some(target_class) = ecr.pointee_of(fp.0) else {
        return 0;
    };
    let mut found = 0;
    for (oid, obj) in prog.objects.iter().enumerate() {
        if let structcast_ir::ObjKind::Function(fid) = obj.kind {
            if ecr.find(oid as u32) == target_class
                && bind_call(prog, idx, fid, args, *ret, bound, extra) {
                    found += 1;
                }
        }
    }
    found
}

fn bind_call(
    prog: &Program,
    idx: usize,
    fid: FuncId,
    args: &[ObjId],
    ret: Option<ObjId>,
    bound: &mut HashSet<(usize, FuncId)>,
    extra: &mut Vec<(ObjId, ObjId)>,
) -> bool {
    if !bound.insert((idx, fid)) {
        return false;
    }
    let f = prog.function(fid);
    for (i, &arg) in args.iter().enumerate() {
        if let Some(&param) = f.params.get(i) {
            extra.push((param, arg));
        } else if let Some(va) = f.varargs {
            extra.push((va, arg));
        }
    }
    if let (Some(r), Some(rs)) = (ret, f.ret_slot) {
        extra.push((r, rs));
    }
    true
}

impl SteensgaardResult {
    /// The objects `obj` may point to: all objects in the equivalence class
    /// of `pts(obj)`.
    pub fn points_to_objects(&self, obj: ObjId) -> Vec<ObjId> {
        let mut ecr = self.ecr.borrow_mut();
        let Some(cls) = ecr.pointee_of(obj.0) else {
            return Vec::new();
        };
        (0..self.n_objects as u32)
            .filter(|&o| ecr.find(o) == cls)
            .map(ObjId)
            .collect()
    }

    /// Sorted names of the objects a named variable may point to.
    pub fn points_to_names(&self, prog: &Program, var: &str) -> Vec<String> {
        let Some(obj) = prog.object_by_name(var) else {
            return Vec::new();
        };
        let set: BTreeSet<String> = self
            .points_to_objects(obj)
            .into_iter()
            .map(|o| prog.object(o).name.clone())
            .collect();
        set.into_iter().collect()
    }

    /// May `a` and `b` point to a common location (same pointee class)?
    pub fn may_alias(&self, a: ObjId, b: ObjId) -> bool {
        let mut ecr = self.ecr.borrow_mut();
        match (ecr.pointee_of(a.0), ecr.pointee_of(b.0)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The Figure 4 metric under this analysis: average weighted points-to
    /// set size per static dereference site, with struct targets expanded
    /// to their leaf counts (the same fairness rule as Collapse-Always).
    pub fn average_deref_size(&self, prog: &Program) -> f64 {
        let sites = prog.deref_sites();
        if sites.is_empty() {
            return 0.0;
        }
        let total: usize = sites
            .iter()
            .map(|(_, ptr)| {
                self.points_to_objects(*ptr)
                    .iter()
                    .map(|&o| {
                        let ty = prog.type_of(o);
                        let stripped = prog.types.strip_arrays(ty);
                        if matches!(prog.types.kind(stripped), TypeKind::Record(_)) {
                            structcast_types::leaves(&prog.types, stripped).len().max(1)
                        } else {
                            1
                        }
                    })
                    .sum::<usize>()
            })
            .sum();
        total as f64 / sites.len() as f64
    }

    /// Number of equivalence classes that contain at least one program
    /// object (a coarse size measure comparable to edge counts).
    pub fn class_count(&self) -> usize {
        let mut ecr = self.ecr.borrow_mut();
        let mut roots = HashSet::new();
        for o in 0..self.n_objects as u32 {
            roots.insert(ecr.find(o));
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structcast_ir::lower_source;

    #[test]
    fn basic_address_flow() {
        let prog = lower_source("int x, *p, *q; void f(void) { p = &x; q = p; }").unwrap();
        let r = steensgaard(&prog);
        assert_eq!(r.points_to_names(&prog, "p"), vec!["x".to_string()]);
        assert_eq!(r.points_to_names(&prog, "q"), vec!["x".to_string()]);
        let p = prog.object_by_name("p").unwrap();
        let q = prog.object_by_name("q").unwrap();
        assert!(r.may_alias(p, q));
    }

    #[test]
    fn unification_merges_unlike_inclusion() {
        // p = &x; p = &y; q = &x — unification puts x and y in one class,
        // so q "points to" both; inclusion (the paper's framework) keeps
        // q → {x} precise. This is the expected precision gap.
        let prog =
            lower_source("int x, y, *p, *q; void f(void) { p = &x; p = &y; q = &x; }").unwrap();
        let r = steensgaard(&prog);
        let q_pts = r.points_to_names(&prog, "q");
        assert!(q_pts.contains(&"x".to_string()));
        assert!(q_pts.contains(&"y".to_string()), "{q_pts:?}");
    }

    #[test]
    fn loads_and_stores() {
        let prog = lower_source(
            "int x, *p, **pp, *q; void f(void) { p = &x; pp = &p; q = *pp; }",
        )
        .unwrap();
        let r = steensgaard(&prog);
        assert!(r
            .points_to_names(&prog, "q")
            .contains(&"x".to_string()));
    }

    #[test]
    fn indirect_calls_resolve() {
        let prog = lower_source(
            "int x; int *get(void) { return &x; }\n\
             int *(*fp)(void); int *r;\n\
             void f(void) { fp = get; r = fp(); }",
        )
        .unwrap();
        let r = steensgaard(&prog);
        assert!(r.resolved_indirect_calls >= 1);
        assert!(r.points_to_names(&prog, "r").contains(&"x".to_string()));
    }

    #[test]
    fn terminates_on_cycles() {
        let prog = lower_source(
            "struct N { struct N *next; } a, b;\n\
             void f(void) { a.next = &b; b.next = &a; a.next = b.next; }",
        )
        .unwrap();
        let r = steensgaard(&prog);
        assert!(r.class_count() > 0);
    }

    #[test]
    fn deref_metric_is_finite() {
        let prog = lower_source(
            "struct S { int *a; int *b; } s, *p; int x;\n\
             void f(void) { p = &s; p->a = &x; }",
        )
        .unwrap();
        let r = steensgaard(&prog);
        let avg = r.average_deref_size(&prog);
        assert!(avg >= 1.0, "{avg}");
    }
}
