//! The `normalize`/`lookup`/`resolve` framework interface (paper §4.2).
//!
//! A [`FieldModel`] supplies the three functions that parameterize the
//! inference rules. The four instances from the paper are in
//! [`crate::models`]; picking one picks an analysis algorithm.

use crate::facts::FactStore;
use crate::loc::Loc;
use structcast_ir::{ObjId, Program};
use structcast_types::{FieldPath, TypeId};

/// Which instance of the framework to run (paper §4.2.2 and §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Collapse every structure to one blob (portable, least precise).
    CollapseAlways,
    /// Keep fields; collapse from the accessed position onward when an
    /// object is accessed at a mismatched type (portable).
    CollapseOnCast,
    /// Like Collapse-on-Cast, but exploit ISO C's common-initial-sequence
    /// layout guarantee (portable, most precise of the portables).
    CommonInitialSeq,
    /// Concrete byte offsets under a chosen layout (most precise, not
    /// portable across layout strategies).
    Offsets,
}

impl ModelKind {
    /// All four instances, in the paper's presentation order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::CollapseAlways,
        ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq,
        ModelKind::Offsets,
    ];

    /// The paper's display name for the instance.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelKind::CollapseAlways => "Collapse Always",
            ModelKind::CollapseOnCast => "Collapse on Cast",
            ModelKind::CommonInitialSeq => "Common Initial Sequence",
            ModelKind::Offsets => "Offsets",
        }
    }

    /// True for the instances whose results are safe under every
    /// ANSI-conforming layout strategy.
    pub fn is_portable(&self) -> bool {
        !matches!(self, ModelKind::Offsets)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Instrumentation counters for Figure 3: how many `lookup`/`resolve` calls
/// involved structures, and how many of those involved a type mismatch
/// (i.e. casting). Calls made *by* `resolve` to `lookup` are not counted,
/// matching the paper's footnote 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Total counted calls to `lookup` (rule 2).
    pub lookup_calls: u64,
    /// ... of which involved structures.
    pub lookup_struct: u64,
    /// ... of which (among struct calls) had mismatched types.
    pub lookup_mismatch: u64,
    /// Total counted calls to `resolve` (rules 3, 4, 5).
    pub resolve_calls: u64,
    /// ... of which involved structures.
    pub resolve_struct: u64,
    /// ... of which (among struct calls) had mismatched types.
    pub resolve_mismatch: u64,
    /// Offset-instance accesses that fell outside the target object and
    /// were dropped under Assumption 1.
    pub out_of_bounds: u64,
}

impl ModelStats {
    /// Percentage of lookup calls involving structures (Fig 3 col 5).
    pub fn lookup_struct_pct(&self) -> f64 {
        pct(self.lookup_struct, self.lookup_calls)
    }

    /// Percentage of resolve calls involving structures (Fig 3 col 6).
    pub fn resolve_struct_pct(&self) -> f64 {
        pct(self.resolve_struct, self.resolve_calls)
    }

    /// Percentage of struct-involving lookups with a type mismatch (col 7).
    pub fn lookup_mismatch_pct(&self) -> f64 {
        pct(self.lookup_mismatch, self.lookup_struct)
    }

    /// Percentage of struct-involving resolves with a type mismatch (col 8).
    pub fn resolve_mismatch_pct(&self) -> f64 {
        pct(self.resolve_mismatch, self.resolve_struct)
    }
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// One instance of the paper's framework: the three auxiliary functions
/// plus the two extension hooks (pointer-arithmetic spread and bulk copy).
///
/// All methods receive the [`Program`] for type information; locations
/// passed in are already normalized (solver invariant).
///
/// Instances are plain data (`Send + Sync`): the parallel solving layer
/// shares one instance across shard workers and ships solved results
/// between threads, so every model must be safely shareable. All methods
/// take `&self`; mutable instrumentation goes through the explicit
/// [`ModelStats`] parameter instead.
pub trait FieldModel: Send + Sync {
    /// Which instance this is.
    fn kind(&self) -> ModelKind;

    /// The paper's `normalize`: canonicalize the structure reference
    /// `obj.path` (where `path` is a declared-type field path).
    fn normalize(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Loc;

    /// The paper's `lookup(τ, α, t.β̂)`: the field(s) of the pointed-to
    /// location `target` actually referenced when a pointer declared to
    /// point to `tau` is dereferenced with field path `alpha`.
    ///
    /// `stats` classifies the call for Figure 3.
    fn lookup(
        &self,
        prog: &Program,
        tau: TypeId,
        alpha: &FieldPath,
        target: &Loc,
        stats: &mut ModelStats,
    ) -> Vec<Loc>;

    /// The paper's `resolve(s.ĵ, t.k̂, τ)`: pairs `(dst_loc, src_loc)` such
    /// that the value at `src_loc` is copied to `dst_loc` when `sizeof(τ)`
    /// bytes are copied from `src` to `dst`.
    ///
    /// The offset instance consults `facts` to enumerate the byte range
    /// lazily (semantically identical to the paper's per-byte pairs).
    fn resolve(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        tau: TypeId,
        facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)>;

    /// Bulk copy of unknown length (`memcpy`): pairs covering everything
    /// from `src` onward into `dst` onward.
    fn resolve_all(
        &self,
        prog: &Program,
        dst: &Loc,
        src: &Loc,
        facts: &FactStore,
        stats: &mut ModelStats,
    ) -> Vec<(Loc, Loc)>;

    /// Pointer-arithmetic spread (§4.2.1): the normalized positions of the
    /// outermost object that the result of arithmetic on a pointer to
    /// `target` could address.
    ///
    /// `pointee` is the declared pointee type of the pointer being moved;
    /// models built with the Wilson–Lam stride refinement (related work §6)
    /// use it to confine the spread to positions reachable in multiples of
    /// `sizeof(pointee)` — without it, every position of the outermost
    /// object is possible.
    fn spread(&self, prog: &Program, target: &Loc, pointee: Option<TypeId>) -> Vec<Loc>;

    /// How many concrete locations a points-to *target* stands for, used to
    /// expand Collapse-Always struct targets when comparing set sizes
    /// (Figure 4's fairness note). All field-sensitive instances return 1.
    fn target_weight(&self, _prog: &Program, _loc: &Loc) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_names_and_portability() {
        assert_eq!(ModelKind::Offsets.paper_name(), "Offsets");
        assert!(!ModelKind::Offsets.is_portable());
        assert!(ModelKind::CommonInitialSeq.is_portable());
        assert_eq!(ModelKind::ALL.len(), 4);
        assert_eq!(format!("{}", ModelKind::CollapseOnCast), "Collapse on Cast");
    }

    #[test]
    fn stats_percentages() {
        let s = ModelStats {
            lookup_calls: 10,
            lookup_struct: 5,
            lookup_mismatch: 2,
            resolve_calls: 0,
            resolve_struct: 0,
            resolve_mismatch: 0,
            out_of_bounds: 0,
        };
        assert!((s.lookup_struct_pct() - 50.0).abs() < 1e-9);
        assert!((s.lookup_mismatch_pct() - 40.0).abs() < 1e-9);
        assert_eq!(s.resolve_struct_pct(), 0.0);
    }
}
