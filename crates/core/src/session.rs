//! The compile-once, solve-many [`AnalysisSession`].
//!
//! The paper's evaluation (Figures 4–6) runs **all four** framework
//! instances over every program. The IR walk, type resolution, and field
//! path interning are identical across instances, so a session hoists them
//! into one [`ConstraintSet`] compilation and lets each
//! [`AnalysisSession::solve`] call pay only for model specialization and
//! the fixpoint itself.

use crate::analysis::{AnalysisConfig, AnalysisResult};
use crate::models::{make_model_with, ModelOptions};
use crate::solver::Solver;
use std::time::Instant;
use structcast_constraints::ConstraintSet;
use structcast_ir::Program;

/// A compiled analysis session over one program: the model-independent
/// constraint form, computed once, plus the program it came from.
///
/// ```text
///   Program ──compile──▶ ConstraintSet ──specialize(model)──▶ solver
///            (once)                      (per solve call)
/// ```
///
/// # Examples
///
/// Solving all four instances through one session compiles the IR exactly
/// once and yields the same results as four independent
/// [`analyze`](crate::analyze) calls:
///
/// ```
/// use structcast::{AnalysisConfig, AnalysisSession, ModelKind};
///
/// let prog = structcast::lower_source(
///     "struct S { int *s1; int *s2; } s;\n\
///      int x, y, *p;\n\
///      void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }",
/// )?;
/// let session = AnalysisSession::compile(&prog);
/// for kind in ModelKind::ALL {
///     let res = session.solve(&AnalysisConfig::new(kind));
///     assert!(res.edge_count() > 0, "{kind}");
/// }
/// // The constraint layer is inspectable: one constraint per statement.
/// assert_eq!(session.constraints().len(), prog.stmts.len());
/// # Ok::<(), structcast::LowerError>(())
/// ```
pub struct AnalysisSession<'p> {
    prog: &'p Program,
    constraints: ConstraintSet,
}

impl<'p> AnalysisSession<'p> {
    /// Stage 1: lowers `prog` into its model-independent constraint form.
    /// This is the only step that walks the IR; every subsequent
    /// [`solve`](AnalysisSession::solve) reuses the compiled set.
    pub fn compile(prog: &'p Program) -> Self {
        AnalysisSession {
            prog,
            constraints: ConstraintSet::compile(prog),
        }
    }

    /// Wraps an externally compiled constraint set (e.g. one that was just
    /// dumped or transformed) instead of recompiling `prog`.
    ///
    /// The set must have been compiled from this exact program; constraint
    /// object/type ids are meaningless against any other.
    pub fn from_parts(prog: &'p Program, constraints: ConstraintSet) -> Self {
        AnalysisSession { prog, constraints }
    }

    /// The program this session was compiled from.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// The shared model-independent constraint form (stage-1 output) —
    /// also the debugging seam: see [`ConstraintSet::dump`].
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Stages 2+3: specializes the shared constraints for `config`'s
    /// instance and runs the difference-propagation solver to fixpoint.
    ///
    /// `AnalysisResult::elapsed` covers specialization + solving (the
    /// per-model cost); the one-time constraint compilation is paid by
    /// [`compile`](AnalysisSession::compile) and shared by every solve.
    pub fn solve(&self, config: &AnalysisConfig) -> AnalysisResult {
        solve_compiled(self.prog, &self.constraints, config)
    }

    /// Solves every instance in [`ModelKind::ALL`](crate::ModelKind::ALL)
    /// order with default options — the common Figure 4–6 shape.
    pub fn solve_all(&self) -> Vec<AnalysisResult> {
        crate::model::ModelKind::ALL
            .iter()
            .map(|k| self.solve(&AnalysisConfig::new(*k)))
            .collect()
    }
}

/// Stages 2+3 against an externally held constraint set: specializes
/// `constraints` for `config`'s instance and runs the solver to fixpoint.
///
/// This is [`AnalysisSession::solve`] without the session wrapper, for
/// callers that keep `Program` and [`ConstraintSet`] in owned storage —
/// the query server's session cache holds both in one map entry and solves
/// on demand, which a borrowing `AnalysisSession<'p>` cannot express.
///
/// `constraints` must have been compiled from this exact `prog`.
pub fn solve_compiled(
    prog: &Program,
    constraints: &ConstraintSet,
    config: &AnalysisConfig,
) -> AnalysisResult {
    let model = make_model_with(
        config.model,
        &ModelOptions {
            layout: config.layout.clone(),
            compat: config.compat,
            arith_stride: config.arith_stride,
        },
    );
    let start = Instant::now();
    let out = Solver::from_constraints(prog, constraints, model)
        .with_arith_mode(config.arith_mode)
        .run();
    let elapsed = start.elapsed();
    AnalysisResult::from_solver(config.model, out, elapsed)
}

impl std::fmt::Debug for AnalysisSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("constraints", &self.constraints.len())
            .field("paths", &self.constraints.num_paths())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use structcast_constraints::compiles_on_thread;

    const SRC: &str = "struct S { int *s1; int *s2; } s;\n\
        int x, y, *p;\n\
        void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";

    #[test]
    fn compile_once_solve_many() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let before = compiles_on_thread();
        let session = AnalysisSession::compile(&prog);
        let results = session.solve_all();
        assert_eq!(
            compiles_on_thread() - before,
            1,
            "4 solves must share one IR->constraint compilation"
        );
        assert_eq!(results.len(), 4);
        for (kind, res) in ModelKind::ALL.iter().zip(&results) {
            assert_eq!(res.kind, *kind);
            assert!(res.edge_count() > 0);
        }
        // CIS stays precise, Collapse-Always merges the fields.
        let names = |i: usize| results[i].points_to_names(&prog, "p");
        assert_eq!(names(2), vec!["x".to_string()]);
        assert_eq!(names(0), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn session_matches_independent_analyze() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let session = AnalysisSession::compile(&prog);
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind);
            let a = session.solve(&cfg);
            let b = crate::analysis::analyze(&prog, &cfg);
            assert_eq!(a.edge_count(), b.edge_count(), "{kind}");
            assert_eq!(a.iterations, b.iterations, "{kind}");
        }
    }

    #[test]
    fn from_parts_reuses_an_external_set(){
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let cset = ConstraintSet::compile(&prog);
        let session = AnalysisSession::from_parts(&prog, cset);
        assert_eq!(session.constraints().len(), prog.stmts.len());
        assert!(session.solve(&AnalysisConfig::default()).edge_count() > 0);
        assert!(format!("{session:?}").contains("AnalysisSession"));
        assert!(std::ptr::eq(session.program(), &prog));
    }
}
