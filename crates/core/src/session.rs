//! The compile-once, solve-many [`AnalysisSession`].
//!
//! The paper's evaluation (Figures 4–6) runs **all four** framework
//! instances over every program. The IR walk, type resolution, and field
//! path interning are identical across instances, so a session hoists them
//! into one [`ConstraintSet`] compilation and lets each
//! [`AnalysisSession::solve`] call pay only for model specialization and
//! the fixpoint itself.

use crate::analysis::{AnalysisConfig, AnalysisResult};
use crate::budget::SolveError;
use crate::models::{make_model_with, ModelOptions};
use crate::solver::Solver;
use std::time::Instant;
use structcast_constraints::ConstraintSet;
use structcast_ir::Program;

/// A compiled analysis session over one program: the model-independent
/// constraint form, computed once, plus the program it came from.
///
/// ```text
///   Program ──compile──▶ ConstraintSet ──specialize(model)──▶ solver
///            (once)                      (per solve call)
/// ```
///
/// # Examples
///
/// Solving all four instances through one session compiles the IR exactly
/// once and yields the same results as four independent
/// [`analyze`](crate::analyze) calls:
///
/// ```
/// use structcast::{AnalysisConfig, AnalysisSession, ModelKind};
///
/// let prog = structcast::lower_source(
///     "struct S { int *s1; int *s2; } s;\n\
///      int x, y, *p;\n\
///      void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }",
/// )?;
/// let session = AnalysisSession::compile(&prog);
/// for kind in ModelKind::ALL {
///     let res = session.solve(&AnalysisConfig::new(kind));
///     assert!(res.edge_count() > 0, "{kind}");
/// }
/// // The constraint layer is inspectable: one constraint per statement.
/// assert_eq!(session.constraints().len(), prog.stmts.len());
/// # Ok::<(), structcast::LowerError>(())
/// ```
pub struct AnalysisSession<'p> {
    prog: &'p Program,
    constraints: ConstraintSet,
}

impl<'p> AnalysisSession<'p> {
    /// Stage 1: lowers `prog` into its model-independent constraint form.
    /// This is the only step that walks the IR; every subsequent
    /// [`solve`](AnalysisSession::solve) reuses the compiled set.
    pub fn compile(prog: &'p Program) -> Self {
        AnalysisSession {
            prog,
            constraints: ConstraintSet::compile(prog),
        }
    }

    /// Wraps an externally compiled constraint set (e.g. one that was just
    /// dumped or transformed) instead of recompiling `prog`.
    ///
    /// The set must have been compiled from this exact program; constraint
    /// object/type ids are meaningless against any other.
    pub fn from_parts(prog: &'p Program, constraints: ConstraintSet) -> Self {
        AnalysisSession { prog, constraints }
    }

    /// The program this session was compiled from.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// The shared model-independent constraint form (stage-1 output) —
    /// also the debugging seam: see [`ConstraintSet::dump`].
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Stages 2+3: specializes the shared constraints for `config`'s
    /// instance and runs the difference-propagation solver to fixpoint.
    ///
    /// `AnalysisResult::elapsed` covers specialization + solving (the
    /// per-model cost); the one-time constraint compilation is paid by
    /// [`compile`](AnalysisSession::compile) and shared by every solve.
    pub fn solve(&self, config: &AnalysisConfig) -> AnalysisResult {
        solve_compiled(self.prog, &self.constraints, config)
    }

    /// [`solve`](AnalysisSession::solve) for budgeted configs. An aborted
    /// solve discards only its own partial state — the session (and its
    /// shared constraint set) stays valid for further solves, budgeted or
    /// not.
    ///
    /// # Errors
    ///
    /// [`SolveError`] when `config.budget` trips before the fixpoint.
    pub fn try_solve(&self, config: &AnalysisConfig) -> Result<AnalysisResult, SolveError> {
        try_solve_compiled(self.prog, &self.constraints, config)
    }

    /// Solves several configurations over the shared constraint set, up to
    /// `threads` of them concurrently — the common Figure 4–6 shape with
    /// multi-model parallelism.
    ///
    /// Results come back in `configs` order regardless of scheduling, and
    /// each is identical to a [`solve`](AnalysisSession::solve) of the same
    /// config (each worker runs the ordinary specialize+solve pipeline on
    /// plain data; nothing is shared but the read-only constraint set).
    /// `threads <= 1` or a single config degenerate to a sequential map.
    /// Solves performed on the workers are credited to the calling
    /// thread's [`solves_on_thread`](crate::solves_on_thread) counter.
    pub fn solve_all(&self, configs: &[AnalysisConfig], threads: usize) -> Vec<AnalysisResult> {
        solve_compiled_parallel(self.prog, &self.constraints, configs, threads)
    }

    /// [`solve_all`](AnalysisSession::solve_all) for budgeted configs:
    /// each config's budget violation is reported in its own slot, and a
    /// tripped budget never aborts the sibling configs — the other solves
    /// run (and are cached by callers) exactly as if the failing config
    /// had not been requested.
    pub fn try_solve_all(
        &self,
        configs: &[AnalysisConfig],
        threads: usize,
    ) -> Vec<Result<AnalysisResult, SolveError>> {
        try_solve_compiled_parallel(self.prog, &self.constraints, configs, threads)
    }

    /// [`solve_all`](AnalysisSession::solve_all) over the four paper
    /// instances with default options, solved concurrently on one thread
    /// per model.
    pub fn solve_all_kinds(&self) -> Vec<AnalysisResult> {
        let configs = AnalysisConfig::default().for_all_kinds();
        self.solve_all(&configs, configs.len())
    }

    /// Demand-driven solve: slices the shared constraint set backward from
    /// `query`'s roots and runs the fixpoint on the slice only. The answer
    /// to `query` is byte-equal to what [`solve`](AnalysisSession::solve)
    /// would report for it; see [`crate::demand`] for the slicing rules.
    pub fn solve_demand(
        &self,
        query: &crate::demand::DemandQuery,
        config: &AnalysisConfig,
    ) -> crate::demand::DemandResult {
        crate::demand::solve_demand_compiled(self.prog, &self.constraints, query, config)
    }

    /// [`solve_demand`](AnalysisSession::solve_demand) for budgeted
    /// configs. The budget governs the sliced solve, so a small-slice
    /// query can succeed under a budget an exhaustive solve would trip.
    ///
    /// # Errors
    ///
    /// [`SolveError`] when `config.budget` trips before the slice's
    /// fixpoint completes.
    pub fn try_solve_demand(
        &self,
        query: &crate::demand::DemandQuery,
        config: &AnalysisConfig,
    ) -> Result<crate::demand::DemandResult, SolveError> {
        crate::demand::try_solve_demand_compiled(self.prog, &self.constraints, query, config)
    }
}

/// Stages 2+3 against an externally held constraint set: specializes
/// `constraints` for `config`'s instance and runs the solver to fixpoint.
///
/// This is [`AnalysisSession::solve`] without the session wrapper, for
/// callers that keep `Program` and [`ConstraintSet`] in owned storage —
/// the query server's session cache holds both in one map entry and solves
/// on demand, which a borrowing `AnalysisSession<'p>` cannot express.
///
/// `constraints` must have been compiled from this exact `prog`.
pub fn solve_compiled(
    prog: &Program,
    constraints: &ConstraintSet,
    config: &AnalysisConfig,
) -> AnalysisResult {
    try_solve_compiled(prog, constraints, config)
        .expect("budgeted config solved through the infallible path; use try_solve_compiled")
}

/// [`solve_compiled`] for budgeted configs: the typed error surfaces
/// instead of panicking when `config.budget` trips.
///
/// # Errors
///
/// [`SolveError`] when the deadline, edge cap, or cancellation flag of
/// `config.budget` fires before the fixpoint completes.
pub fn try_solve_compiled(
    prog: &Program,
    constraints: &ConstraintSet,
    config: &AnalysisConfig,
) -> Result<AnalysisResult, SolveError> {
    let model = make_model_with(
        config.model,
        &ModelOptions {
            layout: config.layout.clone(),
            compat: config.compat,
            arith_stride: config.arith_stride,
        },
    );
    let start = Instant::now();
    let out = Solver::from_constraints(prog, constraints, model)
        .with_arith_mode(config.arith_mode)
        .run_with_threads_budgeted(config.threads, &config.budget)?;
    let elapsed = start.elapsed();
    Ok(AnalysisResult::from_solver(config.model, out, elapsed))
}

/// Multi-model parallelism over an externally held constraint set: solves
/// each of `configs` with [`solve_compiled`], distributing them over up to
/// `threads` scoped worker threads pulling from a shared work index.
///
/// Results are placed by config index, so the output order is `configs`
/// order no matter how the solves interleave. Worker-thread solve counts
/// are measured per worker and credited back to the calling thread, so
/// [`solves_on_thread`](crate::solves_on_thread) deltas observed by the
/// caller include every solve this call performed.
pub fn solve_compiled_parallel(
    prog: &Program,
    constraints: &ConstraintSet,
    configs: &[AnalysisConfig],
    threads: usize,
) -> Vec<AnalysisResult> {
    try_solve_compiled_parallel(prog, constraints, configs, threads)
        .into_iter()
        .map(|r| {
            r.expect("budgeted config solved through the infallible path; use try_solve_compiled_parallel")
        })
        .collect()
}

/// [`solve_compiled_parallel`] for budgeted configs: each config's budget
/// violation is reported in its own output slot, and a tripped budget never
/// aborts sibling configs — the worker that hit it just moves on to the
/// next work item.
pub fn try_solve_compiled_parallel(
    prog: &Program,
    constraints: &ConstraintSet,
    configs: &[AnalysisConfig],
    threads: usize,
) -> Vec<Result<AnalysisResult, SolveError>> {
    if threads <= 1 || configs.len() <= 1 {
        return configs
            .iter()
            .map(|c| try_solve_compiled(prog, constraints, c))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<AnalysisResult, SolveError>>>> =
        configs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let workers = threads.min(configs.len());
    let credited: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let slots = &slots;
                scope.spawn(move || {
                    let before = crate::solver::solves_on_thread();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(config) = configs.get(i) else { break };
                        let res = try_solve_compiled(prog, constraints, config);
                        *slots[i].lock().expect("result slot poisoned") = Some(res);
                    }
                    crate::solver::solves_on_thread() - before
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .sum()
    });
    crate::solver::credit_solves(credited);
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every config solved")
        })
        .collect()
}

impl std::fmt::Debug for AnalysisSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("constraints", &self.constraints.len())
            .field("paths", &self.constraints.num_paths())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use structcast_constraints::compiles_on_thread;

    const SRC: &str = "struct S { int *s1; int *s2; } s;\n\
        int x, y, *p;\n\
        void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";

    #[test]
    fn compile_once_solve_many() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let before = compiles_on_thread();
        let session = AnalysisSession::compile(&prog);
        let results = session.solve_all_kinds();
        assert_eq!(
            compiles_on_thread() - before,
            1,
            "4 solves must share one IR->constraint compilation"
        );
        assert_eq!(results.len(), 4);
        for (kind, res) in ModelKind::ALL.iter().zip(&results) {
            assert_eq!(res.kind, *kind);
            assert!(res.edge_count() > 0);
        }
        // CIS stays precise, Collapse-Always merges the fields.
        let names = |i: usize| results[i].points_to_names(&prog, "p");
        assert_eq!(names(2), vec!["x".to_string()]);
        assert_eq!(names(0), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn solve_all_matches_sequential_solves_and_credits_the_caller() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let session = AnalysisSession::compile(&prog);
        let configs = AnalysisConfig::default().for_all_kinds();
        let before = crate::solver::solves_on_thread();
        let par = session.solve_all(&configs, 4);
        assert_eq!(
            crate::solver::solves_on_thread() - before,
            4,
            "worker-thread solves must be credited to the caller"
        );
        let seq = session.solve_all(&configs, 1);
        assert_eq!(crate::solver::solves_on_thread() - before, 8);
        for ((p, s), cfg) in par.iter().zip(&seq).zip(&configs) {
            assert_eq!(p.kind, cfg.model, "results must come back in config order");
            assert_eq!(p.edge_count(), s.edge_count(), "{}", cfg.model);
            assert_eq!(p.iterations, s.iterations, "{}", cfg.model);
            assert_eq!(
                p.edge_displays(&prog),
                s.edge_displays(&prog),
                "{}",
                cfg.model
            );
        }
    }

    #[test]
    fn solve_all_handles_more_threads_than_configs_and_duplicates() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let session = AnalysisSession::compile(&prog);
        // Duplicate configs are solved independently; extra threads idle.
        let cfg = AnalysisConfig::new(ModelKind::Offsets);
        let configs = vec![cfg.clone(), cfg.clone(), cfg];
        let results = session.solve_all(&configs, 16);
        assert_eq!(results.len(), 3);
        let e = results[0].edge_count();
        assert!(results.iter().all(|r| r.edge_count() == e));
    }

    #[test]
    fn session_matches_independent_analyze() {
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let session = AnalysisSession::compile(&prog);
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind);
            let a = session.solve(&cfg);
            let b = crate::analysis::analyze(&prog, &cfg);
            assert_eq!(a.edge_count(), b.edge_count(), "{kind}");
            assert_eq!(a.iterations, b.iterations, "{kind}");
        }
    }

    #[test]
    fn from_parts_reuses_an_external_set(){
        let prog = structcast_ir::lower_source(SRC).unwrap();
        let cset = ConstraintSet::compile(&prog);
        let session = AnalysisSession::from_parts(&prog, cset);
        assert_eq!(session.constraints().len(), prog.stmts.len());
        assert!(session.solve(&AnalysisConfig::default()).edge_count() > 0);
        assert!(format!("{session:?}").contains("AnalysisSession"));
        assert!(std::ptr::eq(session.program(), &prog));
    }
}
