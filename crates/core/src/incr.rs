//! Incremental re-solving: fact retraction plus a seeded fixpoint.
//!
//! Stage 2 of the incremental pipeline (stage 1 — diffing and constraint
//! reuse — lives in `structcast_constraints::incr`). Given the previous
//! solve's [`AnalysisResult`] and a [`ProgramDiff`] against the edited
//! program, [`resolve_incremental`] computes which facts can survive the
//! edit, discards the rest, and re-runs the difference-propagation
//! fixpoint over only the *dirty region* of the constraint graph. The
//! result is byte-identical to a cold
//! [`solve_compiled`](crate::session::solve_compiled) of the new program.
//!
//! # Retraction soundness
//!
//! Facts are retracted at **object granularity**: the edit seeds a set of
//! dirty objects (everything a *genuinely removed* statement wrote, and
//! every object with no stable identity across the edit), and dirtiness
//! propagates through the constraint graph — any statement *reading* a
//! dirty object marks the objects it *writes* dirty too, to a fixpoint.
//! All facts rooted in dirty objects are dropped; the rest are kept.
//!
//! Two refinements keep the seeds minimal without weakening soundness:
//! an **added** statement never seeds dirtiness (the solver is monotone,
//! so a new derivation can only add facts — the statement is queued and
//! its consequences propagate forward), and a removed statement whose
//! translated constraint still exists verbatim in the new program (a
//! swapped line, a deleted duplicate) seeds nothing, because every
//! derivation it contributed is still contributed by its twin.
//!
//! Keeping a fact `o.f -> t` for a clean `o` is sound in both directions:
//!
//! * **No stale facts**: induct over the old solve's derivation order.
//!   The statement that derived the fact still exists (a removed
//!   statement's writes are dirty seeds, and `o` is clean) and every
//!   input of that derivation is rooted in a clean object (a dirty input
//!   would have propagated to `o`), so by induction each input is itself
//!   still derivable and the cold solve re-derives the fact. Kept facts
//!   are therefore a subset of the cold fixpoint.
//! * **No missing facts**: the solver is monotone, so seeding a subset of
//!   the cold fixpoint and re-running to fixpoint reaches the same least
//!   fixpoint — *provided* every statement re-fires when its inputs grow.
//!   Statements in the dirty region are queued outright; every dormant
//!   statement is statically pre-subscribed to its read objects (and to
//!   the objects behind its seeded dereference targets), so facts growing
//!   on clean objects wake exactly the consumers a cold run would have
//!   woken. Calls inside the region re-synthesize their parameter/return
//!   bindings from scratch; calls outside it have their old call edges
//!   *pre-bound* — the binding copies exist (dormant, watching their
//!   sources for growth) and the reported call-edge set stays identical
//!   to the cold run's without the call constraint ever firing. A
//!   dormant call's function pointer is clean by construction, so its
//!   cold callee set can only extend the carried-over one, and the
//!   subscription on the pointer binds any extension when it appears.
//!
//! When the diff reports a [`ProgramDiff::fallback`] (e.g. a record
//! definition changed, invalidating normalized layouts wholesale), the
//! incremental path degenerates to an honest cold solve and says so in
//! its stats.

use crate::analysis::{AnalysisConfig, AnalysisResult};
use crate::budget::SolveError;
use crate::facts::FactStore;
use crate::loc::Loc;
use crate::models::{make_model_with, ModelOptions};
use crate::session::try_solve_compiled;
use crate::solver::{SeedState, Solver};
use std::time::Instant;
use structcast_constraints::{removed_survivors, Constraint, ConstraintSet, ProgramDiff};
use structcast_ir::{Callee, ObjId, ObjKind, Program, Stmt};
use structcast_types::FieldPath;

/// Accounting for one incremental re-solve, reported by the server's
/// `update` op and the edit-trace bench.
#[derive(Debug, Clone)]
pub struct IncrStats {
    /// Functions whose constraints were reused wholesale.
    pub reused_fns: usize,
    /// Name-matched functions that changed.
    pub dirty_fns: usize,
    /// New-program statements with no old counterpart.
    pub dirty_statements: usize,
    /// Statements in the re-run region (dirty, or reading/writing a
    /// dirty object).
    pub region_statements: usize,
    /// Total statements in the new program.
    pub total_statements: usize,
    /// Old facts dropped by retraction.
    pub retracted_edges: usize,
    /// Old facts carried into the seeded fixpoint.
    pub kept_edges: usize,
    /// `Some(reason)` when the diff forced a cold full solve.
    pub fallback: Option<String>,
}

/// An incremental re-solve: the (cold-identical) analysis result plus the
/// retraction accounting.
#[derive(Debug)]
pub struct IncrSolve {
    /// The re-solved result — byte-identical to a cold solve of the new
    /// program under the same config.
    pub result: AnalysisResult,
    /// What the edit cost.
    pub stats: IncrStats,
    /// New-program statement indices of the re-run region (every
    /// statement in [0, total) under a fallback). A cached answer whose
    /// footprint avoids this set is still valid after the edit — the
    /// serving tier intersects demand slices with it to decide which
    /// cached demand answers survive an update.
    pub region: Vec<u32>,
}

/// Re-solves the edited program from the previous result, retracting only
/// the facts the edit can reach. `old_set` must be the constraint set
/// `old_result` was solved over, `new_set` the new program's compiled
/// constraints (typically from
/// [`compile_incremental`](structcast_constraints::compile_incremental)
/// over the same `diff`), and `old_result` must come from a solve of
/// `old_prog` under this exact `config` (model, layout, compat, stride,
/// and arith mode all participate in fact normalization).
///
/// The seeded fixpoint runs sequentially regardless of `config.threads` —
/// regions are usually small, and the cold/incremental equivalence is
/// thread-count-invariant anyway because both compute the same least
/// fixpoint.
///
/// # Errors
///
/// [`SolveError`] when `config.budget` trips before the region's fixpoint
/// completes.
pub fn resolve_incremental(
    old_prog: &Program,
    old_set: &ConstraintSet,
    old_result: &AnalysisResult,
    new_prog: &Program,
    new_set: &ConstraintSet,
    diff: &ProgramDiff,
    config: &AnalysisConfig,
) -> Result<IncrSolve, SolveError> {
    let total = new_set.len();
    if let Some(reason) = &diff.fallback {
        let result = try_solve_compiled(new_prog, new_set, config)?;
        return Ok(IncrSolve {
            result,
            stats: IncrStats {
                reused_fns: 0,
                dirty_fns: diff.dirty_fns,
                dirty_statements: total,
                region_statements: total,
                total_statements: total,
                retracted_edges: old_result.facts.len(),
                kept_edges: 0,
                fallback: Some(reason.clone()),
            },
            region: (0..total as u32).collect(),
        });
    }

    let inv = diff.inverse_obj_map(new_prog.objects.len());
    // The previous solve's normalization, rebuilt from the (identical)
    // config — needed to read old points-to sets for dereference targets.
    let old_model = make_model_with(
        config.model,
        &ModelOptions {
            layout: config.layout.clone(),
            compat: config.compat,
            arith_stride: config.arith_stride,
        },
    );
    let empty = FieldPath::empty();
    let map_old = |o: ObjId| -> Option<ObjId> { diff.obj_map[o.0 as usize] };
    // Old top-level points-to targets of an *old* object, as new ids.
    let old_pts_of_old = |o: ObjId| -> Vec<ObjId> {
        let l = old_model.normalize(old_prog, o, &empty);
        old_result
            .facts
            .points_to(&l)
            .filter_map(|t| map_old(t.obj))
            .collect()
    };
    // The same for a *new* pointer object, through the inverse map.
    let old_pts_of_new = |n: ObjId| -> Vec<ObjId> {
        match inv[n.0 as usize] {
            Some(o) => old_pts_of_old(o),
            None => Vec::new(),
        }
    };
    // Old resolved callees of an old call site, as new function ids.
    let old_callees = |old_idx: u32| -> Vec<structcast_ir::FuncId> {
        old_result
            .call_edges
            .iter()
            .filter(|(sid, _)| sid.0 == old_idx)
            .filter_map(|(_, fid)| {
                new_prog.as_function(map_old(old_prog.function(*fid).obj)?)
            })
            .collect()
    };

    // Object-granular dataflow rules per new constraint. Each rule is an
    // independent `reads -> writes` edge: a dirty read taints exactly that
    // rule's writes. Calls decompose into one rule *per binding* (arg_k ->
    // param_k, ret_slot -> ret dst), so a single dirty argument does not
    // taint every parameter of the callee — only its own. Dereference
    // writes (Store, CopyAll) use the *old* points-to sets of the pointer;
    // targets the re-run discovers beyond them are handled by the solver's
    // subscriptions, not by the static region.
    struct Rule {
        reads: Vec<ObjId>,
        writes: Vec<ObjId>,
    }
    fn binding_rules(f: &structcast_ir::Function, args: &[ObjId], ret: Option<ObjId>) -> Vec<Rule> {
        let mut rules = Vec::new();
        for (k, &arg) in args.iter().enumerate() {
            let writes = match f.params.get(k) {
                Some(&p) => vec![p],
                None => f.varargs.iter().copied().collect(),
            };
            if !writes.is_empty() {
                rules.push(Rule { reads: vec![arg], writes });
            }
        }
        if let (Some(slot), Some(dst)) = (f.ret_slot, ret) {
            rules.push(Rule { reads: vec![slot], writes: vec![dst] });
        }
        rules
    }
    let pair_of_new = diff.pair_of_new(total);
    let mut rules: Vec<Vec<Rule>> = Vec::with_capacity(total);
    for (i, c) in new_set.constraints().iter().enumerate() {
        let rs = match c {
            Constraint::AddrOf { dst, .. } => {
                vec![Rule { reads: Vec::new(), writes: vec![*dst] }]
            }
            Constraint::AddrField { dst, ptr, .. } => {
                vec![Rule { reads: vec![*ptr], writes: vec![*dst] }]
            }
            Constraint::Copy { dst, src, .. } => {
                vec![Rule { reads: vec![src.obj], writes: vec![*dst] }]
            }
            Constraint::Load { dst, ptr, .. } => {
                let mut r = vec![*ptr];
                r.extend(old_pts_of_new(*ptr));
                vec![Rule { reads: r, writes: vec![*dst] }]
            }
            Constraint::Store { ptr, src, .. } => {
                vec![Rule { reads: vec![*ptr, *src], writes: old_pts_of_new(*ptr) }]
            }
            Constraint::PtrArith { dst, src, .. } => {
                vec![Rule { reads: vec![*src], writes: vec![*dst] }]
            }
            Constraint::CopyAll { dst_ptr, src_ptr } => {
                let mut r = vec![*dst_ptr, *src_ptr];
                r.extend(old_pts_of_new(*src_ptr));
                vec![Rule { reads: r, writes: old_pts_of_new(*dst_ptr) }]
            }
            Constraint::CallDirect { fid, args, ret } => {
                binding_rules(new_prog.function(*fid), args, *ret)
            }
            Constraint::CallIndirect { ptr, args, ret } => {
                // Per-binding rules against the old resolution, plus a
                // gating rule: a dirty function pointer may change the
                // callee set, so it taints every binding target.
                let mut rs = Vec::new();
                let mut gated: Vec<ObjId> = ret.iter().copied().collect();
                if let Some(oi) = pair_of_new[i] {
                    for fid in old_callees(oi) {
                        let f = new_prog.function(fid);
                        gated.extend(f.params.iter().copied());
                        gated.extend(f.varargs);
                        rs.extend(binding_rules(f, args, *ret));
                    }
                }
                rs.push(Rule { reads: vec![*ptr], writes: gated });
                rs
            }
        };
        rules.push(rs);
    }

    // Dirty-object seeds. Only *deleted derivations* can invalidate old
    // facts — solving is monotone, so an added statement needs no
    // retraction at all (it is queued and its consequences propagate
    // forward). Seeds are therefore: objects with no cross-edit identity
    // (their facts cannot be kept anyway, and their writers must re-run),
    // and everything a *genuinely* removed old statement wrote. A removed
    // statement whose translated constraint still exists verbatim in the
    // new program (a swapped line, a deleted duplicate) deleted nothing.
    let survivors = removed_survivors(old_prog, old_set, new_prog, new_set, diff);
    // Unnamed objects (temps, heap sites, string literals) that appear
    // *only* in added statements are pure additions: they carry no old
    // facts, all their derivations are queued, and nothing dormant can
    // bind them — so they need no retraction seed. An unmapped unnamed
    // object that a *paired* statement touches is different: the pairing
    // may have crossed identities, so it stays a seed.
    let mut is_dirty_stmt = vec![false; total];
    for &j in &diff.dirty_stmts {
        is_dirty_stmt[j as usize] = true;
    }
    let mut fresh = vec![true; new_prog.objects.len()];
    for (i, c) in new_set.constraints().iter().enumerate() {
        if is_dirty_stmt[i] {
            continue;
        }
        for o in constraint_operands(c) {
            fresh[o.0 as usize] = false;
        }
    }
    let mut dirty = vec![false; new_prog.objects.len()];
    for (j, o) in inv.iter().enumerate() {
        if o.is_some() {
            continue;
        }
        let unnamed = matches!(
            new_prog.objects[j].kind,
            ObjKind::Temp(_) | ObjKind::Heap(_) | ObjKind::StringLit
        );
        if !(unnamed && fresh[j]) {
            dirty[j] = true;
        }
    }
    for (k, &oi) in diff.removed_stmts.iter().enumerate() {
        if survivors.get(k).copied().unwrap_or(false) {
            continue;
        }
        for w in removed_stmt_writes(old_prog, oi, &map_old, &old_pts_of_old, &old_callees, new_prog)
        {
            dirty[w.0 as usize] = true;
        }
    }

    // Propagate: a statement reading a dirty object taints its writes.
    // Then defensively re-dirty sources whose kept facts point at objects
    // with no new identity (those facts cannot be translated, so their
    // root must be re-derived), and iterate until stable.
    loop {
        loop {
            let mut changed = false;
            for rs in &rules {
                for rule in rs {
                    if rule.reads.iter().any(|o| dirty[o.0 as usize]) {
                        for w in &rule.writes {
                            let wi = w.0 as usize;
                            if !dirty[wi] {
                                dirty[wi] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut extra = false;
        for (src, tgt) in old_result.facts.iter() {
            let Some(ns) = map_old(src.obj) else { continue };
            if !dirty[ns.0 as usize] && map_old(tgt.obj).is_none() {
                dirty[ns.0 as usize] = true;
                extra = true;
            }
        }
        if !extra {
            break;
        }
    }

    // The re-run region: dirty (new/changed) statements plus anything
    // touching a dirty object. Calls outside the region keep their old
    // resolution: the translated call edges are pre-bound in the seeded
    // solver, so their bindings exist (dormant, source-subscribed) and
    // the reported call-edge set stays complete without re-firing them.
    let mut in_region = vec![false; total];
    for &j in &diff.dirty_stmts {
        in_region[j as usize] = true;
    }
    for (i, rs) in rules.iter().enumerate() {
        if rs.iter().any(|rule| {
            rule.reads.iter().any(|o| dirty[o.0 as usize])
                || rule.writes.iter().any(|o| dirty[o.0 as usize])
        }) {
            in_region[i] = true;
        }
    }
    let mut bound: Vec<(u32, structcast_ir::FuncId)> = Vec::new();
    for (i, c) in new_set.constraints().iter().enumerate() {
        if in_region[i] {
            continue;
        }
        match c {
            Constraint::CallDirect { fid, .. } => bound.push((i as u32, *fid)),
            Constraint::CallIndirect { .. } => {
                if let Some(oi) = pair_of_new[i] {
                    bound.extend(old_callees(oi).into_iter().map(|f| (i as u32, f)));
                }
            }
            _ => {}
        }
    }
    let queue: Vec<u32> = (0..total as u32)
        .filter(|&i| in_region[i as usize])
        .collect();
    let region = queue.clone();
    let region_statements = queue.len();

    // Retraction: keep facts rooted in clean objects, translated.
    let mut kept = FactStore::new();
    let mut kept_edges = 0usize;
    for (src, tgt) in old_result.facts.iter() {
        let (Some(ns), Some(nt)) = (map_old(src.obj), map_old(tgt.obj)) else { continue };
        if dirty[ns.0 as usize] {
            continue;
        }
        kept.insert(
            Loc { obj: ns, field: src.field.clone() },
            Loc { obj: nt, field: tgt.field.clone() },
        );
        kept_edges += 1;
    }
    let retracted_edges = old_result.facts.len() - kept_edges;
    let unknown: Vec<Loc> = old_result
        .unknown
        .iter()
        .filter_map(|l| {
            let ns = map_old(l.obj)?;
            (!dirty[ns.0 as usize]).then(|| Loc { obj: ns, field: l.field.clone() })
        })
        .collect();

    let model = make_model_with(
        config.model,
        &ModelOptions {
            layout: config.layout.clone(),
            compat: config.compat,
            arith_stride: config.arith_stride,
        },
    );
    let start = Instant::now();
    let out = Solver::from_constraints_seeded(
        new_prog,
        new_set,
        model,
        SeedState { facts: kept, unknown, queue, bound },
    )
    .with_arith_mode(config.arith_mode)
    .run_budgeted(&config.budget)?;
    let result = AnalysisResult::from_solver(config.model, out, start.elapsed());
    Ok(IncrSolve {
        result,
        stats: IncrStats {
            reused_fns: diff.reused_fns,
            dirty_fns: diff.dirty_fns,
            dirty_statements: diff.dirty_stmts.len(),
            region_statements,
            total_statements: total,
            retracted_edges,
            kept_edges,
            fallback: None,
        },
        region,
    })
}

/// The syntactic operand objects of one constraint (no dereference
/// expansion — this is the "does a paired statement touch this object at
/// all" test behind the fresh-object seed exclusion).
fn constraint_operands(c: &Constraint) -> Vec<ObjId> {
    match c {
        Constraint::AddrOf { dst, src } => vec![*dst, src.obj],
        Constraint::AddrField { dst, ptr, .. } => vec![*dst, *ptr],
        Constraint::Copy { dst, src, .. } => vec![*dst, src.obj],
        Constraint::Load { dst, ptr, .. } => vec![*dst, *ptr],
        Constraint::Store { ptr, src, .. } => vec![*ptr, *src],
        Constraint::PtrArith { dst, src, .. } => vec![*dst, *src],
        Constraint::CopyAll { dst_ptr, src_ptr } => vec![*dst_ptr, *src_ptr],
        Constraint::CallDirect { args, ret, .. } => {
            let mut v = args.clone();
            v.extend(ret.iter().copied());
            v
        }
        Constraint::CallIndirect { ptr, args, ret } => {
            let mut v = vec![*ptr];
            v.extend(args.iter().copied());
            v.extend(ret.iter().copied());
            v
        }
    }
}

/// The (new-id) objects a removed old statement wrote — dirty seeds,
/// since their old derivations no longer exist. Dereference writes use
/// the old solve's points-to sets; call writes use the old resolved call
/// edges (both translated through the object map; targets without a new
/// identity need no seeding — they don't exist to hold stale facts).
fn removed_stmt_writes(
    old_prog: &Program,
    oi: u32,
    map_old: &impl Fn(ObjId) -> Option<ObjId>,
    old_pts_of_old: &impl Fn(ObjId) -> Vec<ObjId>,
    old_callees: &impl Fn(u32) -> Vec<structcast_ir::FuncId>,
    new_prog: &Program,
) -> Vec<ObjId> {
    match &old_prog.stmts[oi as usize] {
        Stmt::AddrOf { dst, .. }
        | Stmt::AddrField { dst, .. }
        | Stmt::Copy { dst, .. }
        | Stmt::Load { dst, .. }
        | Stmt::PtrArith { dst, .. } => map_old(*dst).into_iter().collect(),
        Stmt::Store { ptr, .. } => old_pts_of_old(*ptr),
        Stmt::CopyAll { dst_ptr, .. } => old_pts_of_old(*dst_ptr),
        Stmt::Call { callee, ret, .. } => {
            let mut w: Vec<ObjId> = ret.iter().filter_map(|r| map_old(*r)).collect();
            let mut callees = old_callees(oi);
            if let Callee::Direct(f) = callee {
                if let Some(nf) = map_old(old_prog.function(*f).obj).and_then(|o| new_prog.as_function(o)) {
                    callees.push(nf);
                }
            }
            for fid in callees {
                let f = new_prog.function(fid);
                w.extend(f.params.iter().copied());
                w.extend(f.varargs);
            }
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::session::solve_compiled;
    use structcast_constraints::{compile_incremental, diff_programs};

    fn check_edit(old_src: &str, new_src: &str) -> IncrStats {
        let old = structcast_ir::lower_source(old_src).unwrap();
        let new = structcast_ir::lower_source(new_src).unwrap();
        let old_set = ConstraintSet::compile(&old);
        let new_cold_set = ConstraintSet::compile(&new);
        let diff = diff_programs(&old, &new);
        let (new_set, _) = compile_incremental(&old, &old_set, &new, &diff);
        let mut last = None;
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind);
            let old_res = solve_compiled(&old, &old_set, &cfg);
            let inc = resolve_incremental(&old, &old_set, &old_res, &new, &new_set, &diff, &cfg).unwrap();
            let cold = solve_compiled(&new, &new_cold_set, &cfg);
            assert_eq!(
                inc.result.edge_displays(&new),
                cold.edge_displays(&new),
                "{kind}: incremental edges must match cold"
            );
            assert_eq!(inc.result.call_edges, cold.call_edges, "{kind}");
            assert_eq!(inc.result.unknown, cold.unknown, "{kind}");
            last = Some(inc.stats);
        }
        last.unwrap()
    }

    const BASE: &str = "struct S { int *s1; int *s2; } s;\n\
         int x, y, z, *p, *q;\n\
         void f(void) { s.s1 = &x; p = s.s1; }\n\
         void g(void) { q = &y; }";

    #[test]
    fn no_edit_keeps_everything() {
        let stats = check_edit(BASE, BASE);
        assert_eq!(stats.retracted_edges, 0, "{stats:?}");
        assert_eq!(stats.dirty_statements, 0);
        assert!(stats.kept_edges > 0);
        assert!(stats.fallback.is_none());
    }

    #[test]
    fn single_function_edit_resolves_incrementally() {
        let edited = "struct S { int *s1; int *s2; } s;\n\
             int x, y, z, *p, *q;\n\
             void f(void) { s.s1 = &x; p = s.s1; }\n\
             void g(void) { q = &z; }";
        let stats = check_edit(BASE, edited);
        assert_eq!(stats.reused_fns, 1, "{stats:?}");
        assert_eq!(stats.dirty_fns, 1);
        assert!(stats.retracted_edges > 0, "{stats:?}");
        assert!(stats.kept_edges > 0, "f's facts survive: {stats:?}");
        assert!(
            stats.region_statements < stats.total_statements,
            "{stats:?}"
        );
    }

    #[test]
    fn edits_through_calls_and_function_pointers() {
        let old_src = "int x, y; int *gp;\n\
             int *mk(void) { return &x; }\n\
             int *(*fp)(void);\n\
             void main(void) { fp = mk; gp = fp(); }";
        let new_src = "int x, y; int *gp;\n\
             int *mk(void) { return &y; }\n\
             int *(*fp)(void);\n\
             void main(void) { fp = mk; gp = fp(); }";
        let stats = check_edit(old_src, new_src);
        assert!(stats.fallback.is_none(), "{stats:?}");
    }

    #[test]
    fn record_change_falls_back_to_cold() {
        let edited = "struct S { int *s1; } s;\n\
             int x, y, z, *p, *q;\n\
             void f(void) { s.s1 = &x; p = s.s1; }\n\
             void g(void) { q = &y; }";
        let stats = check_edit(BASE, edited);
        assert!(stats.fallback.is_some(), "{stats:?}");
        assert_eq!(stats.kept_edges, 0);
    }

    #[test]
    fn heap_and_store_edits_stay_equivalent() {
        let old_src = "struct N { struct N *next; int *d; };\n\
             struct N *head; int a, b;\n\
             void push(void) {\n\
               struct N *n = (struct N*)malloc(16);\n\
               n->d = &a; n->next = head; head = n;\n\
             }\n\
             void other(void) { head->d = &a; }";
        let new_src = "struct N { struct N *next; int *d; };\n\
             struct N *head; int a, b;\n\
             void push(void) {\n\
               struct N *n = (struct N*)malloc(16);\n\
               n->d = &b; n->next = head; head = n;\n\
             }\n\
             void other(void) { head->d = &a; }";
        let stats = check_edit(old_src, new_src);
        assert!(stats.fallback.is_none(), "{stats:?}");
    }

    #[test]
    fn flag_unknown_mode_stays_equivalent() {
        use crate::solver::ArithMode;
        let old_src = "int buf[8]; int *p, *q; void f(void) { p = buf; q = p + 1; }";
        let new_src = "int buf[8]; int *p, *q, *r; void f(void) { p = buf; q = p + 1; r = q; }";
        let old = structcast_ir::lower_source(old_src).unwrap();
        let new = structcast_ir::lower_source(new_src).unwrap();
        let old_set = ConstraintSet::compile(&old);
        let diff = diff_programs(&old, &new);
        let (new_set, _) = compile_incremental(&old, &old_set, &new, &diff);
        for kind in ModelKind::ALL {
            let cfg = AnalysisConfig::new(kind).with_arith_mode(ArithMode::FlagUnknown);
            let old_res = solve_compiled(&old, &old_set, &cfg);
            let inc = resolve_incremental(&old, &old_set, &old_res, &new, &new_set, &diff, &cfg).unwrap();
            let cold = solve_compiled(&new, &ConstraintSet::compile(&new), &cfg);
            assert_eq!(inc.result.edge_displays(&new), cold.edge_displays(&new), "{kind}");
            assert_eq!(inc.result.unknown, cold.unknown, "{kind}");
        }
    }
}
