//! The points-to fact store.
//!
//! Facts are edges `pointsTo(src, tgt)` between normalized [`Loc`]s, with a
//! per-object index so the solver can re-fire statements when any fact
//! rooted in an object they consume changes, and so the "Offsets" instance
//! can enumerate fact sources within a byte range lazily.

use crate::loc::{FieldRep, Loc};
use std::collections::{BTreeSet, HashMap};
use structcast_ir::ObjId;

/// A set of `pointsTo` facts with source-object indexing.
#[derive(Debug, Clone, Default)]
pub struct FactStore {
    pts: HashMap<Loc, BTreeSet<Loc>>,
    /// Source locations that have at least one fact, grouped by object.
    sources_by_obj: HashMap<ObjId, BTreeSet<Loc>>,
    edges: usize,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FactStore::default()
    }

    /// Records `pointsTo(src, tgt)`. Returns true if the fact is new.
    pub fn insert(&mut self, src: Loc, tgt: Loc) -> bool {
        let set = self.pts.entry(src.clone()).or_default();
        if set.insert(tgt) {
            self.edges += 1;
            self.sources_by_obj
                .entry(src.obj)
                .or_default()
                .insert(src);
            true
        } else {
            false
        }
    }

    /// The points-to set of `src` (empty if none).
    pub fn points_to(&self, src: &Loc) -> impl Iterator<Item = &Loc> + '_ {
        self.pts.get(src).into_iter().flatten()
    }

    /// Number of targets of `src`.
    pub fn points_to_len(&self, src: &Loc) -> usize {
        self.pts.get(src).map_or(0, |s| s.len())
    }

    /// A snapshot of the points-to set of `src` (for iteration while
    /// mutating the store).
    pub fn points_to_vec(&self, src: &Loc) -> Vec<Loc> {
        self.pts.get(src).map_or_else(Vec::new, |s| s.iter().cloned().collect())
    }

    /// All source locations within `obj` that currently have facts.
    pub fn sources_in(&self, obj: ObjId) -> Vec<Loc> {
        self.sources_by_obj
            .get(&obj)
            .map_or_else(Vec::new, |s| s.iter().cloned().collect())
    }

    /// Source locations in `obj` whose byte offset lies in `[lo, hi)`
    /// (offset-instance helper; non-offset locations are skipped).
    pub fn sources_in_range(&self, obj: ObjId, lo: u64, hi: u64) -> Vec<Loc> {
        self.sources_in(obj)
            .into_iter()
            .filter(|l| match l.field {
                FieldRep::Off(o) => o >= lo && o < hi,
                _ => false,
            })
            .collect()
    }

    /// Total number of points-to edges (Figure 6's metric).
    pub fn len(&self) -> usize {
        self.edges
    }

    /// True if no facts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges == 0
    }

    /// Iterates over all `(src, tgt)` edges.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &Loc)> + '_ {
        self.pts
            .iter()
            .flat_map(|(s, ts)| ts.iter().map(move |t| (s, t)))
    }

    /// All distinct source locations.
    pub fn sources(&self) -> impl Iterator<Item = &Loc> + '_ {
        self.pts.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(o: u32, off: u64) -> Loc {
        Loc::off(ObjId(o), off)
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let mut fs = FactStore::new();
        assert!(fs.insert(l(0, 0), l(1, 0)));
        assert!(!fs.insert(l(0, 0), l(1, 0)));
        assert!(fs.insert(l(0, 0), l(2, 4)));
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.points_to_len(&l(0, 0)), 2);
        assert_eq!(fs.points_to_len(&l(9, 0)), 0);
        assert!(!fs.is_empty());
    }

    #[test]
    fn range_queries() {
        let mut fs = FactStore::new();
        fs.insert(l(0, 0), l(1, 0));
        fs.insert(l(0, 4), l(1, 0));
        fs.insert(l(0, 8), l(1, 0));
        fs.insert(l(2, 4), l(1, 0));
        let in_range = fs.sources_in_range(ObjId(0), 0, 8);
        assert_eq!(in_range.len(), 2);
        assert!(in_range.contains(&l(0, 0)));
        assert!(in_range.contains(&l(0, 4)));
        assert_eq!(fs.sources_in(ObjId(0)).len(), 3);
        assert_eq!(fs.sources_in(ObjId(7)).len(), 0);
    }

    #[test]
    fn range_query_skips_path_locs() {
        let mut fs = FactStore::new();
        fs.insert(
            Loc::path(ObjId(0), structcast_types::FieldPath::empty()),
            l(1, 0),
        );
        assert!(fs.sources_in_range(ObjId(0), 0, 100).is_empty());
        assert_eq!(fs.sources_in(ObjId(0)).len(), 1);
    }

    #[test]
    fn edge_iteration() {
        let mut fs = FactStore::new();
        fs.insert(l(0, 0), l(1, 0));
        fs.insert(l(0, 0), l(2, 0));
        fs.insert(l(3, 0), l(1, 0));
        assert_eq!(fs.iter().count(), 3);
        assert_eq!(fs.sources().count(), 2);
    }
}
