//! The points-to fact store.
//!
//! Facts are edges `pointsTo(src, tgt)` between normalized [`Loc`]s. The
//! store owns an interner mapping each distinct `Loc` to a dense
//! [`LocId`], and keeps one append-ordered target list per source id plus
//! a global edge set for O(1) dedup. Append order is what makes the
//! solver's *difference propagation* work: a subscriber remembers how far
//! into a target list it has read (its cursor) and `targets_from` hands it
//! exactly the facts added since, each drained once.
//!
//! The `Loc`-keyed query API of the original `HashMap<Loc, BTreeSet<Loc>>`
//! store is preserved on top of the id layer, so clients (the driver, the
//! figure benches, MOD/REF) are unchanged.

use crate::loc::{FieldRep, Loc, LocId};
use std::collections::{HashMap, HashSet};
use structcast_ir::ObjId;

/// A set of `pointsTo` facts with source-object indexing and dense
/// location interning.
#[derive(Debug, Clone, Default)]
pub struct FactStore {
    /// `Loc` → dense id.
    intern: HashMap<Loc, LocId>,
    /// Reverse side table: id → `Loc` (ids are indices).
    locs: Vec<Loc>,
    /// Per-source target list in *append order*, deduplicated via
    /// `edge_set`. Indexed by source `LocId`.
    targets: Vec<Vec<LocId>>,
    /// All `(src, tgt)` pairs, packed as `src << 32 | tgt`.
    edge_set: HashSet<u64>,
    /// Source locations that have at least one fact, grouped by object,
    /// in first-fact order.
    sources_by_obj: HashMap<ObjId, Vec<LocId>>,
    edges: usize,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FactStore::default()
    }

    // ----- interner -----

    /// Interns `loc`, returning its dense id. Ids are assigned in first-use
    /// order and are stable for the lifetime of the store (one solver run).
    pub fn intern(&mut self, loc: Loc) -> LocId {
        if let Some(&id) = self.intern.get(&loc) {
            return id;
        }
        let id = LocId(self.locs.len() as u32);
        self.intern.insert(loc.clone(), id);
        self.locs.push(loc);
        self.targets.push(Vec::new());
        id
    }

    /// The id of `loc`, if it has been interned.
    pub fn try_id(&self, loc: &Loc) -> Option<LocId> {
        self.intern.get(loc).copied()
    }

    /// The location behind an id (reverse side table).
    pub fn loc(&self, id: LocId) -> &Loc {
        &self.locs[id.index()]
    }

    /// The containing object of an interned location.
    pub fn obj_of(&self, id: LocId) -> ObjId {
        self.locs[id.index()].obj
    }

    /// Number of interned locations.
    pub fn num_locs(&self) -> usize {
        self.locs.len()
    }

    // ----- id-level fact API (the solver's hot path) -----

    /// Records `pointsTo(src, tgt)` by id. Returns true if the fact is new.
    pub fn insert_ids(&mut self, src: LocId, tgt: LocId) -> bool {
        let key = ((src.0 as u64) << 32) | tgt.0 as u64;
        if !self.edge_set.insert(key) {
            return false;
        }
        self.edges += 1;
        let list = &mut self.targets[src.index()];
        if list.is_empty() {
            self.sources_by_obj
                .entry(self.locs[src.index()].obj)
                .or_default()
                .push(src);
        }
        list.push(tgt);
        true
    }

    /// Number of targets of `src` so far (a subscriber's cursor bound).
    pub fn targets_len(&self, src: LocId) -> usize {
        self.targets[src.index()].len()
    }

    /// The `k`-th target of `src` in append order.
    pub fn target_at(&self, src: LocId, k: usize) -> LocId {
        self.targets[src.index()][k]
    }

    /// The targets of `src` added at or after position `from` — the
    /// *delta* a subscriber whose cursor is `from` has not consumed yet.
    pub fn targets_from(&self, src: LocId, from: usize) -> &[LocId] {
        &self.targets[src.index()][from..]
    }

    // ----- Loc-level API (queries and clients; unchanged surface) -----

    /// Records `pointsTo(src, tgt)`. Returns true if the fact is new.
    pub fn insert(&mut self, src: Loc, tgt: Loc) -> bool {
        let s = self.intern(src);
        let t = self.intern(tgt);
        self.insert_ids(s, t)
    }

    /// The points-to set of `src` (empty if none), in append order.
    pub fn points_to(&self, src: &Loc) -> impl Iterator<Item = &Loc> + '_ {
        self.try_id(src)
            .into_iter()
            .flat_map(move |id| self.targets[id.index()].iter().map(|t| self.loc(*t)))
    }

    /// Number of targets of `src`.
    pub fn points_to_len(&self, src: &Loc) -> usize {
        self.try_id(src).map_or(0, |id| self.targets[id.index()].len())
    }

    /// A snapshot of the points-to set of `src`, sorted by location (the
    /// order the original `BTreeSet`-backed store produced).
    pub fn points_to_vec(&self, src: &Loc) -> Vec<Loc> {
        let mut v: Vec<Loc> = self.points_to(src).cloned().collect();
        v.sort();
        v
    }

    /// All source locations within `obj` that currently have facts, in
    /// first-fact order.
    pub fn sources_in(&self, obj: ObjId) -> Vec<Loc> {
        self.sources_by_obj.get(&obj).map_or_else(Vec::new, |ids| {
            ids.iter().map(|&i| self.locs[i.index()].clone()).collect()
        })
    }

    /// Source locations in `obj` whose byte offset lies in `[lo, hi)`
    /// (offset-instance helper; non-offset locations are skipped).
    pub fn sources_in_range(&self, obj: ObjId, lo: u64, hi: u64) -> Vec<Loc> {
        self.sources_by_obj.get(&obj).map_or_else(Vec::new, |ids| {
            ids.iter()
                .filter_map(|&i| {
                    let l = &self.locs[i.index()];
                    match l.field {
                        FieldRep::Off(o) if o >= lo && o < hi => Some(l.clone()),
                        _ => None,
                    }
                })
                .collect()
        })
    }

    /// Total number of points-to edges (Figure 6's metric).
    pub fn len(&self) -> usize {
        self.edges
    }

    /// True if no facts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges == 0
    }

    /// Iterates over all `(src, tgt)` edges.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &Loc)> + '_ {
        self.targets.iter().enumerate().flat_map(move |(s, ts)| {
            ts.iter().map(move |t| (&self.locs[s], self.loc(*t)))
        })
    }

    /// All distinct source locations with at least one fact.
    pub fn sources(&self) -> impl Iterator<Item = &Loc> + '_ {
        self.targets
            .iter()
            .enumerate()
            .filter(|(_, ts)| !ts.is_empty())
            .map(move |(s, _)| &self.locs[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(o: u32, off: u64) -> Loc {
        Loc::off(ObjId(o), off)
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let mut fs = FactStore::new();
        assert!(fs.insert(l(0, 0), l(1, 0)));
        assert!(!fs.insert(l(0, 0), l(1, 0)));
        assert!(fs.insert(l(0, 0), l(2, 4)));
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.points_to_len(&l(0, 0)), 2);
        assert_eq!(fs.points_to_len(&l(9, 0)), 0);
        assert!(!fs.is_empty());
    }

    #[test]
    fn range_queries() {
        let mut fs = FactStore::new();
        fs.insert(l(0, 0), l(1, 0));
        fs.insert(l(0, 4), l(1, 0));
        fs.insert(l(0, 8), l(1, 0));
        fs.insert(l(2, 4), l(1, 0));
        let in_range = fs.sources_in_range(ObjId(0), 0, 8);
        assert_eq!(in_range.len(), 2);
        assert!(in_range.contains(&l(0, 0)));
        assert!(in_range.contains(&l(0, 4)));
        assert_eq!(fs.sources_in(ObjId(0)).len(), 3);
        assert_eq!(fs.sources_in(ObjId(7)).len(), 0);
    }

    #[test]
    fn range_query_skips_path_locs() {
        let mut fs = FactStore::new();
        fs.insert(
            Loc::path(ObjId(0), structcast_types::FieldPath::empty()),
            l(1, 0),
        );
        assert!(fs.sources_in_range(ObjId(0), 0, 100).is_empty());
        assert_eq!(fs.sources_in(ObjId(0)).len(), 1);
    }

    #[test]
    fn edge_iteration() {
        let mut fs = FactStore::new();
        fs.insert(l(0, 0), l(1, 0));
        fs.insert(l(0, 0), l(2, 0));
        fs.insert(l(3, 0), l(1, 0));
        assert_eq!(fs.iter().count(), 3);
        assert_eq!(fs.sources().count(), 2);
    }

    #[test]
    fn interner_ids_are_dense_and_stable() {
        let mut fs = FactStore::new();
        let a = fs.intern(l(0, 0));
        let b = fs.intern(l(1, 4));
        let a2 = fs.intern(l(0, 0));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(fs.num_locs(), 2);
        assert_eq!(fs.loc(a), &l(0, 0));
        assert_eq!(fs.obj_of(b), ObjId(1));
        assert_eq!(fs.try_id(&l(1, 4)), Some(b));
        assert_eq!(fs.try_id(&l(9, 9)), None);
    }

    #[test]
    fn delta_drains_exactly_once_per_cursor_advance() {
        // Simulates one subscriber's wake cycle: read the delta, advance
        // the cursor to the list length, and verify nothing is re-delivered
        // until new facts arrive.
        let mut fs = FactStore::new();
        let src = fs.intern(l(0, 0));
        let t1 = fs.intern(l(1, 0));
        let t2 = fs.intern(l(2, 0));
        let t3 = fs.intern(l(3, 0));

        assert!(fs.insert_ids(src, t1));
        assert!(fs.insert_ids(src, t2));
        let mut cursor = 0usize;

        // First wake: the delta is everything so far.
        assert_eq!(fs.targets_from(src, cursor), &[t1, t2]);
        cursor = fs.targets_len(src);

        // Drained: a second read at the advanced cursor delivers nothing.
        assert!(fs.targets_from(src, cursor).is_empty());

        // Duplicate insert produces no delta...
        assert!(!fs.insert_ids(src, t1));
        assert!(fs.targets_from(src, cursor).is_empty());

        // ...a genuinely new fact produces exactly that fact, once.
        assert!(fs.insert_ids(src, t3));
        assert_eq!(fs.targets_from(src, cursor), &[t3]);
        cursor = fs.targets_len(src);
        assert!(fs.targets_from(src, cursor).is_empty());
        assert_eq!(fs.target_at(src, 2), t3);
    }
}
