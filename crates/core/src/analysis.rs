//! The top-level analysis API: configure an instance, run it, query the
//! results.

use crate::budget::{Budget, SolveError};
use crate::facts::FactStore;
use crate::loc::Loc;
use crate::model::{FieldModel, ModelKind, ModelStats};
use crate::solver::ArithMode;
use std::collections::BTreeSet;
use std::time::Duration;
use structcast_ir::{ObjId, Program, StmtId};
use structcast_types::{CompatMode, FieldPath, Layout};

/// Configuration for one analysis run.
///
/// # Examples
///
/// ```
/// use structcast::{AnalysisConfig, ModelKind};
/// let cfg = AnalysisConfig::new(ModelKind::Offsets);
/// assert_eq!(cfg.model, ModelKind::Offsets);
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Which framework instance to run.
    pub model: ModelKind,
    /// Layout strategy (consulted by the Offsets instance only).
    pub layout: Layout,
    /// Type-compatibility mode for the portable instances.
    pub compat: CompatMode,
    /// Wilson–Lam stride refinement for pointer arithmetic (off = the
    /// paper's whole-object spread).
    pub arith_stride: bool,
    /// How pointer arithmetic is treated (spread vs corrupted-pointer
    /// flagging; see [`ArithMode`]).
    pub arith_mode: ArithMode,
    /// Solver threads for this run: 1 (the default) takes the sequential
    /// worklist path; more run the deterministic sharded fixpoint, whose
    /// edge set is identical for every thread count. The default comes
    /// from `SCAST_SOLVER_THREADS` (see [`env_solver_threads`]) so a test
    /// or CI matrix can exercise the parallel paths without code changes.
    pub threads: usize,
    /// Cooperative resource budget for the solve (default unlimited).
    /// Budgeted configs must be solved through the fallible entry points
    /// ([`try_analyze`], [`AnalysisSession::try_solve`](crate::AnalysisSession::try_solve),
    /// [`try_solve_compiled`](crate::session::try_solve_compiled)); the
    /// infallible ones panic if a budget trips.
    pub budget: Budget,
}

impl AnalysisConfig {
    /// A configuration for `model` with the default layout (ILP32) and
    /// compatibility mode (structural).
    pub fn new(model: ModelKind) -> Self {
        AnalysisConfig {
            model,
            layout: Layout::ilp32(),
            compat: CompatMode::Structural,
            arith_stride: false,
            arith_mode: ArithMode::Spread,
            threads: env_solver_threads(),
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the layout strategy.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Replaces the compatibility mode.
    pub fn with_compat(mut self, compat: CompatMode) -> Self {
        self.compat = compat;
        self
    }

    /// Enables/disables the stride refinement.
    pub fn with_stride(mut self, on: bool) -> Self {
        self.arith_stride = on;
        self
    }

    /// Selects the pointer-arithmetic mode.
    pub fn with_arith_mode(mut self, mode: ArithMode) -> Self {
        self.arith_mode = mode;
        self
    }

    /// Replaces the solver thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the solve budget (see [`Budget`]).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// A config list covering all four instances (paper order), sharing
    /// every other setting with `self` — the shape
    /// [`AnalysisSession::solve_all`](crate::AnalysisSession::solve_all)
    /// consumes.
    pub fn for_all_kinds(&self) -> Vec<AnalysisConfig> {
        ModelKind::ALL
            .iter()
            .map(|&k| {
                let mut c = self.clone();
                c.model = k;
                c
            })
            .collect()
    }
}

/// The solver thread count selected by the `SCAST_SOLVER_THREADS`
/// environment variable; 1 (sequential) when unset or unparsable.
pub fn env_solver_threads() -> usize {
    std::env::var("SCAST_SOLVER_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Default for AnalysisConfig {
    /// The most precise *portable* instance (Common Initial Sequence).
    fn default() -> Self {
        AnalysisConfig::new(ModelKind::CommonInitialSeq)
    }
}

/// Runs the analysis on a lowered program.
///
/// This is the main entry point of the crate; see the crate docs for a
/// complete example. Internally it is a one-model
/// [`AnalysisSession`](crate::AnalysisSession): compile the constraint
/// form, specialize it for `config.model`, solve. Multi-model runs should
/// hold the session themselves so the compilation is shared.
pub fn analyze(prog: &Program, config: &AnalysisConfig) -> AnalysisResult {
    crate::session::AnalysisSession::compile(prog).solve(config)
}

/// [`analyze`] for budgeted configs: returns the typed [`SolveError`] when
/// `config.budget` trips instead of panicking.
///
/// # Errors
///
/// [`SolveError`] when the deadline, edge cap, or cancellation flag of
/// `config.budget` fires before the fixpoint completes.
pub fn try_analyze(prog: &Program, config: &AnalysisConfig) -> Result<AnalysisResult, SolveError> {
    crate::session::AnalysisSession::compile(prog).try_solve(config)
}

/// Parses, lowers, and analyzes C source in one call.
///
/// # Errors
///
/// Returns the parse or lowering error.
pub fn analyze_source(
    src: &str,
    config: &AnalysisConfig,
) -> Result<(Program, AnalysisResult), structcast_ir::LowerError> {
    let prog = structcast_ir::lower_source(src)?;
    let result = analyze(&prog, config);
    Ok((prog, result))
}

/// The result of one analysis run, with the queries used by the paper's
/// evaluation (Figures 3–6) and by downstream clients.
pub struct AnalysisResult {
    /// Which instance ran.
    pub kind: ModelKind,
    /// All points-to facts (Figure 6 counts `facts.len()`).
    pub facts: FactStore,
    /// Figure 3 instrumentation.
    pub stats: ModelStats,
    /// Statement evaluations performed by the solver.
    pub iterations: u64,
    /// Indirect-call (site, callee) bindings discovered.
    pub resolved_indirect_calls: usize,
    /// Wall-clock solving time (Figure 5 reports ratios of these).
    pub elapsed: Duration,
    /// Locations flagged as possibly-corrupted pointers (only populated
    /// under [`ArithMode::FlagUnknown`]).
    pub unknown: BTreeSet<Loc>,
    /// Resolved (call-site statement, callee) pairs for indirect calls in
    /// the original program.
    pub call_edges: Vec<(StmtId, structcast_ir::FuncId)>,
    model: Box<dyn FieldModel>,
}

impl AnalysisResult {
    /// Packages a finished solver run (used by the session's solve stage).
    pub(crate) fn from_solver(
        kind: ModelKind,
        out: crate::solver::SolverOutput,
        elapsed: Duration,
    ) -> Self {
        AnalysisResult {
            kind,
            facts: out.facts,
            stats: out.stats,
            iterations: out.iterations,
            resolved_indirect_calls: out.resolved_indirect_calls,
            elapsed,
            unknown: out.unknown,
            call_edges: out.call_edges,
            model: out.model,
        }
    }

    /// Rebuilds a result from retained parts — the query server's
    /// snapshot-restore path. The facts and counters are adopted as-is and
    /// the model is reconstructed from its configuration; no constraint is
    /// re-specialized and no fixpoint runs, so neither
    /// [`solves_on_thread`](crate::solves_on_thread) nor the constraint
    /// compile counter moves. The caller is responsible for the parts
    /// having come from a run of the same `kind` under the same options —
    /// queries against a mismatched model would normalize locations the
    /// fact store has never seen.
    #[allow(clippy::too_many_arguments)]
    pub fn from_saved(
        kind: ModelKind,
        opts: &crate::models::ModelOptions,
        facts: FactStore,
        stats: ModelStats,
        iterations: u64,
        resolved_indirect_calls: usize,
        elapsed: Duration,
        unknown: BTreeSet<Loc>,
        call_edges: Vec<(StmtId, structcast_ir::FuncId)>,
    ) -> Self {
        AnalysisResult {
            kind,
            facts,
            stats,
            iterations,
            resolved_indirect_calls,
            elapsed,
            unknown,
            call_edges,
            model: crate::models::make_model_with(kind, opts),
        }
    }

    /// Normalizes `obj.path` under this run's instance.
    pub fn normalize(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Loc {
        self.model.normalize(prog, obj, path)
    }

    /// The points-to set of a top-level object.
    pub fn points_to(&self, prog: &Program, obj: ObjId) -> Vec<Loc> {
        let l = self.model.normalize(prog, obj, &FieldPath::empty());
        self.facts.points_to_vec(&l)
    }

    /// The points-to set of `obj.path`.
    pub fn points_to_field(&self, prog: &Program, obj: ObjId, path: &FieldPath) -> Vec<Loc> {
        let l = self.model.normalize(prog, obj, path);
        self.facts.points_to_vec(&l)
    }

    /// The names of the objects a named variable may point to (deduplicated
    /// and sorted) — convenient for tests and examples.
    pub fn points_to_names(&self, prog: &Program, var: &str) -> Vec<String> {
        let Some(obj) = prog.object_by_name(var) else {
            return Vec::new();
        };
        let mut out: BTreeSet<String> = BTreeSet::new();
        for t in self.points_to(prog, obj) {
            out.insert(prog.object(t.obj).name.clone());
        }
        out.into_iter().collect()
    }

    /// The points-to set of the named variable `var`, or `None` if the
    /// program has no object of that name. The `Loc` form (unlike
    /// [`points_to_names`](AnalysisResult::points_to_names)) keeps field
    /// positions, so two targets inside the same object stay distinct —
    /// what the alias query and the query server need.
    pub fn points_to_named(&self, prog: &Program, var: &str) -> Option<Vec<Loc>> {
        prog.object_by_name(var).map(|o| self.points_to(prog, o))
    }

    /// [`may_alias`](AnalysisResult::may_alias) by variable name; `None` if
    /// either name does not resolve to an object.
    pub fn may_alias_named(&self, prog: &Program, a: &str, b: &str) -> Option<bool> {
        let oa = prog.object_by_name(a)?;
        let ob = prog.object_by_name(b)?;
        Some(self.may_alias(prog, oa, ob))
    }

    /// Every points-to edge rendered with source-level names (via
    /// [`Loc::display`]), sorted and deduplicated — the deterministic
    /// machine-readable form shared by `scast --json` and the query
    /// server.
    pub fn edge_displays(&self, prog: &Program) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .facts
            .iter()
            .map(|(s, t)| (s.display(prog), t.display(prog)))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// May `a` and `b` (top-level objects) point to a common location?
    ///
    /// Locations are compared for exact equality (same object and same
    /// normalized position); overlapping-but-unequal offset ranges do not
    /// count, mirroring how the paper reports points-to facts.
    pub fn may_alias(&self, prog: &Program, a: ObjId, b: ObjId) -> bool {
        let pa = self.points_to(prog, a);
        if pa.is_empty() {
            return false;
        }
        let pb: BTreeSet<Loc> = self.points_to(prog, b).into_iter().collect();
        pa.iter().any(|l| pb.contains(l))
    }

    /// Per-dereference-site points-to set sizes: for every static pointer
    /// dereference in the program, the (weighted) size of the dereferenced
    /// pointer's points-to set. Collapse-Always struct targets are expanded
    /// to their field counts, per Figure 4's fairness note.
    pub fn deref_site_sizes(&self, prog: &Program) -> Vec<(StmtId, usize)> {
        prog.deref_sites()
            .into_iter()
            .map(|(sid, ptr)| {
                let l = self.model.normalize(prog, ptr, &FieldPath::empty());
                let size: usize = self
                    .facts
                    .points_to(&l)
                    .map(|t| self.model.target_weight(prog, t))
                    .sum();
                (sid, size)
            })
            .collect()
    }

    /// The average points-to set size over all static dereference sites —
    /// the metric of Figure 4. Sites whose pointer has an empty set (never
    /// assigned) contribute zero.
    pub fn average_deref_size(&self, prog: &Program) -> f64 {
        let sizes = self.deref_site_sizes(prog);
        if sizes.is_empty() {
            return 0.0;
        }
        sizes.iter().map(|(_, s)| *s as f64).sum::<f64>() / sizes.len() as f64
    }

    /// Total number of points-to edges — the metric of Figure 6.
    pub fn edge_count(&self) -> usize {
        self.facts.len()
    }

    /// Dereference sites whose pointer may be a corrupted value (only
    /// meaningful under [`ArithMode::FlagUnknown`]): the "potential misuses
    /// of memory" the paper suggests flagging (§4.2.1).
    pub fn unknown_deref_sites(&self, prog: &Program) -> Vec<StmtId> {
        prog.deref_sites()
            .into_iter()
            .filter(|(_, ptr)| {
                let l = self.model.normalize(prog, *ptr, &FieldPath::empty());
                self.unknown.contains(&l)
            })
            .map(|(sid, _)| sid)
            .collect()
    }
}

impl std::fmt::Debug for AnalysisResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisResult")
            .field("kind", &self.kind)
            .field("edges", &self.facts.len())
            .field("iterations", &self.iterations)
            .field("elapsed", &self.elapsed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTRO: &str = "struct S { int *s1; int *s2; } s;\n\
        int x, y, *p;\n\
        void f(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }";

    #[test]
    fn analyze_source_end_to_end() {
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(INTRO, &cfg).unwrap();
        assert_eq!(res.kind, ModelKind::CommonInitialSeq);
        assert_eq!(res.points_to_names(&prog, "p"), vec!["x".to_string()]);
        assert!(res.edge_count() > 0);
        assert!(res.iterations > 0);
    }

    #[test]
    fn field_queries() {
        let cfg = AnalysisConfig::new(ModelKind::Offsets);
        let (prog, res) = analyze_source(INTRO, &cfg).unwrap();
        let s = prog.object_by_name("s").unwrap();
        let x = prog.object_by_name("x").unwrap();
        let y = prog.object_by_name("y").unwrap();
        let f0 = res.points_to_field(&prog, s, &FieldPath::from_steps([0u32]));
        assert_eq!(f0, vec![Loc::off(x, 0)]);
        let f1 = res.points_to_field(&prog, s, &FieldPath::from_steps([1u32]));
        assert_eq!(f1, vec![Loc::off(y, 0)]);
    }

    #[test]
    fn may_alias_basic() {
        let src = "int x, y, *p, *q, *r;\n\
                   void f(void) { p = &x; q = &x; r = &y; }";
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(src, &cfg).unwrap();
        let p = prog.object_by_name("p").unwrap();
        let q = prog.object_by_name("q").unwrap();
        let r = prog.object_by_name("r").unwrap();
        assert!(res.may_alias(&prog, p, q));
        assert!(!res.may_alias(&prog, p, r));
    }

    #[test]
    fn average_deref_size_counts_sites() {
        let src = "int x, y, *p; int **pp;\n\
                   void f(int c) { p = c ? &x : &y; pp = &p; x = **pp; }";
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(src, &cfg).unwrap();
        // **pp: the inner deref of pp sees {p} (size 1); the outer deref
        // temp sees {x, y} (size 2).
        let avg = res.average_deref_size(&prog);
        assert!(avg > 0.0, "{avg}");
        assert!(!res.deref_site_sizes(&prog).is_empty());
    }

    #[test]
    fn unknown_variable_name_is_empty() {
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(INTRO, &cfg).unwrap();
        assert!(res.points_to_names(&prog, "nonexistent").is_empty());
    }

    #[test]
    fn named_lookup_queries() {
        let src = "int x, y, *p, *q, *r;\n\
                   void f(void) { p = &x; q = &x; r = &y; }";
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(src, &cfg).unwrap();
        let pts = res.points_to_named(&prog, "p").unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].obj, prog.object_by_name("x").unwrap());
        assert!(res.points_to_named(&prog, "no_such_var").is_none());
        assert_eq!(res.may_alias_named(&prog, "p", "q"), Some(true));
        assert_eq!(res.may_alias_named(&prog, "p", "r"), Some(false));
        assert_eq!(res.may_alias_named(&prog, "p", "ghost"), None);
    }

    #[test]
    fn edge_displays_are_sorted_and_named() {
        let cfg = AnalysisConfig::default();
        let (prog, res) = analyze_source(INTRO, &cfg).unwrap();
        let edges = res.edge_displays(&prog);
        assert!(!edges.is_empty());
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(edges, sorted);
        assert!(edges.iter().any(|(s, t)| s == "p" && t == "x"), "{edges:?}");
    }

    #[test]
    fn config_builders() {
        // The full symmetric builder set: every config field has a
        // `with_*` counterpart, so no caller needs struct-field pokes.
        let cfg = AnalysisConfig::new(ModelKind::Offsets)
            .with_layout(Layout::lp64())
            .with_compat(CompatMode::TagBased)
            .with_stride(true)
            .with_arith_mode(ArithMode::FlagUnknown)
            .with_threads(4)
            .with_budget(Budget::unlimited().with_max_edges(10));
        assert_eq!(cfg.layout.name, "lp64");
        assert_eq!(cfg.compat, CompatMode::TagBased);
        assert!(cfg.arith_stride);
        assert_eq!(cfg.arith_mode, ArithMode::FlagUnknown);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.budget.max_edges, Some(10));
        assert_eq!(cfg.with_threads(0).threads, 1, "clamped to sequential");
    }

    #[test]
    fn for_all_kinds_shares_settings() {
        let base = AnalysisConfig::new(ModelKind::CollapseAlways)
            .with_layout(Layout::lp64())
            .with_stride(true);
        let all = base.for_all_kinds();
        assert_eq!(all.len(), 4);
        for (cfg, kind) in all.iter().zip(ModelKind::ALL) {
            assert_eq!(cfg.model, kind);
            assert_eq!(cfg.layout.name, "lp64");
            assert!(cfg.arith_stride);
        }
    }
}
