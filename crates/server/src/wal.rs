//! Write-ahead journal for `update` ops.
//!
//! A snapshot captures the cache at an instant; every `update` accepted
//! *after* that instant would vanish on a crash. The WAL closes the gap:
//! each accepted update appends one checksummed record to
//! `<snapshot_dir>/wal`, fsync'd before the server replies, so restore is
//! snapshot load **followed by** journal replay and no acknowledged edit
//! is ever lost to a SIGKILL.
//!
//! ## File format
//!
//! The same `tag + len + fnv64 + payload` discipline as `SCSNAP01`
//! (see [`crate::snapshot`]), framed per record instead of per section:
//!
//! ```text
//! header:  magic "SCWAL001" (8 bytes) · version u32-le
//! record:  tag u8 (= 1, update) · payload_len u64-le · fnv64(payload) u64-le · payload
//! payload: program_len u64-le · program bytes · source_len u64-le · source bytes
//! ```
//!
//! ## Replay and truncation rules
//!
//! Replay reads records until the first malformed one — a torn tail from
//! a crash mid-append — and **stops there**: every whole record before
//! the tear re-applies, the tear itself is reported (`torn_tail`) and the
//! file is truncated back to the last whole record before new appends, so
//! one crash can never corrupt later appends. A missing file is an empty
//! journal; a file whose *header* is mangled replays nothing (and is
//! rewritten on open). Replay is idempotent: records carry the full
//! post-edit source text, so re-applying an update the snapshot already
//! covers converges to the same cache state.
//!
//! A successful snapshot save makes the journal's contents redundant, so
//! the saver truncates it back to a bare header — atomically, via the
//! same temp-file + rename dance as the snapshot itself.

use crate::faults::{DiskFault, FaultPlan};
use crate::snapshot::fnv64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside the snapshot directory.
pub const WAL_FILE: &str = "wal";

/// Magic prefix of a journal file.
pub const MAGIC: [u8; 8] = *b"SCWAL001";

/// Format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Record tag: one `update` op (program name + full post-edit source).
const TAG_UPDATE: u8 = 1;

const HEADER_LEN: u64 = 8 + 4;

/// One journaled update, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Program name the update targeted.
    pub program: String,
    /// Full post-edit source text.
    pub source: String,
}

/// What a journal replay found.
#[derive(Debug, Default)]
pub struct ReplayInfo {
    /// Whole, checksum-valid records in journal order.
    pub records: Vec<WalRecord>,
    /// True when the file ended in a partial or corrupt record (crash
    /// mid-append): everything before it is in `records`.
    pub torn_tail: bool,
    /// Byte offset of the end of the last whole record (where appends
    /// should resume after truncating the tear).
    pub valid_bytes: u64,
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    depth: u64,
    /// Length of the durable, whole-record prefix — the file may be
    /// longer than this right after a short (torn) append.
    bytes: u64,
    /// A failed append left a torn record on disk past `bytes`; the next
    /// append truncates it away first so later good records are never
    /// orphaned behind it on replay.
    torn: bool,
}

fn encode_record(program: &str, source: &str) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(16 + program.len() + source.len());
    payload.extend_from_slice(&(program.len() as u64).to_le_bytes());
    payload.extend_from_slice(program.as_bytes());
    payload.extend_from_slice(&(source.len() as u64).to_le_bytes());
    payload.extend_from_slice(source.as_bytes());
    let mut rec = Vec::with_capacity(17 + payload.len());
    rec.push(TAG_UPDATE);
    rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    rec.extend_from_slice(&fnv64(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Bounds-checked little-endian cursor over the journal bytes. Any
/// out-of-bounds read means a torn tail, never a panic.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        // Overflow-safe: check remaining length, not pos + n.
        if self.buf.len() - self.pos < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str_field(&mut self) -> Option<String> {
        let len = self.u64()?;
        if len > self.buf.len() as u64 {
            return None;
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Decodes every whole record of the journal at `dir/`[`WAL_FILE`].
/// A missing file is an empty journal; any malformed byte — bad header,
/// truncated record, checksum mismatch, unknown tag — ends the replay at
/// the last whole record with `torn_tail` set. Never panics, never errs
/// on corruption; only a genuine I/O failure (permissions, hardware)
/// returns `Err`.
pub fn replay(dir: &Path) -> std::io::Result<ReplayInfo> {
    let mut buf = Vec::new();
    match File::open(dir.join(WAL_FILE)) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayInfo::default());
        }
        Err(e) => return Err(e),
    }
    let mut info = ReplayInfo::default();
    if buf.len() < HEADER_LEN as usize
        || buf[..8] != MAGIC
        || buf[8..12] != VERSION.to_le_bytes()
    {
        // A mangled header orphans the whole file: report it as torn (if
        // non-empty) and let `Wal::open` rewrite it from scratch.
        info.torn_tail = !buf.is_empty();
        return Ok(info);
    }
    info.valid_bytes = HEADER_LEN;
    let mut cur = Cur {
        buf: &buf,
        pos: HEADER_LEN as usize,
    };
    while cur.pos < buf.len() {
        let rec = (|| {
            let tag = cur.u8()?;
            if tag != TAG_UPDATE {
                return None;
            }
            let payload_len = cur.u64()?;
            let sum = cur.u64()?;
            let payload = cur.take(usize::try_from(payload_len).ok()?)?;
            if fnv64(payload) != sum {
                return None;
            }
            let mut p = Cur {
                buf: payload,
                pos: 0,
            };
            let program = p.str_field()?;
            let source = p.str_field()?;
            if p.pos != payload.len() {
                return None;
            }
            Some(WalRecord { program, source })
        })();
        match rec {
            Some(r) => {
                info.records.push(r);
                info.valid_bytes = cur.pos as u64;
            }
            None => {
                info.torn_tail = true;
                break;
            }
        }
    }
    Ok(info)
}

impl Wal {
    /// Opens (or creates) the journal in `dir`, positioned after the last
    /// whole record. A torn tail found by [`replay`] is cut off here —
    /// the file is truncated back to `valid_bytes` — so the next append
    /// lands on a clean boundary. `depth` seeds the records-since-last-
    /// snapshot gauge (pass the replay's record count).
    pub fn open(dir: &Path, depth: u64) -> std::io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let info = replay(dir)?;
        let file = if info.valid_bytes < HEADER_LEN {
            // Missing or header-mangled: start a fresh journal.
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            f.write_all(&header_bytes())?;
            f.sync_all()?;
            f
        } else {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(info.valid_bytes)?;
            if info.torn_tail {
                f.sync_all()?;
            }
            f
        };
        let bytes = file.metadata()?.len();
        let mut wal = Wal {
            file,
            path,
            depth,
            bytes,
            torn: false,
        };
        wal.seek_end()?;
        Ok(wal)
    }

    fn seek_end(&mut self) -> std::io::Result<()> {
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::End(0))?;
        Ok(())
    }

    /// Appends one update record and fsyncs before returning, so a reply
    /// sent after this call is durable. `faults` drives the injected disk
    /// sites: `err@wal_append` fails before writing anything,
    /// `short@wal_append` persists a deliberately torn half-record (what
    /// a power cut mid-append leaves behind) and then fails.
    pub fn append(
        &mut self,
        program: &str,
        source: &str,
        faults: &FaultPlan,
    ) -> std::io::Result<()> {
        let rec = encode_record(program, source);
        if self.torn {
            // A previous append tore; cut the partial record back out so
            // this record lands on a whole-record boundary. Until this
            // succeeds the journal stays torn (replay handles that).
            use std::io::Seek;
            self.file.set_len(self.bytes)?;
            self.file.seek(std::io::SeekFrom::Start(self.bytes))?;
            self.torn = false;
        }
        match faults.fire_disk("wal_append") {
            Some(DiskFault::Error) => {
                return Err(DiskFault::Error.to_error("wal_append"));
            }
            Some(DiskFault::ShortWrite) => {
                self.file.write_all(&rec[..rec.len() / 2])?;
                self.file.sync_all()?;
                self.torn = true;
                return Err(DiskFault::ShortWrite.to_error("wal_append"));
            }
            None => {}
        }
        if let Err(e) = self.file.write_all(&rec).and_then(|()| self.file.sync_all()) {
            // A real short/failed write may have persisted a prefix of
            // the record; treat the tail as torn like the injected case.
            self.torn = true;
            return Err(e);
        }
        self.depth += 1;
        self.bytes += rec.len() as u64;
        Ok(())
    }

    /// Atomically resets the journal to a bare header — called after a
    /// successful snapshot save makes its contents redundant. Writes a
    /// fresh header to a temp file, fsyncs, renames over the journal, and
    /// reopens: a crash at any point leaves either the old journal
    /// (harmless, replay is idempotent) or the new empty one.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        let dir = self.path.parent().unwrap_or(Path::new("."));
        let tmp = dir.join(format!("{WAL_FILE}.tmp.{}", std::process::id()));
        let mut f = File::create(&tmp)?;
        f.write_all(&header_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().write(true).open(&self.path)?;
        self.depth = 0;
        self.bytes = HEADER_LEN;
        self.torn = false;
        self.seek_end()?;
        Ok(())
    }

    /// Records appended since the journal was last truncated (or, right
    /// after open, the replayed record count).
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Current journal size in bytes (including any persisted torn tail
    /// from an injected short write).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "scast-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn no_faults() -> FaultPlan {
        FaultPlan::default()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("bst", "int x; void f(void) {}", &no_faults()).unwrap();
        wal.append("live", "int y, *p; void g(void) { p = &y; }", &no_faults())
            .unwrap();
        assert_eq!(wal.depth(), 2);
        let info = replay(&dir).unwrap();
        assert!(!info.torn_tail);
        assert_eq!(info.records.len(), 2);
        assert_eq!(info.records[0].program, "bst");
        assert_eq!(info.records[1].source, "int y, *p; void g(void) { p = &y; }");
        assert_eq!(info.valid_bytes, wal.bytes());
        // Reopen resumes appending after the existing records.
        drop(wal);
        let mut wal = Wal::open(&dir, info.records.len() as u64).unwrap();
        assert_eq!(wal.depth(), 2);
        wal.append("bst", "int z;", &no_faults()).unwrap();
        assert_eq!(replay(&dir).unwrap().records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let dir = tmp_dir("missing");
        let info = replay(&dir).unwrap();
        assert!(info.records.is_empty());
        assert!(!info.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_resets_to_bare_header() {
        let dir = tmp_dir("truncate");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("bst", "int a;", &no_faults()).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.depth(), 0);
        assert_eq!(wal.bytes(), HEADER_LEN);
        let info = replay(&dir).unwrap();
        assert!(info.records.is_empty());
        assert!(!info.torn_tail);
        // Appends keep working after the reset.
        wal.append("bst", "int b;", &no_faults()).unwrap();
        assert_eq!(replay(&dir).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance sweep: truncating the journal at *every* byte
    /// offset must replay cleanly — whole records before the cut survive,
    /// the cut itself is reported as a torn tail, and nothing panics.
    #[test]
    fn torn_tail_sweep_over_every_truncation_offset() {
        let dir = tmp_dir("sweep");
        let mut wal = Wal::open(&dir, 0).unwrap();
        let updates = [
            ("bst", "int x;"),
            ("live", "int y, *p; void f(void) { p = &y; }"),
            ("bst", "int x, z;"),
        ];
        let mut boundaries = vec![HEADER_LEN];
        for (prog, src) in updates {
            wal.append(prog, src, &no_faults()).unwrap();
            boundaries.push(wal.bytes());
        }
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let info = replay(&dir).unwrap();
            // Records survive exactly up to the last whole-record boundary.
            let whole = boundaries.iter().filter(|b| **b <= cut as u64).count();
            let expect_records = whole.saturating_sub(1);
            assert_eq!(
                info.records.len(),
                expect_records,
                "cut at byte {cut} of {}",
                full.len()
            );
            for (r, (prog, src)) in info.records.iter().zip(updates.iter()) {
                assert_eq!((r.program.as_str(), r.source.as_str()), (*prog, *src));
            }
            // Torn iff the cut lands mid-record or mid-header; a cut at a
            // record boundary (or the empty file) is a clean journal.
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(
                info.torn_tail,
                cut != 0 && !at_boundary,
                "cut at byte {cut}"
            );
        }
        // An empty file replays as untorn-empty (fresh-journal case).
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        assert!(!replay(&dir).unwrap().torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_cuts_a_torn_tail_and_appends_cleanly_after_it() {
        let dir = tmp_dir("cut");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("bst", "int x;", &no_faults()).unwrap();
        let good = wal.bytes();
        wal.append("live", "int y;", &no_faults()).unwrap();
        drop(wal);
        // Tear the second record in half.
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let cut = (good as usize + full.len()) / 2;
        std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
        let info = replay(&dir).unwrap();
        assert!(info.torn_tail);
        assert_eq!(info.records.len(), 1);
        let mut wal = Wal::open(&dir, info.records.len() as u64).unwrap();
        assert_eq!(wal.bytes(), good, "open truncated back to the whole record");
        wal.append("live", "int y2;", &no_faults()).unwrap();
        let info = replay(&dir).unwrap();
        assert!(!info.torn_tail, "post-cut append lands on a clean boundary");
        assert_eq!(info.records.len(), 2);
        assert_eq!(info.records[1].source, "int y2;");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_catches_a_flipped_payload_bit() {
        let dir = tmp_dir("bitflip");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("bst", "int x;", &no_faults()).unwrap();
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let info = replay(&dir).unwrap();
        assert!(info.torn_tail);
        assert!(info.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mangled_header_orphans_the_file_and_open_rewrites_it() {
        let dir = tmp_dir("header");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("bst", "int x;", &no_faults()).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        bytes[0] = b'X';
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let info = replay(&dir).unwrap();
        assert!(info.torn_tail);
        assert!(info.records.is_empty());
        let wal = Wal::open(&dir, 0).unwrap();
        assert_eq!(wal.bytes(), HEADER_LEN);
        assert!(!replay(&dir).unwrap().torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_faults_fail_append_deterministically() {
        let dir = tmp_dir("faults");
        let mut wal = Wal::open(&dir, 0).unwrap();
        let plan = FaultPlan::parse("err@wal_append:1.0").unwrap();
        let err = wal.append("bst", "int x;", &plan).unwrap_err();
        assert!(err.to_string().contains("injected disk error"), "{err}");
        assert_eq!(wal.depth(), 0);
        assert!(!replay(&dir).unwrap().torn_tail, "err fault writes nothing");

        let plan = FaultPlan::parse("short@wal_append:1.0").unwrap();
        let err = wal.append("bst", "int x;", &plan).unwrap_err();
        assert!(err.to_string().contains("injected short write"), "{err}");
        let info = replay(&dir).unwrap();
        assert!(info.torn_tail, "short write persists a torn half-record");
        assert!(info.records.is_empty());
        // A live journal self-heals: the next append truncates the torn
        // record first, so the new record is never orphaned behind it.
        wal.append("bst", "int healed;", &no_faults()).unwrap();
        let info = replay(&dir).unwrap();
        assert!(!info.torn_tail, "the tear was cut before appending");
        assert_eq!(info.records.len(), 1);
        assert_eq!(info.records[0].source, "int healed;");
        // Recovery across a crash: reopen also cuts a tear, appends resume.
        let plan = FaultPlan::parse("short@wal_append:1.0").unwrap();
        let _ = wal.append("bst", "int torn;", &plan).unwrap_err();
        drop(wal);
        let mut wal = Wal::open(&dir, 1).unwrap();
        wal.append("bst", "int x;", &no_faults()).unwrap();
        let info = replay(&dir).unwrap();
        assert!(!info.torn_tail);
        assert_eq!(info.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
