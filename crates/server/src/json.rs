//! A minimal JSON value with a hand-rolled parser and emitter.
//!
//! The workspace builds hermetically (no registry access), so the wire
//! format is implemented here in ~300 lines instead of pulling in serde.
//! The same emitter backs the server's responses and `scast --json`, so
//! the two machine-readable formats cannot drift.
//!
//! Objects preserve **insertion order** (they are a `Vec` of pairs, not a
//! map): emitting the same value twice yields byte-identical text, which
//! the protocol's determinism guarantees rely on.

use std::fmt;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use structcast_server::json::Json;
/// let v = Json::parse(r#"{"op": "stats", "n": 3, "ok": true}"#).unwrap();
/// assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));
/// assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
/// assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted without a fraction when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds a number from a `usize`/`u64`-sized count (lossless for all
    /// realistic metric values; counts above 2^53 would lose precision).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON value from `src` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Emits the value on one line (the NDJSON wire form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte position plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from a &str) and the
                // run stops only at ASCII delimiters, so this slice lies on
                // char boundaries.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected `\\u` low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-12",
            "3.5",
            "1e3",
            r#""""#,
            r#""plain""#,
            r#""esc \" \\ \n \t \u00e9 \ud83d\ude00""#,
            "[]",
            "[1, 2, [3]]",
            "{}",
            r#"{"a": 1, "b": [true, null], "c": {"d": "e"}}"#,
        ] {
            let v = Json::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let emitted = v.to_string();
            assert_eq!(Json::parse(&emitted).unwrap(), v, "{src} -> {emitted}");
        }
    }

    #[test]
    fn emits_deterministically_with_field_order() {
        let v = Json::obj([
            ("z", Json::count(1)),
            ("a", Json::str("x")),
        ]);
        assert_eq!(v.to_string(), r#"{"z": 1, "a": "x"}"#);
        assert_eq!(v.to_string(), v.clone().to_string());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s": "hi", "n": 4, "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("s").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            r#""unterminated"#,
            "nul",
            "1 2",
            r#""bad \x escape""#,
            r#""\ud800 unpaired""#,
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::str("a\nb\t\"c\"\\d\u{1}");
        let s = v.to_string();
        assert_eq!(s, r#""a\nb\t\"c\"\\d\u0001""#);
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn integral_numbers_emit_without_fraction() {
        assert_eq!(Json::count(42).to_string(), "42");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::num(-3.0).to_string(), "-3");
    }
}
