//! # structcast-server
//!
//! A long-lived, concurrent **analysis-query service** over cached
//! structcast sessions: clients ask points-to, alias, MOD/REF, and
//! model-comparison questions over a plain TCP socket and get answers
//! without ever re-running the front end or the solver for a program the
//! server has seen before.
//!
//! The paper's framework answers *queries* — what does `*p` point to, may
//! two lvalues alias, what may a function mod/ref — and the staged
//! pipeline (compile once → specialize per model → solve) makes serving
//! them cheap: stage 1 is cached per source hash, stages 2+3 per
//! `(program, model, options)`, and a warm query is a map lookup.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over TCP, implemented entirely on `std`
//! (`TcpListener` + a `std::thread` worker pool; the [`json`] module is a
//! hand-rolled parser/emitter). One request object per line, one response
//! object per line:
//!
//! ```text
//! → {"op": "load", "name": "bst"}
//! ← {"ok": true, "program": "bst", "hash": "…", "objects": 57, …}
//! → {"op": "points_to", "program": "bst", "var": "g_tree", "model": "offsets"}
//! ← {"ok": true, "var": "g_tree", "points_to": ["malloc_1", …], …}
//! ```
//!
//! Request kinds: `load`, `points_to`, `alias`, `modref`,
//! `compare_models`, `stats`, `shutdown` — see [`proto::Request`] and
//! `DESIGN.md` §7 for the grammar with one example per kind.
//!
//! ## In-process use
//!
//! ```
//! use structcast_server::{serve, Client, ServerConfig};
//! use structcast_server::json::Json;
//!
//! let handle = serve(&ServerConfig::default())?; // binds an ephemeral port
//! let mut client = Client::connect(handle.addr())?;
//! let resp = client.request(&Json::obj([
//!     ("op", Json::str("points_to")),
//!     ("program", Json::str("tagged-union")), // corpus programs auto-load
//!     ("var", Json::str("g_registry")),
//! ]))?;
//! assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
//! client.shutdown_server()?;
//! handle.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod client;
pub mod faults;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod proto;
mod server;
pub mod snapshot;
pub mod wal;

pub use cache::{source_hash, ProgramEntry, SessionCache, Solved};
pub use client::{BinaryClient, Client, RetryOpts};
pub use faults::FaultPlan;
pub use fleet::{fleet, FleetConfig, FleetHandle};
pub use metrics::Metrics;
pub use proto::{QueryOpts, Request};
pub use server::{serve, ServerConfig, ServerHandle};
pub use snapshot::{SnapshotError, SNAPSHOT_FILE};
